#!/bin/bash
# Regenerates every table/figure of the evaluation (DESIGN.md §4).
# Core tables run at 16 epochs; long sweeps at 8 to bound wall-clock.
# Usage: ./run_experiments.sh [extra flags appended to every binary,
#        e.g. --scale 1.0 for paper scale]
set -u
cd "$(dirname "$0")"
BIN=./target/release
EXTRA="$@"
CORE="--epochs 16 --patience 4 $EXTRA"
SWEEP="--epochs 8 --patience 2 $EXTRA"
echo "=== mbssl experiment suite ($(date)) ==="
$BIN/exp_datasets $CORE
$BIN/exp_overall --significance $CORE
$BIN/exp_ablation $CORE
$BIN/exp_hyper --sweep k $SWEEP
$BIN/exp_hyper --sweep ssl $SWEEP
$BIN/exp_coldstart $SWEEP
$BIN/exp_behaviors $SWEEP
$BIN/exp_efficiency $SWEEP
$BIN/exp_convergence --epochs 10 --patience 11 $EXTRA
$BIN/exp_noise $SWEEP
$BIN/exp_hyper --sweep window $SWEEP
$BIN/exp_hyper --sweep aux $SWEEP
$BIN/exp_hyper --sweep extractor $SWEEP
$BIN/exp_recovery $SWEEP
python3 scripts/summarize_results.py
echo "=== suite complete ($(date)) ==="
