//! Ranking metrics for the 1-vs-N evaluation protocol.
//!
//! Evaluation produces, per instance, a score for each candidate where
//! **candidate 0 is the positive target**. Metrics are computed from the
//! rank of the target among all candidates (ties broken pessimistically:
//! equal-scored candidates count as ranked ahead, so degenerate constant
//! scorers do not look good).

use serde::Serialize;

/// The 0-based rank of candidate 0 given candidate scores.
pub fn target_rank(scores: &[f32]) -> usize {
    assert!(!scores.is_empty(), "no candidates");
    let target = scores[0];
    scores[1..]
        .iter()
        .filter(|&&s| s >= target)
        .count()
}

/// Hit Rate@K for a single instance (1.0 if the target ranks in the top K).
pub fn hit_at_k(rank: usize, k: usize) -> f64 {
    if rank < k {
        1.0
    } else {
        0.0
    }
}

/// NDCG@K for a single instance with one relevant item.
pub fn ndcg_at_k(rank: usize, k: usize) -> f64 {
    if rank < k {
        1.0 / ((rank + 2) as f64).log2()
    } else {
        0.0
    }
}

/// Reciprocal rank for a single instance.
pub fn reciprocal_rank(rank: usize) -> f64 {
    1.0 / (rank + 1) as f64
}

/// Aggregated ranking metrics over a set of instances.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct RankingMetrics {
    pub hr5: f64,
    pub hr10: f64,
    pub hr20: f64,
    pub ndcg5: f64,
    pub ndcg10: f64,
    pub ndcg20: f64,
    pub mrr: f64,
    pub count: usize,
}

impl RankingMetrics {
    /// Computes metrics from the per-instance target ranks.
    pub fn from_ranks(ranks: &[usize]) -> RankingMetrics {
        if ranks.is_empty() {
            return RankingMetrics::default();
        }
        let n = ranks.len() as f64;
        let mut m = RankingMetrics {
            count: ranks.len(),
            ..Default::default()
        };
        for &r in ranks {
            m.hr5 += hit_at_k(r, 5);
            m.hr10 += hit_at_k(r, 10);
            m.hr20 += hit_at_k(r, 20);
            m.ndcg5 += ndcg_at_k(r, 5);
            m.ndcg10 += ndcg_at_k(r, 10);
            m.ndcg20 += ndcg_at_k(r, 20);
            m.mrr += reciprocal_rank(r);
        }
        m.hr5 /= n;
        m.hr10 /= n;
        m.hr20 /= n;
        m.ndcg5 /= n;
        m.ndcg10 /= n;
        m.ndcg20 /= n;
        m.mrr /= n;
        m
    }

    /// Computes metrics from per-instance candidate score lists.
    pub fn from_score_lists(score_lists: &[Vec<f32>]) -> RankingMetrics {
        let ranks: Vec<usize> = score_lists.iter().map(|s| target_rank(s)).collect();
        RankingMetrics::from_ranks(&ranks)
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "HR@5={:.4} HR@10={:.4} NDCG@5={:.4} NDCG@10={:.4} MRR={:.4} (n={})",
            self.hr5, self.hr10, self.ndcg5, self.ndcg10, self.mrr, self.count
        )
    }
}

/// Per-instance metric vectors, needed for paired significance tests and
/// per-group slicing.
#[derive(Clone, Debug, Default)]
pub struct PerInstanceMetrics {
    pub ranks: Vec<usize>,
}

impl PerInstanceMetrics {
    pub fn from_score_lists(score_lists: &[Vec<f32>]) -> Self {
        PerInstanceMetrics {
            ranks: score_lists.iter().map(|s| target_rank(s)).collect(),
        }
    }

    /// Like [`from_score_lists`](Self::from_score_lists), but over one flat
    /// row-major score matrix with `c` candidates per instance (row layout
    /// `scores[i * c + j]`, index 0 = target) — the zero-copy form the
    /// evaluator's shared scoring buffer uses.
    pub fn from_flat_scores(scores: &[f32], c: usize) -> Self {
        assert!(c > 0, "candidate lists must be non-empty");
        assert_eq!(scores.len() % c, 0, "flat score matrix is ragged");
        PerInstanceMetrics {
            ranks: scores.chunks(c).map(target_rank).collect(),
        }
    }

    /// Per-instance NDCG@K values.
    pub fn ndcg_at(&self, k: usize) -> Vec<f64> {
        self.ranks.iter().map(|&r| ndcg_at_k(r, k)).collect()
    }

    /// Per-instance HR@K values.
    pub fn hr_at(&self, k: usize) -> Vec<f64> {
        self.ranks.iter().map(|&r| hit_at_k(r, k)).collect()
    }

    pub fn aggregate(&self) -> RankingMetrics {
        RankingMetrics::from_ranks(&self.ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_zero_when_target_strictly_best() {
        assert_eq!(target_rank(&[5.0, 1.0, 2.0]), 0);
    }

    #[test]
    fn ties_count_against_target() {
        assert_eq!(target_rank(&[2.0, 2.0, 1.0]), 1);
        assert_eq!(target_rank(&[0.0, 0.0, 0.0]), 2);
    }

    #[test]
    fn rank_last_when_target_worst() {
        assert_eq!(target_rank(&[0.0, 1.0, 2.0, 3.0]), 3);
    }

    #[test]
    fn hit_rates_threshold() {
        assert_eq!(hit_at_k(4, 5), 1.0);
        assert_eq!(hit_at_k(5, 5), 0.0);
    }

    #[test]
    fn ndcg_top_rank_is_one() {
        assert!((ndcg_at_k(0, 10) - 1.0).abs() < 1e-12);
        assert!(ndcg_at_k(1, 10) < 1.0);
        assert_eq!(ndcg_at_k(10, 10), 0.0);
    }

    #[test]
    fn ndcg_decreases_with_rank() {
        let vals: Vec<f64> = (0..10).map(|r| ndcg_at_k(r, 10)).collect();
        assert!(vals.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn mrr_known_values() {
        assert_eq!(reciprocal_rank(0), 1.0);
        assert_eq!(reciprocal_rank(1), 0.5);
        assert_eq!(reciprocal_rank(9), 0.1);
    }

    #[test]
    fn aggregate_matches_hand_computation() {
        // Ranks 0 and 10: HR@10 = 0.5, NDCG@10 = (1 + 0)/2.
        let m = RankingMetrics::from_ranks(&[0, 10]);
        assert!((m.hr10 - 0.5).abs() < 1e-12);
        assert!((m.ndcg10 - 0.5).abs() < 1e-12);
        assert!((m.mrr - (1.0 + 1.0 / 11.0) / 2.0).abs() < 1e-12);
        assert_eq!(m.count, 2);
    }

    #[test]
    fn empty_ranks_are_zero() {
        let m = RankingMetrics::from_ranks(&[]);
        assert_eq!(m.count, 0);
        assert_eq!(m.hr10, 0.0);
    }

    #[test]
    fn from_score_lists_end_to_end() {
        let lists = vec![vec![3.0, 1.0, 2.0], vec![0.0, 5.0, 4.0]];
        let m = RankingMetrics::from_score_lists(&lists);
        assert!((m.hr5 - 1.0).abs() < 1e-12); // ranks 0 and 2, both < 5
        assert_eq!(m.count, 2);
    }

    #[test]
    fn metric_bounds_hold() {
        let lists: Vec<Vec<f32>> = (0..50)
            .map(|i| (0..100).map(|j| ((i * 31 + j * 17) % 97) as f32).collect())
            .collect();
        let m = RankingMetrics::from_score_lists(&lists);
        for v in [m.hr5, m.hr10, m.hr20, m.ndcg5, m.ndcg10, m.ndcg20, m.mrr] {
            assert!((0.0..=1.0).contains(&v), "metric out of bounds: {v}");
        }
        // HR is monotone in K; NDCG likewise.
        assert!(m.hr5 <= m.hr10 && m.hr10 <= m.hr20);
        assert!(m.ndcg5 <= m.ndcg10 && m.ndcg10 <= m.ndcg20);
        // NDCG@K <= HR@K always.
        assert!(m.ndcg10 <= m.hr10 + 1e-12);
    }
}
