//! Beyond-accuracy metrics: catalog coverage and intra-list diversity.
//!
//! Multi-interest recommenders are motivated not only by accuracy but by
//! recommendation *diversity* (ComiRec evaluates it explicitly): a model
//! with K interests should surface items from more distinct categories
//! than a single-vector model.

use std::collections::HashSet;

use serde::Serialize;

/// Fraction of the catalog that appears in at least one user's top-K list.
pub fn catalog_coverage(top_k_lists: &[Vec<u32>], num_items: usize) -> f64 {
    if num_items == 0 {
        return 0.0;
    }
    let distinct: HashSet<u32> = top_k_lists.iter().flatten().copied().collect();
    distinct.len() as f64 / num_items as f64
}

/// Mean intra-list diversity: for each list, the fraction of item pairs
/// whose categories differ, averaged over lists. `item_category[item]`
/// maps item ids to category labels (e.g. the simulator's topics).
pub fn intra_list_diversity(top_k_lists: &[Vec<u32>], item_category: &[usize]) -> f64 {
    let mut total = 0.0f64;
    let mut lists = 0usize;
    for list in top_k_lists {
        if list.len() < 2 {
            continue;
        }
        let mut diff_pairs = 0usize;
        let mut pairs = 0usize;
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                pairs += 1;
                if item_category[list[i] as usize] != item_category[list[j] as usize] {
                    diff_pairs += 1;
                }
            }
        }
        total += diff_pairs as f64 / pairs as f64;
        lists += 1;
    }
    if lists == 0 {
        0.0
    } else {
        total / lists as f64
    }
}

/// Number of distinct categories per list, averaged.
pub fn mean_distinct_categories(top_k_lists: &[Vec<u32>], item_category: &[usize]) -> f64 {
    if top_k_lists.is_empty() {
        return 0.0;
    }
    let total: usize = top_k_lists
        .iter()
        .map(|list| {
            list.iter()
                .map(|&i| item_category[i as usize])
                .collect::<HashSet<_>>()
                .len()
        })
        .sum();
    total as f64 / top_k_lists.len() as f64
}

/// Bundle of beyond-accuracy metrics for one model's top-K output.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct DiversityMetrics {
    pub catalog_coverage: f64,
    pub intra_list_diversity: f64,
    pub mean_distinct_categories: f64,
}

/// Computes the full bundle.
pub fn diversity_metrics(
    top_k_lists: &[Vec<u32>],
    num_items: usize,
    item_category: &[usize],
) -> DiversityMetrics {
    DiversityMetrics {
        catalog_coverage: catalog_coverage(top_k_lists, num_items),
        intra_list_diversity: intra_list_diversity(top_k_lists, item_category),
        mean_distinct_categories: mean_distinct_categories(top_k_lists, item_category),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Categories: items 1-2 → 0, items 3-4 → 1.
    fn cats() -> Vec<usize> {
        vec![usize::MAX, 0, 0, 1, 1]
    }

    #[test]
    fn coverage_counts_distinct_items() {
        let lists = vec![vec![1, 2], vec![2, 3]];
        assert!((catalog_coverage(&lists, 4) - 0.75).abs() < 1e-12);
        assert_eq!(catalog_coverage(&[], 4), 0.0);
        assert_eq!(catalog_coverage(&lists, 0), 0.0);
    }

    #[test]
    fn diversity_zero_for_same_category() {
        let lists = vec![vec![1, 2]];
        assert_eq!(intra_list_diversity(&lists, &cats()), 0.0);
    }

    #[test]
    fn diversity_one_for_all_different() {
        let lists = vec![vec![1, 3]];
        assert_eq!(intra_list_diversity(&lists, &cats()), 1.0);
    }

    #[test]
    fn diversity_mixed_list() {
        // Pairs: (1,2) same, (1,3) diff, (2,3) diff → 2/3.
        let lists = vec![vec![1, 2, 3]];
        assert!((intra_list_diversity(&lists, &cats()) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_lists_ignored() {
        let lists = vec![vec![1]];
        assert_eq!(intra_list_diversity(&lists, &cats()), 0.0);
    }

    #[test]
    fn distinct_categories_counted() {
        let lists = vec![vec![1, 2, 3], vec![1, 2]];
        // 2 categories in first list, 1 in second → mean 1.5.
        assert!((mean_distinct_categories(&lists, &cats()) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bundle_consistent_with_parts() {
        let lists = vec![vec![1, 3], vec![2, 4]];
        let m = diversity_metrics(&lists, 4, &cats());
        assert!((m.catalog_coverage - 1.0).abs() < 1e-12);
        assert!((m.intra_list_diversity - 1.0).abs() < 1e-12);
        assert!((m.mean_distinct_categories - 2.0).abs() < 1e-12);
    }
}
