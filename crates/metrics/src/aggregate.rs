//! Grouped metric aggregation (for cold-start / sequence-length
//! breakdowns).

use serde::Serialize;

use crate::ranking::RankingMetrics;

/// A labeled bucket over instance indices.
#[derive(Clone, Debug, Serialize)]
pub struct Group {
    pub label: String,
    pub indices: Vec<usize>,
}

/// Buckets instances by a numeric key and half-open boundaries.
///
/// `boundaries = [5, 10, 20]` produces groups `≤5`, `6–10`, `11–20`, `>20`.
pub fn bucket_by(keys: &[usize], boundaries: &[usize]) -> Vec<Group> {
    assert!(
        boundaries.windows(2).all(|w| w[0] < w[1]),
        "boundaries must be strictly increasing"
    );
    let mut groups: Vec<Group> = Vec::with_capacity(boundaries.len() + 1);
    for (gi, &b) in boundaries.iter().enumerate() {
        let label = if gi == 0 {
            format!("<={b}")
        } else {
            format!("{}-{b}", boundaries[gi - 1] + 1)
        };
        groups.push(Group {
            label,
            indices: Vec::new(),
        });
    }
    groups.push(Group {
        label: format!(">{}", boundaries.last().copied().unwrap_or(0)),
        indices: Vec::new(),
    });
    for (i, &key) in keys.iter().enumerate() {
        let gi = boundaries.iter().position(|&b| key <= b).unwrap_or(boundaries.len());
        groups[gi].indices.push(i);
    }
    groups
}

/// Ranking metrics computed per group from global per-instance ranks.
#[derive(Clone, Debug, Serialize)]
pub struct GroupedMetrics {
    pub label: String,
    pub metrics: RankingMetrics,
}

pub fn metrics_by_group(ranks: &[usize], groups: &[Group]) -> Vec<GroupedMetrics> {
    groups
        .iter()
        .map(|g| {
            let group_ranks: Vec<usize> = g.indices.iter().map(|&i| ranks[i]).collect();
            GroupedMetrics {
                label: g.label.clone(),
                metrics: RankingMetrics::from_ranks(&group_ranks),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_and_partition() {
        let keys = vec![1, 5, 6, 10, 11, 50];
        let groups = bucket_by(&keys, &[5, 10, 20]);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].indices, vec![0, 1]); // <=5
        assert_eq!(groups[1].indices, vec![2, 3]); // 6-10
        assert_eq!(groups[2].indices, vec![4]); // 11-20
        assert_eq!(groups[3].indices, vec![5]); // >20
        let total: usize = groups.iter().map(|g| g.indices.len()).sum();
        assert_eq!(total, keys.len());
    }

    #[test]
    fn labels_are_descriptive() {
        let groups = bucket_by(&[], &[5, 10]);
        let labels: Vec<&str> = groups.iter().map(|g| g.label.as_str()).collect();
        assert_eq!(labels, vec!["<=5", "6-10", ">10"]);
    }

    #[test]
    fn grouped_metrics_use_only_member_ranks() {
        let ranks = vec![0, 50, 0, 50];
        let groups = vec![
            Group {
                label: "good".into(),
                indices: vec![0, 2],
            },
            Group {
                label: "bad".into(),
                indices: vec![1, 3],
            },
        ];
        let gm = metrics_by_group(&ranks, &groups);
        assert_eq!(gm[0].metrics.hr10, 1.0);
        assert_eq!(gm[1].metrics.hr10, 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_boundaries_panic() {
        bucket_by(&[1], &[10, 5]);
    }
}
