//! Statistical utilities: paired t-tests and descriptive aggregation, used
//! for the "significantly outperforms" claims of the comparison table.

use serde::Serialize;

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Result of a paired t-test.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PairedTTest {
    /// Mean of the differences (a - b).
    pub mean_diff: f64,
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (n - 1).
    pub df: usize,
    /// Two-sided p-value (normal approximation, accurate for the large
    /// per-user samples used in recommendation evaluation).
    pub p_value: f64,
}

impl PairedTTest {
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Paired t-test on matched samples `a[i]` vs `b[i]`.
///
/// # Panics
/// Panics when lengths differ or fewer than 2 pairs are given.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> PairedTTest {
    assert_eq!(a.len(), b.len(), "paired test needs matched samples");
    assert!(a.len() >= 2, "need at least two pairs");
    let diffs: Vec<f64> = a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect();
    let m = mean(&diffs);
    let s = std_dev(&diffs);
    let n = diffs.len() as f64;
    let t = if s == 0.0 {
        if m == 0.0 {
            0.0
        } else {
            f64::INFINITY * m.signum()
        }
    } else {
        m / (s / n.sqrt())
    };
    let p = 2.0 * (1.0 - std_normal_cdf(t.abs()));
    PairedTTest {
        mean_diff: m,
        t,
        df: diffs.len() - 1,
        p_value: p.clamp(0.0, 1.0),
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ~1.5e-7, ample for significance reporting).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Mean with a normal-approximation 95% confidence half-width.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MeanCi {
    pub mean: f64,
    pub half_width: f64,
    pub n: usize,
}

pub fn mean_ci95(xs: &[f64]) -> MeanCi {
    let n = xs.len();
    let m = mean(xs);
    let hw = if n < 2 {
        0.0
    } else {
        1.96 * std_dev(xs) / (n as f64).sqrt()
    };
    MeanCi {
        mean: m,
        half_width: hw,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn erf_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [0.5, 0.6, 0.7, 0.8];
        let t = paired_t_test(&a, &a);
        assert_eq!(t.mean_diff, 0.0);
        assert!(!t.significant_at(0.05));
    }

    #[test]
    fn clearly_better_sample_is_significant() {
        let a: Vec<f64> = (0..100).map(|i| 0.8 + 0.001 * (i % 7) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| 0.5 + 0.001 * (i % 5) as f64).collect();
        let t = paired_t_test(&a, &b);
        assert!(t.mean_diff > 0.25);
        assert!(t.significant_at(0.01), "p = {}", t.p_value);
    }

    #[test]
    fn noisy_equal_means_not_significant() {
        let a: Vec<f64> = (0..50).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        let b: Vec<f64> = a.iter().rev().copied().collect();
        let t = paired_t_test(&a, &b);
        assert!(!t.significant_at(0.01), "p = {}", t.p_value);
    }

    #[test]
    fn constant_nonzero_diff_is_infinitely_significant() {
        let a = [1.0, 1.0, 1.0];
        let b = [0.5, 0.5, 0.5];
        let t = paired_t_test(&a, &b);
        assert!(t.t.is_infinite());
        assert!(t.significant_at(0.001));
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| (i % 3) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 3) as f64).collect();
        assert!(mean_ci95(&large).half_width < mean_ci95(&small).half_width);
    }

    #[test]
    #[should_panic(expected = "matched samples")]
    fn mismatched_lengths_panic() {
        paired_t_test(&[1.0, 2.0], &[1.0]);
    }
}
