//! `mbssl-metrics` — ranking metrics, aggregation, and significance tests
//! for the mbssl evaluation protocol.

pub mod aggregate;
pub mod diversity;
pub mod ranking;
pub mod stats;

pub use ranking::{PerInstanceMetrics, RankingMetrics};
pub use stats::{paired_t_test, PairedTTest};
