//! Property-based tests for ranking metrics and statistics.

use proptest::prelude::*;

use mbssl_metrics::aggregate::bucket_by;
use mbssl_metrics::ranking::{hit_at_k, ndcg_at_k, reciprocal_rank, target_rank, RankingMetrics};
use mbssl_metrics::stats::{mean, mean_ci95, paired_t_test, std_normal_cdf};

proptest! {
    #[test]
    fn target_rank_bounded(scores in prop::collection::vec(-100.0f32..100.0, 1..50)) {
        let r = target_rank(&scores);
        prop_assert!(r < scores.len());
    }

    #[test]
    fn raising_target_score_never_worsens_rank(
        mut scores in prop::collection::vec(-10.0f32..10.0, 2..50),
        boost in 0.0f32..20.0
    ) {
        let before = target_rank(&scores);
        scores[0] += boost;
        let after = target_rank(&scores);
        prop_assert!(after <= before);
    }

    #[test]
    fn metrics_bounded_and_monotone(ranks in prop::collection::vec(0usize..200, 1..100)) {
        let m = RankingMetrics::from_ranks(&ranks);
        for v in [m.hr5, m.hr10, m.hr20, m.ndcg5, m.ndcg10, m.ndcg20, m.mrr] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert!(m.hr5 <= m.hr10 && m.hr10 <= m.hr20);
        prop_assert!(m.ndcg5 <= m.ndcg10 && m.ndcg10 <= m.ndcg20);
        prop_assert!(m.ndcg10 <= m.hr10 + 1e-12);
        prop_assert!(m.mrr <= m.hr20 + (1.0 / 21.0)); // mrr tail bound
    }

    #[test]
    fn per_rank_metrics_monotone_in_rank(r1 in 0usize..100, r2 in 0usize..100) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(hit_at_k(lo, 10) >= hit_at_k(hi, 10));
        prop_assert!(ndcg_at_k(lo, 10) >= ndcg_at_k(hi, 10));
        prop_assert!(reciprocal_rank(lo) >= reciprocal_rank(hi));
    }

    #[test]
    fn t_test_antisymmetric(
        a in prop::collection::vec(0.0f64..1.0, 5..40),
        shift in -0.5f64..0.5
    ) {
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let ab = paired_t_test(&a, &b);
        let ba = paired_t_test(&b, &a);
        prop_assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-12);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_monotone(x in -5.0f64..5.0, dx in 0.001f64..2.0) {
        prop_assert!(std_normal_cdf(x + dx) >= std_normal_cdf(x));
        prop_assert!((0.0..=1.0).contains(&std_normal_cdf(x)));
    }

    #[test]
    fn ci_contains_mean(xs in prop::collection::vec(-10.0f64..10.0, 2..50)) {
        let ci = mean_ci95(&xs);
        prop_assert!((ci.mean - mean(&xs)).abs() < 1e-12);
        prop_assert!(ci.half_width >= 0.0);
    }

    #[test]
    fn buckets_partition_all_indices(
        keys in prop::collection::vec(0usize..100, 0..100)
    ) {
        let groups = bucket_by(&keys, &[10, 30, 60]);
        let mut seen = vec![false; keys.len()];
        for g in &groups {
            for &i in &g.indices {
                prop_assert!(!seen[i], "index in two buckets");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "index missing from buckets");
    }
}
