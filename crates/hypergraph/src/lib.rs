//! `mbssl-hypergraph` — hypergraph incidence structures, multi-granular
//! sequence-hypergraph builders, and hypergraph transformer layers.
//!
//! The reproduced model encodes each user's multi-behavior sequence through
//! a hypergraph whose nodes are sequence positions and whose hyperedges
//! capture behavior-level, temporal-window, and item-repetition structure
//! (see `DESIGN.md` §2.2).

pub mod build;
pub mod incidence;
pub mod layers;

pub use build::{build_batch_incidence, BatchIncidence, HypergraphConfig};
pub use incidence::{EdgeType, Hypergraph};
pub use layers::{HypergraphEncoder, HypergraphTransformerLayer};
