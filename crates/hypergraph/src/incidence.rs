//! Hypergraph incidence structures.
//!
//! A hypergraph over `n` nodes is a set of hyperedges, each a non-empty set
//! of node indices plus a type tag. The representation is a plain edge list
//! (sorted, deduplicated member vectors) with dense mask export for the
//! attention layers.

use serde::{Deserialize, Serialize};

/// The type of a hyperedge, used to select its learned query embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeType {
    /// All positions sharing a behavior (the tag is the behavior's dense
    /// embedding index).
    Behavior(usize),
    /// A sliding temporal window.
    Temporal,
    /// Repeated occurrences of the same item.
    Item,
}

impl EdgeType {
    /// Dense id for edge-type embeddings. Behavior tags occupy
    /// `0..behavior_vocab`, then temporal, then item.
    pub fn type_id(self, behavior_vocab: usize) -> usize {
        match self {
            EdgeType::Behavior(b) => {
                assert!(b < behavior_vocab, "behavior tag out of range");
                b
            }
            EdgeType::Temporal => behavior_vocab,
            EdgeType::Item => behavior_vocab + 1,
        }
    }

    /// Size of the edge-type embedding vocabulary.
    pub fn vocab(behavior_vocab: usize) -> usize {
        behavior_vocab + 2
    }
}

/// A hypergraph over sequence positions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Hypergraph {
    num_nodes: usize,
    members: Vec<Vec<usize>>,
    types: Vec<EdgeType>,
}

impl Hypergraph {
    pub fn new(num_nodes: usize) -> Self {
        Hypergraph {
            num_nodes,
            members: Vec::new(),
            types: Vec::new(),
        }
    }

    /// Adds a hyperedge; members are sorted and deduplicated. Empty or
    /// out-of-range member sets are rejected.
    pub fn add_edge(&mut self, mut members: Vec<usize>, edge_type: EdgeType) {
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "hyperedge must have members");
        assert!(
            members.iter().all(|&m| m < self.num_nodes),
            "hyperedge member out of range"
        );
        self.members.push(members);
        self.types.push(edge_type);
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    pub fn num_edges(&self) -> usize {
        self.members.len()
    }

    pub fn edge_members(&self, e: usize) -> &[usize] {
        &self.members[e]
    }

    pub fn edge_type(&self, e: usize) -> EdgeType {
        self.types[e]
    }

    /// Number of hyperedges containing `node`.
    pub fn node_degree(&self, node: usize) -> usize {
        self.members.iter().filter(|m| m.binary_search(&node).is_ok()).count()
    }

    /// Number of members of edge `e`.
    pub fn edge_degree(&self, e: usize) -> usize {
        self.members[e].len()
    }

    /// Dense incidence matrix `[num_edges, num_nodes]` with 1.0 where the
    /// node belongs to the edge.
    pub fn incidence_mask(&self) -> Vec<f32> {
        let mut mask = vec![0.0f32; self.num_edges() * self.num_nodes];
        for (e, members) in self.members.iter().enumerate() {
            for &m in members {
                mask[e * self.num_nodes + m] = 1.0;
            }
        }
        mask
    }

    /// Structural invariants: every edge non-empty, members in range,
    /// sorted, deduplicated.
    pub fn validate(&self) -> Result<(), String> {
        if self.members.len() != self.types.len() {
            return Err("members/types length mismatch".into());
        }
        for (e, members) in self.members.iter().enumerate() {
            if members.is_empty() {
                return Err(format!("edge {e} empty"));
            }
            if members.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("edge {e} not sorted/deduped"));
            }
            if *members.last().unwrap() >= self.num_nodes {
                return Err(format!("edge {e} member out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_sorts_and_dedups() {
        let mut hg = Hypergraph::new(5);
        hg.add_edge(vec![3, 1, 3, 0], EdgeType::Temporal);
        assert_eq!(hg.edge_members(0), &[0, 1, 3]);
        assert_eq!(hg.edge_degree(0), 3);
        hg.validate().unwrap();
    }

    #[test]
    fn degrees() {
        let mut hg = Hypergraph::new(4);
        hg.add_edge(vec![0, 1], EdgeType::Temporal);
        hg.add_edge(vec![1, 2, 3], EdgeType::Item);
        assert_eq!(hg.node_degree(1), 2);
        assert_eq!(hg.node_degree(0), 1);
        assert_eq!(hg.node_degree(3), 1);
    }

    #[test]
    fn incidence_mask_layout() {
        let mut hg = Hypergraph::new(3);
        hg.add_edge(vec![0, 2], EdgeType::Behavior(1));
        hg.add_edge(vec![1], EdgeType::Temporal);
        let m = hg.incidence_mask();
        assert_eq!(m, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn type_ids_are_distinct() {
        let vocab = 5;
        let ids: Vec<usize> = vec![
            EdgeType::Behavior(0).type_id(vocab),
            EdgeType::Behavior(4).type_id(vocab),
            EdgeType::Temporal.type_id(vocab),
            EdgeType::Item.type_id(vocab),
        ];
        let set: std::collections::HashSet<usize> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
        assert!(ids.iter().all(|&i| i < EdgeType::vocab(vocab)));
    }

    #[test]
    #[should_panic(expected = "must have members")]
    fn empty_edge_panics() {
        Hypergraph::new(3).add_edge(vec![], EdgeType::Temporal);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_member_panics() {
        Hypergraph::new(2).add_edge(vec![5], EdgeType::Temporal);
    }
}
