//! Hypergraph transformer layers.
//!
//! One layer performs two masked multi-head attention phases over the
//! incidence structure:
//! 1. **node → edge**: each hyperedge, represented by a learned edge-type
//!    query, attends over its member nodes to form an edge embedding;
//! 2. **edge → node**: each node attends over its incident hyperedges,
//!    followed by a residual connection, LayerNorm, and a position-wise
//!    feed-forward block.
//!
//! Padded edge slots are never attended to (their incidence column is
//! empty), and padded node positions belong to no edge, so their outputs
//! are garbage-but-finite and must be masked by downstream pooling — the
//! same contract as ordinary padded attention.

use rand::Rng;

use mbssl_tensor::nn::{
    join_name, Embedding, FeedForward, LayerNorm, Mode, Module, MultiHeadAttention, ParamMap,
};
use mbssl_tensor::Tensor;

use crate::build::BatchIncidence;
use crate::incidence::EdgeType;

/// Attention mask blocking node→edge pairs outside the incidence relation:
/// shape `[B*H, E, L]`, 1 = blocked.
pub fn node_to_edge_mask(incidence: &BatchIncidence, heads: usize) -> Tensor {
    let (b, e, l) = (incidence.batch, incidence.num_edges, incidence.seq_len);
    let mut data = vec![0.0f32; b * heads * e * l];
    for bi in 0..b {
        for h in 0..heads {
            for ei in 0..e {
                for t in 0..l {
                    let member = incidence.membership[(bi * e + ei) * l + t];
                    data[((bi * heads + h) * e + ei) * l + t] = 1.0 - member;
                }
            }
        }
    }
    Tensor::from_vec(data, [b * heads, e, l])
}

/// Attention mask blocking edge→node pairs outside the incidence relation:
/// shape `[B*H, L, E]`, 1 = blocked.
pub fn edge_to_node_mask(incidence: &BatchIncidence, heads: usize) -> Tensor {
    let (b, e, l) = (incidence.batch, incidence.num_edges, incidence.seq_len);
    let mut data = vec![0.0f32; b * heads * l * e];
    for bi in 0..b {
        for h in 0..heads {
            for t in 0..l {
                for ei in 0..e {
                    let member = incidence.membership[(bi * e + ei) * l + t];
                    data[((bi * heads + h) * l + t) * e + ei] = 1.0 - member;
                }
            }
        }
    }
    Tensor::from_vec(data, [b * heads, l, e])
}

/// One hypergraph transformer layer.
pub struct HypergraphTransformerLayer {
    edge_type_emb: Embedding,
    node_to_edge: MultiHeadAttention,
    edge_to_node: MultiHeadAttention,
    ln_in: LayerNorm,
    ln_ffn: LayerNorm,
    ffn: FeedForward,
    dropout: f32,
    heads: usize,
}

impl HypergraphTransformerLayer {
    pub fn new(
        dim: usize,
        heads: usize,
        ffn_hidden: usize,
        dropout: f32,
        behavior_vocab: usize,
        rng: &mut impl Rng,
    ) -> Self {
        HypergraphTransformerLayer {
            edge_type_emb: Embedding::new(EdgeType::vocab(behavior_vocab), dim, rng),
            node_to_edge: MultiHeadAttention::new(dim, heads, dropout, rng),
            edge_to_node: MultiHeadAttention::new(dim, heads, dropout, rng),
            ln_in: LayerNorm::new(dim),
            ln_ffn: LayerNorm::new(dim),
            ffn: FeedForward::new(
                dim,
                ffn_hidden,
                mbssl_tensor::nn::Activation::Gelu,
                dropout,
                rng,
            ),
            dropout,
            heads,
        }
    }

    /// `nodes: [B, L, D]` → `[B, L, D]`.
    pub fn forward(&self, nodes: &Tensor, incidence: &BatchIncidence, mode: &mut Mode) -> Tensor {
        let (b, l, d) = (nodes.dims()[0], nodes.dims()[1], nodes.dims()[2]);
        debug_assert_eq!(b, incidence.batch);
        debug_assert_eq!(l, incidence.seq_len);
        let e = incidence.num_edges;

        let normed = self.ln_in.forward(nodes);
        // Edge queries from the edge-type table: [B, E, D].
        let edge_q = self
            .edge_type_emb
            .forward(&incidence.edge_type_ids)
            .reshape([b, e, d]);

        let n2e = node_to_edge_mask(incidence, self.heads);
        let edges = self
            .node_to_edge
            .forward(&edge_q, &normed, &normed, Some(&n2e), mode);

        let e2n = edge_to_node_mask(incidence, self.heads);
        let update = self
            .edge_to_node
            .forward(&normed, &edges, &edges, Some(&e2n), mode);

        if mbssl_tensor::fused::enabled() {
            // Same dataflow as below with the residual+LN and the final
            // three-way sum each collapsed to one fused node (element order
            // preserved, so results are bit-identical).
            let da = mode.dropout(&update, self.dropout);
            let h2 = self.ln_ffn.residual_forward(nodes, &da);
            let ffn_out = self.ffn.forward(&h2, mode);
            let df = mode.dropout(&ffn_out, self.dropout);
            nodes.add3(&da, &df)
        } else {
            let x = nodes.add(&mode.dropout(&update, self.dropout));
            let ffn_out = self.ffn.forward(&self.ln_ffn.forward(&x), mode);
            x.add(&mode.dropout(&ffn_out, self.dropout))
        }
    }
}

impl Module for HypergraphTransformerLayer {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        self.edge_type_emb
            .collect_params(&join_name(prefix, "edge_type_emb"), map);
        self.node_to_edge
            .collect_params(&join_name(prefix, "node_to_edge"), map);
        self.edge_to_node
            .collect_params(&join_name(prefix, "edge_to_node"), map);
        self.ln_in.collect_params(&join_name(prefix, "ln_in"), map);
        self.ln_ffn.collect_params(&join_name(prefix, "ln_ffn"), map);
        self.ffn.collect_params(&join_name(prefix, "ffn"), map);
    }
}

/// A stack of hypergraph transformer layers sharing one incidence
/// structure per forward pass.
pub struct HypergraphEncoder {
    layers: Vec<HypergraphTransformerLayer>,
}

impl HypergraphEncoder {
    pub fn new(
        num_layers: usize,
        dim: usize,
        heads: usize,
        ffn_hidden: usize,
        dropout: f32,
        behavior_vocab: usize,
        rng: &mut impl Rng,
    ) -> Self {
        HypergraphEncoder {
            layers: (0..num_layers)
                .map(|_| {
                    HypergraphTransformerLayer::new(
                        dim,
                        heads,
                        ffn_hidden,
                        dropout,
                        behavior_vocab,
                        rng,
                    )
                })
                .collect(),
        }
    }

    pub fn forward(&self, nodes: &Tensor, incidence: &BatchIncidence, mode: &mut Mode) -> Tensor {
        let mut x = nodes.clone();
        for layer in &self.layers {
            x = layer.forward(&x, incidence, mode);
        }
        x
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

impl Module for HypergraphEncoder {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        for (i, layer) in self.layers.iter().enumerate() {
            layer.collect_params(&join_name(prefix, &format!("layer{i}")), map);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_batch_incidence, HypergraphConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_incidence(batch: usize) -> BatchIncidence {
        let len = 8;
        let mut items = Vec::new();
        let mut behaviors = Vec::new();
        let mut valid = Vec::new();
        for b in 0..batch {
            for t in 0..len {
                items.push(1 + (t + b) % 5);
                behaviors.push(if t % 3 == 0 { 4 } else { 1 });
                valid.push(if t < len - b { 1.0 } else { 0.0 });
            }
        }
        let cfg = HypergraphConfig {
            behavior_tags: vec![1, 4],
            window: 4,
            max_item_edges: 2,
        };
        build_batch_incidence(&cfg, &items, &behaviors, &valid, batch, len, 5)
    }

    #[test]
    fn masks_have_right_shapes() {
        let inc = demo_incidence(2);
        let n2e = node_to_edge_mask(&inc, 2);
        assert_eq!(n2e.dims(), &[4, inc.num_edges, 8]);
        let e2n = edge_to_node_mask(&inc, 2);
        assert_eq!(e2n.dims(), &[4, 8, inc.num_edges]);
    }

    #[test]
    fn masks_are_transposes_of_each_other() {
        let inc = demo_incidence(1);
        let n2e = node_to_edge_mask(&inc, 1);
        let e2n = edge_to_node_mask(&inc, 1);
        let e = inc.num_edges;
        for ei in 0..e {
            for t in 0..8 {
                assert_eq!(
                    n2e.at(&[0, ei, t]),
                    e2n.at(&[0, t, ei]),
                    "mismatch at ({ei}, {t})"
                );
            }
        }
    }

    #[test]
    fn layer_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = HypergraphTransformerLayer::new(8, 2, 16, 0.0, 5, &mut rng);
        let inc = demo_incidence(2);
        let nodes = Tensor::ones([2, 8, 8]);
        let y = layer.forward(&nodes, &inc, &mut Mode::Eval);
        assert_eq!(y.dims(), &[2, 8, 8]);
        assert!(y.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn encoder_stacks_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = HypergraphEncoder::new(3, 8, 2, 16, 0.0, 5, &mut rng);
        assert_eq!(enc.num_layers(), 3);
        let inc = demo_incidence(1);
        let nodes = Tensor::ones([1, 8, 8]);
        let y = enc.forward(&nodes, &inc, &mut Mode::Eval);
        assert_eq!(y.dims(), &[1, 8, 8]);
    }

    #[test]
    fn gradients_reach_all_layer_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = HypergraphTransformerLayer::new(4, 1, 8, 0.0, 5, &mut rng);
        let inc = demo_incidence(1);
        let nodes = Tensor::ones([1, 8, 4]);
        layer
            .forward(&nodes, &inc, &mut Mode::Eval)
            .sum_all()
            .backward();
        for (name, t) in layer.param_map("hg").iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }

    #[test]
    fn information_flows_within_behavior_edge() {
        // Two nodes share only a behavior hyperedge (far apart, distinct
        // items). Changing one must influence the other's output.
        let mut rng = StdRng::seed_from_u64(1);
        let layer = HypergraphTransformerLayer::new(4, 1, 8, 0.0, 5, &mut rng);
        let len = 12;
        let items: Vec<usize> = (1..=len).collect();
        let mut behaviors = vec![1usize; len];
        behaviors[0] = 4;
        behaviors[len - 1] = 4; // only positions 0 and 11 share behavior 4
        let valid = vec![1.0f32; len];
        let cfg = HypergraphConfig {
            behavior_tags: vec![1, 4],
            window: 4,
            max_item_edges: 0,
        };
        let inc = build_batch_incidence(&cfg, &items, &behaviors, &valid, 1, len, 5);

        // Per-dimension varied features (constant rows would be erased by
        // the pre-LayerNorm).
        let base: Vec<f32> = (0..len * 4).map(|i| ((i % 7) as f32) * 0.1 - 0.3).collect();
        let mut perturbed = base.clone();
        for i in 0..4 {
            perturbed[(len - 1) * 4 + i] += ((i + 1) as f32) * 0.8;
        }
        let ya = layer.forward(&Tensor::from_vec(base, [1, len, 4]), &inc, &mut Mode::Eval);
        let yb = layer.forward(
            &Tensor::from_vec(perturbed, [1, len, 4]),
            &inc,
            &mut Mode::Eval,
        );
        let d: f32 = (0..4)
            .map(|i| (ya.at(&[0, 0, i]) - yb.at(&[0, 0, i])).abs())
            .sum();
        assert!(d > 1e-5, "no information flow through shared hyperedge");
    }

    #[test]
    fn training_mode_with_dropout_stays_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = HypergraphTransformerLayer::new(8, 2, 16, 0.3, 5, &mut rng);
        let inc = demo_incidence(2);
        let nodes = Tensor::ones([2, 8, 8]);
        let mut drop_rng = StdRng::seed_from_u64(3);
        let y = layer.forward(&nodes, &inc, &mut Mode::Train(&mut drop_rng));
        assert!(y.to_vec().iter().all(|v| v.is_finite()));
    }
}
