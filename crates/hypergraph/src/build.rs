//! Builders: sequence → hypergraph, and padded-batch → incidence tensors.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::incidence::{EdgeType, Hypergraph};

/// Configuration of the multi-granular sequence hypergraph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HypergraphConfig {
    /// Behavior embedding indices that get a behavior-level hyperedge
    /// (typically every behavior present in the dataset).
    pub behavior_tags: Vec<usize>,
    /// Sliding temporal window size (edges cover `[t, t+w)` with stride
    /// `w/2`, so consecutive windows overlap).
    pub window: usize,
    /// Max number of item-repetition hyperedges per sequence (the most
    /// frequent repeated items win).
    pub max_item_edges: usize,
}

impl Default for HypergraphConfig {
    fn default() -> Self {
        HypergraphConfig {
            behavior_tags: Vec::new(),
            window: 8,
            max_item_edges: 4,
        }
    }
}

impl HypergraphConfig {
    /// Number of temporal window slots for sequences of length `len`.
    pub fn num_temporal_edges(&self, len: usize) -> usize {
        if len == 0 || self.window == 0 {
            return 0;
        }
        let stride = (self.window / 2).max(1);
        if len <= self.window {
            1
        } else {
            (len - self.window).div_ceil(stride) + 1
        }
    }

    /// Total edge-slot count for sequences of length `len` (fixed across a
    /// batch so incidence masks stack into a tensor).
    pub fn num_edge_slots(&self, len: usize) -> usize {
        self.behavior_tags.len() + self.num_temporal_edges(len) + self.max_item_edges
    }

    /// Builds the hypergraph of one sequence.
    ///
    /// `behaviors[t]` is the behavior embedding index at position `t`
    /// (padding positions carry `valid[t] == 0` and join no edge). Slots
    /// that would be empty are simply absent from the returned hypergraph;
    /// use [`build_batch_incidence`] for fixed-slot batch layout.
    pub fn build(&self, items: &[usize], behaviors: &[usize], valid: &[f32]) -> Hypergraph {
        let len = items.len();
        assert_eq!(behaviors.len(), len);
        assert_eq!(valid.len(), len);
        let mut hg = Hypergraph::new(len);
        // Behavior edges.
        for &tag in &self.behavior_tags {
            let members: Vec<usize> = (0..len)
                .filter(|&t| valid[t] != 0.0 && behaviors[t] == tag)
                .collect();
            if !members.is_empty() {
                hg.add_edge(members, EdgeType::Behavior(tag));
            }
        }
        // Temporal edges.
        let stride = (self.window / 2).max(1);
        let mut start = 0usize;
        loop {
            let end = (start + self.window).min(len);
            let members: Vec<usize> = (start..end).filter(|&t| valid[t] != 0.0).collect();
            if !members.is_empty() {
                hg.add_edge(members, EdgeType::Temporal);
            }
            if end >= len {
                break;
            }
            start += stride;
        }
        // Item-repetition edges.
        let mut occurrences: HashMap<usize, Vec<usize>> = HashMap::new();
        for t in 0..len {
            if valid[t] != 0.0 {
                occurrences.entry(items[t]).or_default().push(t);
            }
        }
        let mut repeated: Vec<(usize, Vec<usize>)> = occurrences
            .into_iter()
            .filter(|(_, occ)| occ.len() >= 2)
            .collect();
        repeated.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        for (_, occ) in repeated.into_iter().take(self.max_item_edges) {
            hg.add_edge(occ, EdgeType::Item);
        }
        debug_assert!(hg.validate().is_ok());
        hg
    }
}

/// Batch incidence tensors ready for the hypergraph transformer layer.
pub struct BatchIncidence {
    /// Row-major `[batch, num_edges, seq_len]` membership mask (1 = node in
    /// edge).
    pub membership: Vec<f32>,
    /// Row-major `[batch, num_edges]` edge-type embedding ids (padded slots
    /// keep their slot's type id; they are fully masked anyway).
    pub edge_type_ids: Vec<usize>,
    /// Row-major `[batch, num_edges]` flag for non-empty edges.
    pub edge_valid: Vec<f32>,
    pub batch: usize,
    pub num_edges: usize,
    pub seq_len: usize,
}

/// Builds fixed-slot incidence tensors for a padded batch.
///
/// Slot layout (identical for every sequence): one slot per behavior tag,
/// then `num_temporal_edges(seq_len)` temporal slots, then
/// `max_item_edges` item slots. Empty slots have all-zero membership and
/// `edge_valid == 0`.
pub fn build_batch_incidence(
    config: &HypergraphConfig,
    items: &[usize],
    behaviors: &[usize],
    valid: &[f32],
    batch: usize,
    seq_len: usize,
    behavior_vocab: usize,
) -> BatchIncidence {
    assert_eq!(items.len(), batch * seq_len);
    assert_eq!(behaviors.len(), batch * seq_len);
    assert_eq!(valid.len(), batch * seq_len);
    let n_behavior = config.behavior_tags.len();
    let n_temporal = config.num_temporal_edges(seq_len);
    let num_edges = config.num_edge_slots(seq_len);

    let mut membership = vec![0.0f32; batch * num_edges * seq_len];
    let mut edge_type_ids = vec![0usize; batch * num_edges];
    let mut edge_valid = vec![0.0f32; batch * num_edges];

    for b in 0..batch {
        let row = |t: usize| b * seq_len + t;
        let slot_base = b * num_edges;
        // Pre-assign type ids for every slot (even empty ones).
        for (s, &tag) in config.behavior_tags.iter().enumerate() {
            edge_type_ids[slot_base + s] = EdgeType::Behavior(tag).type_id(behavior_vocab);
        }
        for s in 0..n_temporal {
            edge_type_ids[slot_base + n_behavior + s] = EdgeType::Temporal.type_id(behavior_vocab);
        }
        for s in 0..config.max_item_edges {
            edge_type_ids[slot_base + n_behavior + n_temporal + s] =
                EdgeType::Item.type_id(behavior_vocab);
        }

        // Behavior slots.
        for (s, &tag) in config.behavior_tags.iter().enumerate() {
            let mut any = false;
            for t in 0..seq_len {
                if valid[row(t)] != 0.0 && behaviors[row(t)] == tag {
                    membership[(slot_base + s) * seq_len + t] = 1.0;
                    any = true;
                }
            }
            if any {
                edge_valid[slot_base + s] = 1.0;
            }
        }
        // Temporal slots.
        let stride = (config.window / 2).max(1);
        for s in 0..n_temporal {
            let start = s * stride;
            let end = (start + config.window).min(seq_len);
            let slot = slot_base + n_behavior + s;
            let mut any = false;
            for t in start..end {
                if valid[row(t)] != 0.0 {
                    membership[slot * seq_len + t] = 1.0;
                    any = true;
                }
            }
            if any {
                edge_valid[slot] = 1.0;
            }
        }
        // Item slots.
        let mut occurrences: HashMap<usize, Vec<usize>> = HashMap::new();
        for t in 0..seq_len {
            if valid[row(t)] != 0.0 {
                occurrences.entry(items[row(t)]).or_default().push(t);
            }
        }
        let mut repeated: Vec<(usize, Vec<usize>)> = occurrences
            .into_iter()
            .filter(|(_, occ)| occ.len() >= 2)
            .collect();
        repeated.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        for (s, (_, occ)) in repeated.into_iter().take(config.max_item_edges).enumerate() {
            let slot = slot_base + n_behavior + n_temporal + s;
            for t in occ {
                membership[slot * seq_len + t] = 1.0;
            }
            edge_valid[slot] = 1.0;
        }
    }

    BatchIncidence {
        membership,
        edge_type_ids,
        edge_valid,
        batch,
        num_edges,
        seq_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_inputs() -> (Vec<usize>, Vec<usize>, Vec<f32>) {
        // len 10, behaviors alternate 1/4 (click/purchase), item 3 repeats.
        let items = vec![3, 5, 3, 7, 8, 3, 9, 2, 4, 6];
        let behaviors = vec![1, 1, 1, 4, 1, 1, 4, 1, 1, 1];
        let valid = vec![1.0; 10];
        (items, behaviors, valid)
    }

    fn demo_config() -> HypergraphConfig {
        HypergraphConfig {
            behavior_tags: vec![1, 4],
            window: 4,
            max_item_edges: 2,
        }
    }

    #[test]
    fn behavior_edges_partition_valid_positions() {
        let (items, behaviors, valid) = demo_inputs();
        let hg = demo_config().build(&items, &behaviors, &valid);
        // Edge 0 = clicks, edge 1 = purchases.
        assert_eq!(hg.edge_members(0), &[0, 1, 2, 4, 5, 7, 8, 9]);
        assert_eq!(hg.edge_members(1), &[3, 6]);
        assert_eq!(hg.edge_type(0), EdgeType::Behavior(1));
    }

    #[test]
    fn temporal_windows_overlap_and_cover() {
        let (items, behaviors, valid) = demo_inputs();
        let cfg = demo_config();
        let hg = cfg.build(&items, &behaviors, &valid);
        let temporal: Vec<usize> = (0..hg.num_edges())
            .filter(|&e| hg.edge_type(e) == EdgeType::Temporal)
            .collect();
        assert_eq!(temporal.len(), cfg.num_temporal_edges(10));
        // Every position appears in at least one temporal edge.
        let mut covered = [false; 10];
        for &e in &temporal {
            for &m in hg.edge_members(e) {
                covered[m] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn item_edges_capture_repeats() {
        let (items, behaviors, valid) = demo_inputs();
        let hg = demo_config().build(&items, &behaviors, &valid);
        let item_edges: Vec<usize> = (0..hg.num_edges())
            .filter(|&e| hg.edge_type(e) == EdgeType::Item)
            .collect();
        assert_eq!(item_edges.len(), 1); // only item 3 repeats
        assert_eq!(hg.edge_members(item_edges[0]), &[0, 2, 5]);
    }

    #[test]
    fn padded_positions_join_no_edges() {
        let (items, behaviors, mut valid) = demo_inputs();
        valid[8] = 0.0;
        valid[9] = 0.0;
        let hg = demo_config().build(&items, &behaviors, &valid);
        assert_eq!(hg.node_degree(8), 0);
        assert_eq!(hg.node_degree(9), 0);
    }

    #[test]
    fn num_temporal_edges_formula() {
        let cfg = demo_config(); // window 4, stride 2
        assert_eq!(cfg.num_temporal_edges(0), 0);
        assert_eq!(cfg.num_temporal_edges(3), 1);
        assert_eq!(cfg.num_temporal_edges(4), 1);
        assert_eq!(cfg.num_temporal_edges(5), 2);
        assert_eq!(cfg.num_temporal_edges(10), 4);
    }

    #[test]
    fn batch_incidence_matches_single_build() {
        let (items, behaviors, valid) = demo_inputs();
        let cfg = demo_config();
        let bi = build_batch_incidence(&cfg, &items, &behaviors, &valid, 1, 10, 5);
        assert_eq!(bi.num_edges, cfg.num_edge_slots(10));
        // Behavior slot 0 (clicks) membership matches the per-seq builder.
        let hg = cfg.build(&items, &behaviors, &valid);
        for t in 0..10 {
            let expect = if hg.edge_members(0).contains(&t) { 1.0 } else { 0.0 };
            assert_eq!(bi.membership[t], expect);
        }
        // Every valid slot's membership row is nonzero and vice versa.
        for e in 0..bi.num_edges {
            let any = (0..10).any(|t| bi.membership[e * 10 + t] != 0.0);
            assert_eq!(any, bi.edge_valid[e] != 0.0, "slot {e}");
        }
    }

    #[test]
    fn batch_incidence_handles_multiple_sequences() {
        let (items, behaviors, valid) = demo_inputs();
        let mut items2 = items.clone();
        items2.reverse();
        let all_items: Vec<usize> = items.iter().chain(items2.iter()).copied().collect();
        let all_behaviors: Vec<usize> = behaviors.iter().chain(behaviors.iter()).copied().collect();
        let all_valid: Vec<f32> = valid.iter().chain(valid.iter()).copied().collect();
        let cfg = demo_config();
        let bi = build_batch_incidence(&cfg, &all_items, &all_behaviors, &all_valid, 2, 10, 5);
        assert_eq!(bi.batch, 2);
        assert_eq!(bi.membership.len(), 2 * bi.num_edges * 10);
        assert_eq!(bi.edge_type_ids.len(), 2 * bi.num_edges);
    }

    #[test]
    fn empty_item_slots_are_invalid() {
        // No repeated items at all.
        let items: Vec<usize> = (1..=6).collect();
        let behaviors = vec![1; 6];
        let valid = vec![1.0; 6];
        let cfg = demo_config();
        let bi = build_batch_incidence(&cfg, &items, &behaviors, &valid, 1, 6, 5);
        let n_b = cfg.behavior_tags.len();
        let n_t = cfg.num_temporal_edges(6);
        for s in 0..cfg.max_item_edges {
            assert_eq!(bi.edge_valid[n_b + n_t + s], 0.0);
        }
    }
}
