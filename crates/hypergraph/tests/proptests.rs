//! Property-based tests on hypergraph construction invariants.

use proptest::prelude::*;

use mbssl_hypergraph::{build_batch_incidence, EdgeType, HypergraphConfig};

fn arb_sequence() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<f32>)> {
    (1usize..30).prop_flat_map(|len| {
        (
            prop::collection::vec(1usize..20, len..=len),
            prop::collection::vec(prop::sample::select(vec![1usize, 2, 3, 4]), len..=len),
            prop::collection::vec(prop::sample::select(vec![0.0f32, 1.0]), len..=len),
        )
    })
}

fn config(window: usize, max_item: usize) -> HypergraphConfig {
    HypergraphConfig {
        behavior_tags: vec![1, 2, 3, 4],
        window,
        max_item_edges: max_item,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_hypergraphs_always_validate(
        (items, behaviors, valid) in arb_sequence(),
        window in 1usize..10,
        max_item in 0usize..5
    ) {
        let hg = config(window, max_item).build(&items, &behaviors, &valid);
        prop_assert!(hg.validate().is_ok());
    }

    #[test]
    fn valid_nodes_covered_padded_nodes_isolated(
        (items, behaviors, valid) in arb_sequence(),
        window in 1usize..10
    ) {
        let hg = config(window, 4).build(&items, &behaviors, &valid);
        for (t, &v) in valid.iter().enumerate() {
            if v != 0.0 {
                prop_assert!(hg.node_degree(t) >= 1, "valid node {t} in no edge");
            } else {
                prop_assert_eq!(hg.node_degree(t), 0, "padded node {} joined an edge", t);
            }
        }
    }

    #[test]
    fn behavior_edges_are_homogeneous(
        (items, behaviors, valid) in arb_sequence()
    ) {
        let hg = config(4, 4).build(&items, &behaviors, &valid);
        for e in 0..hg.num_edges() {
            if let EdgeType::Behavior(tag) = hg.edge_type(e) {
                for &m in hg.edge_members(e) {
                    prop_assert_eq!(behaviors[m], tag);
                    prop_assert!(valid[m] != 0.0);
                }
            }
        }
    }

    #[test]
    fn item_edges_are_single_item(
        (items, behaviors, valid) in arb_sequence()
    ) {
        let hg = config(4, 8).build(&items, &behaviors, &valid);
        for e in 0..hg.num_edges() {
            if hg.edge_type(e) == EdgeType::Item {
                let members = hg.edge_members(e);
                prop_assert!(members.len() >= 2);
                let first = items[members[0]];
                for &m in members {
                    prop_assert_eq!(items[m], first);
                }
            }
        }
    }

    #[test]
    fn batch_incidence_consistent_with_edge_valid(
        (items, behaviors, valid) in arb_sequence(),
        window in 1usize..8
    ) {
        let len = items.len();
        let cfg = config(window, 3);
        let bi = build_batch_incidence(&cfg, &items, &behaviors, &valid, 1, len, 5);
        prop_assert_eq!(bi.num_edges, cfg.num_edge_slots(len));
        for e in 0..bi.num_edges {
            let any = (0..len).any(|t| bi.membership[e * len + t] != 0.0);
            prop_assert_eq!(any, bi.edge_valid[e] != 0.0);
        }
        // Edge-type ids in range for the embedding table.
        for &id in &bi.edge_type_ids {
            prop_assert!(id < EdgeType::vocab(5));
        }
    }

    #[test]
    fn temporal_slots_grow_with_length(window in 2usize..10) {
        let cfg = config(window, 0);
        let mut last = 0;
        for len in 1..60 {
            let n = cfg.num_temporal_edges(len);
            prop_assert!(n >= last, "temporal slot count not monotone");
            last = n;
        }
    }
}
