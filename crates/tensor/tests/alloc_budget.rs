//! Allocation-regression guard: once the free lists are warm, a training
//! step must stop hitting the system allocator for its tensor buffers.
//!
//! A counting `#[global_allocator]` wraps `System` and tracks bytes
//! requested. The test runs a fixed small MLP train step a few times to
//! warm the recycling pools, then asserts the steady-state per-step byte
//! traffic stays under a budget far below the model's activation footprint
//! (which is what every step would allocate without recycling). The test
//! degrades to a no-op when `MBSSL_ALLOC=off`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tests in this binary serialize so the global byte counter only sees one
/// test's traffic at a time.
static SERIAL: Mutex<()> = Mutex::new(());

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_tensor::nn::{Linear, Module, ParamMap};
use mbssl_tensor::optim::{Adam, Optimizer};
use mbssl_tensor::alloc;

struct CountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn bytes_now() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

#[test]
fn warm_train_step_stays_under_allocation_budget() {
    let _guard = SERIAL.lock().unwrap();
    if !alloc::enabled() {
        eprintln!("MBSSL_ALLOC=off: skipping allocation budget check");
        return;
    }

    const BATCH: usize = 64;
    const DIM: usize = 128;
    const WARMUP: usize = 4;
    const MEASURED: usize = 8;
    // One forward activation alone is BATCH*DIM floats = 32 KiB; a step
    // builds dozens of activation/gradient buffers of that size (~2 MiB of
    // f32 traffic without recycling). The budget tolerates bookkeeping
    // allocations (graph nodes, boxed closures, the topo-sort set) but not
    // unrecycled tensor buffers.
    const BUDGET_PER_STEP: u64 = 384 * 1024;

    let mut rng = StdRng::seed_from_u64(5);
    let l1 = Linear::new(DIM, DIM, &mut rng);
    let l2 = Linear::new(DIM, DIM, &mut rng);
    let l3 = Linear::new(DIM, 1, &mut rng);
    let mut params = ParamMap::new();
    l1.collect_params("l1", &mut params);
    l2.collect_params("l2", &mut params);
    l3.collect_params("l3", &mut params);
    let mut opt = Adam::new(params.tensors(), 1e-3);

    let x = mbssl_tensor::init::normal([BATCH, DIM], 0.0, 1.0, &mut rng);
    let labels: Vec<f32> = (0..BATCH).map(|i| (i % 2) as f32).collect();

    let mut step = || {
        opt.zero_grad();
        let h = l2.forward(&l1.forward(&x).gelu()).relu();
        let logits = l3.forward(&h).flatten();
        logits.bce_with_logits(&labels).backward();
        opt.step();
    };

    for _ in 0..WARMUP {
        step();
    }

    let before = bytes_now();
    for _ in 0..MEASURED {
        step();
    }
    let per_step = (bytes_now() - before) / MEASURED as u64;

    assert!(
        per_step <= BUDGET_PER_STEP,
        "warm train step allocates {per_step} B/step (budget {BUDGET_PER_STEP} B); \
         tensor buffers are leaking past the recycling allocator"
    );

    // Sanity: the recycler actually served requests during the run.
    let stats = alloc::stats();
    assert!(stats.hits > 0, "allocator reported no hits: {stats:?}");
}

/// The escape hatch and the recycler must agree on values: a tiny training
/// problem converges to the same loss trajectory whether buffers are fresh
/// or recycled (recycling hands out zeroed/overwritten storage only).
#[test]
fn recycled_buffers_do_not_change_math() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let lin = Linear::new(8, 1, &mut rng);
    let mut params = ParamMap::new();
    lin.collect_params("l", &mut params);
    let mut opt = Adam::new(params.tensors(), 0.05);
    let x = mbssl_tensor::init::normal([16, 8], 0.0, 1.0, &mut rng);
    let labels: Vec<f32> = (0..16).map(|i| (i % 2) as f32).collect();

    let mut losses = Vec::new();
    for _ in 0..30 {
        opt.zero_grad();
        let loss = lin.forward(&x).flatten().bce_with_logits(&labels);
        losses.push(loss.item());
        loss.backward();
        opt.step();
    }
    // Strictly decreasing overall and finite throughout: recycled storage
    // never injected stale values.
    assert!(losses.iter().all(|l| l.is_finite()));
    assert!(losses.last().unwrap() < losses.first().unwrap());
}
