//! Equivalence of the pool-parallelized kernels with single-threaded
//! references (ISSUE: pooled GEMM must match the sequential kernel).
//!
//! Two layers of checking:
//! - small random shapes against a naive triple-loop reference (tolerance
//!   compare — catches chunk-routing bugs like wrong row offsets);
//! - shapes above the parallel threshold against row-at-a-time calls of the
//!   same public kernel, which take the sequential path (`m < 2`). Per-row
//!   arithmetic order is identical under any chunking, so these must match
//!   bit for bit.

use mbssl_tensor::kernels;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Naive C += A·B (A row-major m×k, B k×n).
fn naive_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a[i * k + p] as f64;
            for j in 0..n {
                c[i * n + j] += a_ip * b[p * n + j] as f64;
            }
        }
    }
    c.into_iter().map(|v| v as f32).collect()
}

/// Naive C += A·Bᵀ (A m×k, B n×k).
fn naive_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                c[i * n + j] += a[i * k + p] as f64 * b[j * k + p] as f64;
            }
        }
    }
    c.into_iter().map(|v| v as f32).collect()
}

/// Naive C += Aᵀ·B (A k×m, B k×n).
fn naive_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f64; m * n];
    for p in 0..k {
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] += a[p * m + i] as f64 * b[p * n + j] as f64;
            }
        }
    }
    c.into_iter().map(|v| v as f32).collect()
}

fn assert_close(got: &[f32], want: &[f32], k: usize) {
    // Accumulation-order differences grow with the reduction length.
    let tol = 1e-4f32 * (k as f32).sqrt().max(1.0);
    for (idx, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (g - w).abs() <= tol * w.abs().max(1.0),
            "mismatch at {idx}: {g} vs {w}"
        );
    }
}

proptest! {
    #[test]
    fn gemm_nn_matches_naive(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, m * k), fill(&mut rng, k * n));
        let mut c = vec![0.0f32; m * n];
        kernels::gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_nn(&a, &b, m, k, n), k);
    }

    #[test]
    fn gemm_nt_matches_naive(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, m * k), fill(&mut rng, n * k));
        let mut c = vec![0.0f32; m * n];
        kernels::gemm_nt(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_nt(&a, &b, m, k, n), k);
    }

    #[test]
    fn gemm_tn_matches_naive(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, k * m), fill(&mut rng, k * n));
        let mut c = vec![0.0f32; m * n];
        kernels::gemm_tn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_tn(&a, &b, m, k, n), k);
    }

    // Shapes above PAR_GEMM_THRESHOLD (64³ work elements): the pooled path
    // must be bit-identical to single-row sequential calls.
    #[test]
    fn pooled_gemm_nn_bitwise_equals_rowwise(m in 96usize..128, k in 56usize..72, n in 56usize..72, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, m * k), fill(&mut rng, k * n));
        let mut pooled = vec![0.0f32; m * n];
        kernels::gemm_nn(&a, &b, &mut pooled, m, k, n);
        let mut rowwise = vec![0.0f32; m * n];
        for i in 0..m {
            kernels::gemm_nn(&a[i * k..(i + 1) * k], &b, &mut rowwise[i * n..(i + 1) * n], 1, k, n);
        }
        prop_assert_eq!(pooled, rowwise);
    }

    #[test]
    fn pooled_gemm_nt_bitwise_equals_rowwise(m in 96usize..128, k in 56usize..72, n in 56usize..72, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, m * k), fill(&mut rng, n * k));
        let mut pooled = vec![0.0f32; m * n];
        kernels::gemm_nt(&a, &b, &mut pooled, m, k, n);
        let mut rowwise = vec![0.0f32; m * n];
        for i in 0..m {
            kernels::gemm_nt(&a[i * k..(i + 1) * k], &b, &mut rowwise[i * n..(i + 1) * n], 1, k, n);
        }
        prop_assert_eq!(pooled, rowwise);
    }

    #[test]
    fn pooled_gemm_tn_bitwise_equals_rowwise(m in 96usize..128, k in 56usize..72, n in 56usize..72, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, k * m), fill(&mut rng, k * n));
        let mut pooled = vec![0.0f32; m * n];
        kernels::gemm_tn(&a, &b, &mut pooled, m, k, n);
        let mut rowwise = vec![0.0f32; m * n];
        for i in 0..m {
            // Column i of the k×m A, as a k×1 operand.
            let a_col: Vec<f32> = (0..k).map(|p| a[p * m + i]).collect();
            kernels::gemm_tn(&a_col, &b, &mut rowwise[i * n..(i + 1) * n], 1, k, n);
        }
        prop_assert_eq!(pooled, rowwise);
    }

    // Pooled softmax keeps per-row math sequential: rows must be identical
    // to softmaxing each row alone (small buffers take the sequential path).
    #[test]
    fn pooled_softmax_rows_bitwise_equals_per_row(rows in 256usize..512, cols in 64usize..96, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut full = fill(&mut rng, rows * cols);
        let mut per_row = full.clone();
        kernels::softmax_rows(&mut full, cols);
        for r in per_row.chunks_mut(cols) {
            kernels::softmax_rows(r, cols);
        }
        prop_assert_eq!(full, per_row);
    }
}
