//! Bit-for-bit parity of the hand-written AVX2 microkernels with their
//! scalar references, and of the full `gemm_nn` dispatch (which routes
//! through them when `MBSSL_SIMD` allows) with the naive kernel.
//!
//! The SIMD kernels promise *identity*, not closeness: mul+add instead of
//! FMA, same k-step order, same partial-sum structure, same `a == 0.0`
//! skip. So every assertion here is `==` on f32 bits. CI runs this suite
//! under `MBSSL_THREADS=1`, `2`, and the default, and under
//! `MBSSL_SIMD=off`, to pin that neither threading nor dispatch changes a
//! single bit.

use mbssl_tensor::kernels::{self, PackedB, KC, MR, NR};
use mbssl_tensor::simd;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Exact zeros exercise the microkernel's `a == 0.0` skip, which must fire
/// at identical (row, p) positions in both variants.
fn sprinkle_zeros(v: &mut [f32], rng: &mut StdRng) {
    for x in v.iter_mut() {
        if rng.gen_range(0.0f32..1.0) < 0.15 {
            *x = 0.0;
        }
    }
}

proptest! {
    /// The MR×NR register tile: scalar vs AVX2 across k-block depths
    /// straddling the KC boundary.
    #[test]
    fn gemm_tile_scalar_matches_avx2(kc in 0usize..(KC + 9), seed in 0u64..200) {
        if !simd::avx2_available() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut apack = fill(&mut rng, (kc * MR).max(1));
        sprinkle_zeros(&mut apack, &mut rng);
        let bpack = fill(&mut rng, (kc * NR).max(1));
        let init = fill(&mut rng, MR * NR);
        let mut scalar = init.clone();
        let mut avx2 = init;
        simd::gemm_tile_scalar(&apack, &bpack, &mut scalar, kc);
        // SAFETY: guarded by avx2_available() above.
        unsafe { simd::gemm_tile_avx2(&apack, &bpack, &mut avx2, kc) };
        prop_assert_eq!(scalar, avx2);
    }

    /// The NR-lane nt strip: scalar vs AVX2 across dot lengths and partial
    /// lane counts (m=1-style single-row strips included).
    #[test]
    fn nt_strip_scalar_matches_avx2(k in 0usize..70, nr in 1usize..=NR, seed in 0u64..200) {
        if !simd::avx2_available() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a_row = fill(&mut rng, k);
        sprinkle_zeros(&mut a_row, &mut rng);
        let strip = fill(&mut rng, (k * NR).max(1));
        let init = fill(&mut rng, nr);
        let mut scalar = init.clone();
        let mut avx2 = init;
        simd::nt_strip_scalar(&a_row, &strip, &mut scalar);
        // SAFETY: guarded by avx2_available() above.
        unsafe { simd::nt_strip_avx2(&a_row, &strip, &mut avx2) };
        prop_assert_eq!(scalar, avx2);
    }

    /// Full `gemm_nn` dispatch (naive rows / packed / SIMD / threaded —
    /// whatever the ambient env selects) vs the naive reference across
    /// ragged shapes, including m=1 and k=0.
    #[test]
    fn gemm_nn_dispatch_bitwise_ragged(m in 1usize..12, k in 0usize..48, n in 1usize..24, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, b) = (fill(&mut rng, m * k), fill(&mut rng, k * n));
        sprinkle_zeros(&mut a, &mut rng);
        let mut got = vec![0.0f32; m * n];
        kernels::gemm_nn(&a, &b, &mut got, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_nn_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(got, naive);
    }

    /// Pre-packed GEMM (the inference engine's weight layout) is
    /// bit-identical to `gemm_nn` on the unpacked matrix — both the
    /// pool-dispatched and the explicit-scratch sequential entry points.
    #[test]
    fn prepacked_bitwise_matches_gemm_nn(m in 1usize..12, k in 0usize..48, n in 1usize..24, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, b) = (fill(&mut rng, m * k), fill(&mut rng, k * n));
        sprinkle_zeros(&mut a, &mut rng);
        let mut reference = vec![0.0f32; m * n];
        kernels::gemm_nn(&a, &b, &mut reference, m, k, n);
        let packed = PackedB::pack(&b, k, n);
        let mut got = vec![0.0f32; m * n];
        kernels::gemm_nn_prepacked(&a, &packed, &mut got, m);
        prop_assert_eq!(&got, &reference);
        got.fill(0.0);
        let mut scratch = vec![0.0f32; PackedB::SCRATCH_LEN];
        kernels::gemm_nn_prepacked_scratch(&a, &packed, &mut got, m, &mut scratch);
        prop_assert_eq!(&got, &reference);
    }
}

/// Shapes big enough to cross the packed-path threshold (`m >= 2*MR`,
/// `k*n >= 8192`) and, with enough worker threads, the parallel split —
/// the dispatch tiers the proptest shapes above can't reach.
#[test]
fn gemm_nn_dispatch_bitwise_large_packed_shapes() {
    let mut rng = StdRng::seed_from_u64(41);
    for (m, k, n) in [(16usize, 128usize, 64usize), (33, 300, 40), (9, 64, 129)] {
        let mut a = fill(&mut rng, m * k);
        sprinkle_zeros(&mut a, &mut rng);
        let b = fill(&mut rng, k * n);
        let mut got = vec![0.0f32; m * n];
        kernels::gemm_nn(&a, &b, &mut got, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_nn_naive(&a, &b, &mut naive, m, k, n);
        assert_eq!(got, naive, "m={m} k={k} n={n}");

        let packed = PackedB::pack(&b, k, n);
        let mut pre = vec![0.0f32; m * n];
        kernels::gemm_nn_prepacked(&a, &packed, &mut pre, m);
        assert_eq!(pre, naive, "prepacked m={m} k={k} n={n}");
    }
}
