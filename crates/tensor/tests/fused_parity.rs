//! Bit-for-bit parity of the fused transformer-block ops with the unfused
//! autograd compositions they replace (ISSUE: fusion must not change
//! results — same accumulation order forward and backward, so `==` not
//! "close"). Each property builds both graphs from duplicated leaves and
//! compares the forward bits and every leaf gradient exactly.
//!
//! These run under MBSSL_THREADS=1/2/default in ci.sh; the fused kernels
//! dispatch per `[B*H]` slice, so pool size must never change a bit.

use mbssl_tensor::{dropout_mask, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Pair of leaves with identical bits, one per graph.
fn leaf_pair(data: &[f32], shape: &[usize]) -> (Tensor, Tensor) {
    (
        Tensor::from_vec(data.to_vec(), shape).requires_grad(),
        Tensor::from_vec(data.to_vec(), shape).requires_grad(),
    )
}

/// Random upstream gradient: backward through `out * w` so the seed grad is
/// non-uniform and order bugs can't cancel.
fn backprop_weighted(out: &Tensor, w: &[f32]) {
    let wt = Tensor::from_vec(w.to_vec(), out.dims());
    out.mul(&wt).sum_all().backward();
}

/// Attention masks exercised against sdpa: none, a broadcast `[lq, lk]`
/// random mask, a `[bh, 1, lk]` key-padding mask, and a mask with one row
/// fully masked (softmax over all `-1e9`).
fn make_mask(kind: usize, bh: usize, lq: usize, lk: usize, rng: &mut StdRng) -> Option<Tensor> {
    match kind % 4 {
        0 => None,
        1 => {
            let m: Vec<f32> = (0..lq * lk)
                .map(|_| if rng.gen::<f32>() < 0.3 { 1.0 } else { 0.0 })
                .collect();
            Some(Tensor::from_vec(m, [lq, lk]))
        }
        2 => {
            let m: Vec<f32> = (0..bh * lk)
                .map(|_| if rng.gen::<f32>() < 0.3 { 1.0 } else { 0.0 })
                .collect();
            Some(Tensor::from_vec(m, [bh, 1, lk]))
        }
        _ => {
            // Force the first query row of every slice fully masked.
            let mut m = vec![0.0f32; lq * lk];
            for v in m.iter_mut().take(lk) {
                *v = 1.0;
            }
            Some(Tensor::from_vec(m, [lq, lk]))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // sdpa vs bmm/scale/mask/softmax/dropout/bmm — forward bits and exact
    // q/k/v gradients, over ragged shapes including lq=1, lk=1, dh=1.
    #[test]
    fn sdpa_bitwise_parity(
        bh in 1usize..4,
        lq in 1usize..8,
        lk in 1usize..8,
        dh in 1usize..6,
        mask_kind in 0usize..4,
        dropout_flag in 0usize..2,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let qd = fill(&mut rng, bh * lq * dh);
        let kd = fill(&mut rng, bh * lk * dh);
        let vd = fill(&mut rng, bh * lk * dh);
        let scale = 1.0 / (dh as f32).sqrt();
        let mask = make_mask(mask_kind, bh, lq, lk, &mut rng);
        let dmask = if dropout_flag == 1 {
            Some(dropout_mask(bh * lq * lk, 0.25, &mut rng))
        } else {
            None
        };
        let w = fill(&mut rng, bh * lq * dh);

        let (q1, q2) = leaf_pair(&qd, &[bh, lq, dh]);
        let (k1, k2) = leaf_pair(&kd, &[bh, lk, dh]);
        let (v1, v2) = leaf_pair(&vd, &[bh, lk, dh]);

        let fused = q1.sdpa(&k1, &v1, mask.as_ref(), scale, dmask.clone());

        let mut scores = q2.bmm(&k2.transpose_last()).into_mul_scalar(scale);
        if let Some(m) = &mask {
            scores = scores.masked_fill(m, -1e9);
        }
        let attn = scores.softmax_lastdim();
        let attn = match &dmask {
            Some(dm) => attn.dropout_with_mask(dm),
            None => attn,
        };
        let unfused = attn.bmm(&v2);

        prop_assert_eq!(fused.to_vec(), unfused.to_vec());

        backprop_weighted(&fused, &w);
        backprop_weighted(&unfused, &w);
        prop_assert_eq!(q1.grad().unwrap(), q2.grad().unwrap());
        prop_assert_eq!(k1.grad().unwrap(), k2.grad().unwrap());
        prop_assert_eq!(v1.grad().unwrap(), v2.grad().unwrap());
    }

    // bias_gelu vs add-broadcast + gelu, including both leaf gradients.
    #[test]
    fn bias_gelu_bitwise_parity(
        rows in 1usize..12,
        h in 1usize..16,
        seed in 0u64..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xd = fill(&mut rng, rows * h);
        let bd = fill(&mut rng, h);
        let w = fill(&mut rng, rows * h);

        let (x1, x2) = leaf_pair(&xd, &[rows, h]);
        let (b1, b2) = leaf_pair(&bd, &[h]);

        let fused = x1.bias_gelu(&b1);
        let unfused = x2.add(&b2).gelu();
        prop_assert_eq!(fused.to_vec(), unfused.to_vec());

        backprop_weighted(&fused, &w);
        backprop_weighted(&unfused, &w);
        prop_assert_eq!(x1.grad().unwrap(), x2.grad().unwrap());
        prop_assert_eq!(b1.grad().unwrap(), b2.grad().unwrap());
    }

    // residual_layer_norm vs add + layer_norm, all four leaf gradients.
    #[test]
    fn residual_layer_norm_bitwise_parity(
        rows in 1usize..10,
        d in 1usize..12,
        seed in 0u64..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ad = fill(&mut rng, rows * d);
        let bd = fill(&mut rng, rows * d);
        let gd = fill(&mut rng, d);
        let betad = fill(&mut rng, d);
        let w = fill(&mut rng, rows * d);

        let (a1, a2) = leaf_pair(&ad, &[rows, d]);
        let (b1, b2) = leaf_pair(&bd, &[rows, d]);
        let (g1, g2) = leaf_pair(&gd, &[d]);
        let (beta1, beta2) = leaf_pair(&betad, &[d]);

        let fused = a1.residual_layer_norm(&b1, &g1, &beta1, 1e-5);
        let unfused = a2.add(&b2).layer_norm(&g2, &beta2, 1e-5);
        prop_assert_eq!(fused.to_vec(), unfused.to_vec());

        backprop_weighted(&fused, &w);
        backprop_weighted(&unfused, &w);
        prop_assert_eq!(a1.grad().unwrap(), a2.grad().unwrap());
        prop_assert_eq!(b1.grad().unwrap(), b2.grad().unwrap());
        prop_assert_eq!(g1.grad().unwrap(), g2.grad().unwrap());
        prop_assert_eq!(beta1.grad().unwrap(), beta2.grad().unwrap());
    }

    // add3 vs two chained adds.
    #[test]
    fn add3_bitwise_parity(n in 1usize..64, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ad = fill(&mut rng, n);
        let bd = fill(&mut rng, n);
        let cd = fill(&mut rng, n);
        let w = fill(&mut rng, n);

        let (a1, a2) = leaf_pair(&ad, &[n]);
        let (b1, b2) = leaf_pair(&bd, &[n]);
        let (c1, c2) = leaf_pair(&cd, &[n]);

        let fused = a1.add3(&b1, &c1);
        let unfused = a2.add(&b2).add(&c2);
        prop_assert_eq!(fused.to_vec(), unfused.to_vec());

        backprop_weighted(&fused, &w);
        backprop_weighted(&unfused, &w);
        prop_assert_eq!(a1.grad().unwrap(), a2.grad().unwrap());
        prop_assert_eq!(b1.grad().unwrap(), b2.grad().unwrap());
        prop_assert_eq!(c1.grad().unwrap(), c2.grad().unwrap());
    }

    // The pre-LN sublayer restructure: fused `rln + add3` must match the
    // unfused `x + da` / `ln(·)` / `(x + da) + df` composition, with the
    // normalized intermediate feeding a consumer so its gradient is
    // nontrivial (df depends on h2, as the FFN output does in the block).
    #[test]
    fn preln_restructure_bitwise_parity(
        rows in 1usize..8,
        d in 1usize..10,
        seed in 0u64..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xd = fill(&mut rng, rows * d);
        let dad = fill(&mut rng, rows * d);
        let gd = fill(&mut rng, d);
        let betad = fill(&mut rng, d);
        let w = fill(&mut rng, rows * d);

        let (x1, x2) = leaf_pair(&xd, &[rows, d]);
        let (da1, da2) = leaf_pair(&dad, &[rows, d]);
        let (g1, g2) = leaf_pair(&gd, &[d]);
        let (beta1, beta2) = leaf_pair(&betad, &[d]);

        let h2f = x1.residual_layer_norm(&da1, &g1, &beta1, 1e-5);
        let dff = h2f.gelu(); // stand-in FFN keeps h2's grad nontrivial
        let fused = x1.add3(&da1, &dff);

        let sum = x2.add(&da2);
        let h2u = sum.layer_norm(&g2, &beta2, 1e-5);
        let dfu = h2u.gelu();
        let unfused = sum.add(&dfu);

        prop_assert_eq!(fused.to_vec(), unfused.to_vec());

        backprop_weighted(&fused, &w);
        backprop_weighted(&unfused, &w);
        prop_assert_eq!(x1.grad().unwrap(), x2.grad().unwrap());
        prop_assert_eq!(da1.grad().unwrap(), da2.grad().unwrap());
        prop_assert_eq!(g1.grad().unwrap(), g2.grad().unwrap());
        prop_assert_eq!(beta1.grad().unwrap(), beta2.grad().unwrap());
    }
}
