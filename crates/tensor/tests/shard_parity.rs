//! Bit-for-bit parity of the sharded embedding-gradient scatter-add with
//! the sequential reference (ISSUE 9: sharding must not change results —
//! per-destination add order is preserved, so `==` on bits, not "close").
//!
//! These run under MBSSL_THREADS=1/2/default in ci.sh; the shard count
//! tracks the pool size, so pool size must never change a bit. Both the
//! raw kernels and the full embedding backward (which dispatches per
//! MBSSL_SHARD_EMB) are pinned.

use mbssl_tensor::sharded::{
    scatter_add, scatter_add_reference, scatter_add_sharded, scatter_add_sharded_with,
};
use mbssl_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Raw kernels over ragged vocab/dim/batch, duplicate-heavy id lists.
    #[test]
    fn sharded_scatter_bitwise_parity(
        rows in 1usize..300,
        d in 1usize..17,
        n in 0usize..600,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ids: Vec<usize> = (0..n).map(|_| rng.gen_range(0..rows)).collect();
        let grad: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let mut reference = vec![0.0f32; rows * d];
        let mut shardwise = vec![0.0f32; rows * d];
        scatter_add_reference(&mut reference, d, &ids, &grad);
        scatter_add_sharded(&mut shardwise, d, &ids, &grad);
        prop_assert_eq!(bits(&reference), bits(&shardwise));
        let mut dispatched = vec![0.0f32; rows * d];
        scatter_add(&mut dispatched, d, &ids, &grad);
        prop_assert_eq!(bits(&reference), bits(&dispatched));
    }

    // Explicit shard counts, decoupled from MBSSL_THREADS: counts that
    // exceed sqrt(rows) leave trailing shards with empty row ranges
    // (REVIEW.md: rows=50/shards=16 underflowed before clamping), and
    // counts above rows itself pin the fully-empty-trailing-shard edge.
    #[test]
    fn explicit_shard_count_bitwise_parity(
        rows in 1usize..80,
        d in 1usize..9,
        shards in 1usize..33,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 300;
        let ids: Vec<usize> = (0..n).map(|_| rng.gen_range(0..rows)).collect();
        let grad: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let mut reference = vec![0.0f32; rows * d];
        let mut shardwise = vec![0.0f32; rows * d];
        scatter_add_reference(&mut reference, d, &ids, &grad);
        scatter_add_sharded_with(&mut shardwise, d, &ids, &grad, shards);
        prop_assert_eq!(bits(&reference), bits(&shardwise));
    }

    // Full embedding backward: batches big enough to cross MIN_IDS so the
    // sharded path actually engages when enabled.
    #[test]
    fn embedding_backward_bitwise_parity(
        v in 2usize..120,
        d in 1usize..9,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 512 + (seed as usize % 97);
        let ids: Vec<usize> = (0..n).map(|_| rng.gen_range(0..v)).collect();
        let wdata: Vec<f32> = (0..v * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let scale: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-2.0f32..2.0)).collect();

        let run = |use_dispatch: bool| -> Vec<u32> {
            let w = Tensor::from_vec(wdata.clone(), [v, d]).requires_grad();
            let out = w.embedding(&ids);
            let wt = Tensor::from_vec(scale.clone(), out.dims());
            out.mul(&wt).sum_all().backward();
            let g = w.grad().unwrap();
            if use_dispatch {
                // The dispatched grad is whatever Tensor::embedding produced.
                bits(&g)
            } else {
                // Recompute the same gradient with the pinned reference.
                let mut gw = vec![0.0f32; v * d];
                scatter_add_reference(&mut gw, d, &ids, &scale);
                bits(&gw)
            }
        };
        prop_assert_eq!(run(true), run(false));
    }
}
