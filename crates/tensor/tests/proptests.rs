//! Property-based tests (proptest) on the tensor substrate's algebraic
//! invariants.

use mbssl_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with_data(dims: Vec<usize>) -> impl Strategy<Value = (Vec<usize>, Vec<f32>)> {
    let n: usize = dims.iter().product();
    (Just(dims), prop::collection::vec(-10.0f32..10.0, n..=n))
}

proptest! {
    #[test]
    fn ravel_unravel_roundtrip(dims in small_dims(), seed in 0usize..1000) {
        let shape = Shape::new(dims);
        let off = seed % shape.numel();
        prop_assert_eq!(shape.ravel(&shape.unravel(off)), off);
    }

    #[test]
    fn broadcast_is_commutative(a in small_dims(), b in small_dims()) {
        let sa = Shape::new(a);
        let sb = Shape::new(b);
        prop_assert_eq!(sa.broadcast(&sb), sb.broadcast(&sa));
    }

    #[test]
    fn broadcast_with_self_is_identity(dims in small_dims()) {
        let s = Shape::new(dims);
        prop_assert_eq!(s.broadcast(&s), Some(s));
    }

    #[test]
    fn add_commutes((dims, data) in small_dims().prop_flat_map(tensor_with_data),
                    shift in -5.0f32..5.0) {
        let a = Tensor::from_vec(data.clone(), dims.clone());
        let b = Tensor::from_vec(data.iter().map(|v| v + shift).collect::<Vec<_>>(), dims);
        let ab = a.add(&b).to_vec();
        let ba = b.add(&a).to_vec();
        for (x, y) in ab.iter().zip(ba.iter()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn sub_self_is_zero((dims, data) in small_dims().prop_flat_map(tensor_with_data)) {
        let a = Tensor::from_vec(data, dims);
        prop_assert!(a.sub(&a).to_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn softmax_rows_are_distributions(
        (dims, data) in prop::collection::vec(1usize..6, 2..3).prop_flat_map(tensor_with_data)
    ) {
        let t = Tensor::from_vec(data, dims);
        let y = t.softmax_lastdim();
        let cols = *y.dims().last().unwrap();
        for row in y.to_vec().chunks(cols) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0001).contains(&v)));
        }
    }

    #[test]
    fn sum_axis_total_matches_sum_all(
        (dims, data) in prop::collection::vec(1usize..5, 2..4).prop_flat_map(tensor_with_data),
        axis_seed in 0usize..8
    ) {
        let t = Tensor::from_vec(data, dims.clone());
        let axis = (axis_seed % dims.len()) as isize;
        let partial = t.sum_axis(axis, false).sum_all().item();
        let total = t.sum_all().item();
        prop_assert!((partial - total).abs() < 1e-2 * total.abs().max(1.0));
    }

    #[test]
    fn transpose_is_involution(
        (dims, data) in prop::collection::vec(1usize..6, 2..3).prop_flat_map(tensor_with_data)
    ) {
        let t = Tensor::from_vec(data.clone(), dims);
        let back = t.transpose_last().transpose_last();
        prop_assert_eq!(back.to_vec(), data);
    }

    #[test]
    fn reshape_preserves_sum(
        (dims, data) in small_dims().prop_flat_map(tensor_with_data)
    ) {
        let t = Tensor::from_vec(data, dims);
        let n = t.numel();
        prop_assert!((t.reshape([n]).sum_all().item() - t.sum_all().item()).abs() < 1e-4);
    }

    #[test]
    fn matmul_identity_is_noop(n in 1usize..6, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let a = Tensor::from_vec(data.clone(), [n, n]);
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n { eye[i * n + i] = 1.0; }
        let id = Tensor::from_vec(eye, [n, n]);
        let y = a.matmul(&id).to_vec();
        for (x, e) in y.iter().zip(data.iter()) {
            prop_assert!((x - e).abs() < 1e-4);
        }
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm(
        (dims, data) in prop::collection::vec(2usize..6, 2..3).prop_flat_map(tensor_with_data)
    ) {
        // Skip degenerate all-zero rows by shifting.
        let t = Tensor::from_vec(data.iter().map(|v| v + 0.1).collect::<Vec<_>>(), dims);
        let y = t.l2_normalize_lastdim(1e-12);
        let cols = *y.dims().last().unwrap();
        for row in y.to_vec().chunks(cols) {
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            // Rows that were ~zero after shift may deviate; allow slack.
            prop_assert!(norm < 1.001);
        }
    }

    #[test]
    fn grad_of_sum_is_ones((dims, data) in small_dims().prop_flat_map(tensor_with_data)) {
        let t = Tensor::from_vec(data, dims).requires_grad();
        t.sum_all().backward();
        prop_assert!(t.grad().unwrap().iter().all(|&g| g == 1.0));
    }

    #[test]
    fn backward_linearity(
        (dims, data) in small_dims().prop_flat_map(tensor_with_data),
        c in -3.0f32..3.0
    ) {
        // d(c·sum)/dx == c
        let t = Tensor::from_vec(data, dims).requires_grad();
        t.sum_all().mul_scalar(c).backward();
        for g in t.grad().unwrap() {
            prop_assert!((g - c).abs() < 1e-5);
        }
    }
}
