//! Round-trip error bounds for the quantized catalog-scorer storage
//! ([`mbssl_tensor::quant`]).
//!
//! The i8 scheme stores one scale per row (`max_abs / 127`), so every
//! decoded element must sit within half a quantization step
//! (`scale / 2`) of the original, and every dot product within the sum of
//! per-element bounds. bf16 keeps 8 mantissa bits, so relative error per
//! element is below 2^-8 (0.4%). These bounds are what justifies the
//! default `MBSSL_QUANT_TOL` drift gate on ranking metrics.

use mbssl_tensor::quant::{bf16_to_f32, f32_to_bf16, Bf16Rows, QuantizedRows};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    /// Every element decodes to within scale/2 of the original; the row
    /// scale is exactly max_abs/127.
    #[test]
    fn i8_elementwise_error_bounded_by_half_scale(
        rows in 1usize..6, cols in 1usize..40, seed in 0u64..300, amp in 0.01f32..50.0
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-amp..amp)).collect();
        let q = QuantizedRows::quantize(&w, rows, cols);
        let mut decoded = vec![0.0f32; cols];
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            prop_assert_eq!(q.scale(r), if max_abs == 0.0 { 0.0 } else { max_abs / 127.0 });
            q.decode_row_into(r, &mut decoded);
            let bound = q.scale(r) / 2.0 + q.scale(r) * 1e-5 + 1e-12;
            for (j, (&orig, &dec)) in row.iter().zip(decoded.iter()).enumerate() {
                prop_assert!(
                    (orig - dec).abs() <= bound,
                    "row {} col {}: |{} - {}| > {}", r, j, orig, dec, bound
                );
            }
        }
    }

    /// A quantized dot stays within the accumulated per-element bound of
    /// the f32 dot: |q·x − w·x| ≤ Σ_j (scale/2)·|x_j| (plus f32 slack).
    #[test]
    fn i8_dot_error_bounded(cols in 1usize..40, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let q = QuantizedRows::quantize(&w, 1, cols);
        let exact: f32 = w.iter().zip(x.iter()).map(|(&a, &b)| a * b).sum();
        let got = q.dot(0, &x);
        let x_l1: f32 = x.iter().map(|v| v.abs()).sum();
        let bound = q.scale(0) / 2.0 * x_l1 + 1e-3;
        prop_assert!(
            (exact - got).abs() <= bound,
            "|{} - {}| > {}", exact, got, bound
        );
    }

    /// bf16 round-trip keeps relative error under 2^-8 per element (the
    /// worst case for round-to-nearest-even with 8 mantissa bits).
    #[test]
    fn bf16_relative_error_bounded(v in -1.0e6f32..1.0e6) {
        let d = bf16_to_f32(f32_to_bf16(v));
        prop_assert!((v - d).abs() <= v.abs() / 256.0 + f32::MIN_POSITIVE);
    }
}

#[test]
fn i8_zero_row_roundtrips_to_zero() {
    let q = QuantizedRows::quantize(&[0.0; 12], 3, 4);
    for r in 0..3 {
        assert_eq!(q.scale(r), 0.0);
        assert_eq!(q.dot(r, &[1.0, -2.0, 3.0, -4.0]), 0.0);
    }
}

#[test]
fn bf16_rows_dot_matches_elementwise_decode() {
    let mut rng = StdRng::seed_from_u64(5);
    let cols = 24;
    let w: Vec<f32> = (0..cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    let rows = Bf16Rows::convert(&w, 1, cols);
    let manual: f32 = w
        .iter()
        .zip(x.iter())
        .map(|(&a, &b)| bf16_to_f32(f32_to_bf16(a)) * b)
        .sum();
    assert_eq!(rows.dot(0, &x), manual);
}
