//! Bitwise equivalence of the packed/blocked GEMM kernels with the naive
//! row-oriented references (ISSUE: packed microkernels must not change
//! results — same per-element accumulation order, so `==` not "close").
//!
//! Shapes deliberately straddle every block boundary: m around the MR=4
//! microtile, n around the NR=8 strip width, k across the KC=256 k-block,
//! plus the degenerate m=1 / k=0 cases and the pooled dispatch path.

use mbssl_tensor::kernels;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Sprinkles exact zeros into a buffer so the microkernel's `a == 0.0` skip
/// is exercised (it must skip exactly when the naive kernel skips).
fn sprinkle_zeros(v: &mut [f32], rng: &mut StdRng) {
    for x in v.iter_mut() {
        if rng.gen_range(0.0f32..1.0) < 0.15 {
            *x = 0.0;
        }
    }
}

proptest! {
    // Ragged shapes around the MR/NR tile edges; k small enough to stay
    // inside one KC block. Includes m=1 (naive dispatch) and k=0.
    #[test]
    fn packed_nn_bitwise_ragged(m in 1usize..10, k in 0usize..40, n in 1usize..20, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, b) = (fill(&mut rng, m * k), fill(&mut rng, k * n));
        sprinkle_zeros(&mut a, &mut rng);
        let mut packed = vec![0.0f32; m * n];
        kernels::gemm_nn_packed(&a, &b, &mut packed, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_nn_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(packed, naive);
    }

    #[test]
    fn packed_tn_bitwise_ragged(m in 1usize..10, k in 0usize..40, n in 1usize..20, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, b) = (fill(&mut rng, k * m), fill(&mut rng, k * n));
        sprinkle_zeros(&mut a, &mut rng);
        let mut packed = vec![0.0f32; m * n];
        kernels::gemm_tn_packed(&a, &b, &mut packed, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_tn_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(packed, naive);
    }

    #[test]
    fn packed_nt_bitwise_ragged(m in 1usize..10, k in 0usize..40, n in 1usize..20, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, m * k), fill(&mut rng, n * k));
        let mut packed = vec![0.0f32; m * n];
        kernels::gemm_nt_packed(&a, &b, &mut packed, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_nt_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(packed, naive);
    }

    // k crossing the KC=256 block boundary: the packed kernel revisits the
    // same C tile per k-block, which must still accumulate in ascending-p
    // order per element.
    #[test]
    fn packed_nn_bitwise_across_kc(m in 3usize..7, k in 250usize..262, n in 5usize..12, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, b) = (fill(&mut rng, m * k), fill(&mut rng, k * n));
        sprinkle_zeros(&mut a, &mut rng);
        let mut packed = vec![0.0f32; m * n];
        kernels::gemm_nn_packed(&a, &b, &mut packed, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_nn_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(packed, naive);
    }

    #[test]
    fn packed_tn_bitwise_across_kc(m in 3usize..7, k in 250usize..262, n in 5usize..12, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, b) = (fill(&mut rng, k * m), fill(&mut rng, k * n));
        sprinkle_zeros(&mut a, &mut rng);
        let mut packed = vec![0.0f32; m * n];
        kernels::gemm_tn_packed(&a, &b, &mut packed, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_tn_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(packed, naive);
    }

    // The public dispatchers (packed + pooled) must also be bitwise equal
    // to naive at whatever pool size the process is running with — this is
    // the property scripts/ci.sh re-runs under MBSSL_THREADS=1, 2, and the
    // machine default.
    #[test]
    fn dispatch_nn_bitwise_equals_naive(m in 60usize..80, k in 24usize..40, n in 9usize..20, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, b) = (fill(&mut rng, m * k), fill(&mut rng, k * n));
        sprinkle_zeros(&mut a, &mut rng);
        let mut got = vec![0.0f32; m * n];
        kernels::gemm_nn(&a, &b, &mut got, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_nn_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(got, naive);
    }

    #[test]
    fn dispatch_nt_bitwise_equals_naive(m in 60usize..80, k in 24usize..40, n in 9usize..20, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, m * k), fill(&mut rng, n * k));
        let mut got = vec![0.0f32; m * n];
        kernels::gemm_nt(&a, &b, &mut got, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_nt_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(got, naive);
    }

    #[test]
    fn dispatch_tn_bitwise_equals_naive(m in 60usize..80, k in 24usize..40, n in 9usize..20, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, b) = (fill(&mut rng, k * m), fill(&mut rng, k * n));
        sprinkle_zeros(&mut a, &mut rng);
        let mut got = vec![0.0f32; m * n];
        kernels::gemm_tn(&a, &b, &mut got, m, k, n);
        let mut naive = vec![0.0f32; m * n];
        kernels::gemm_tn_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(got, naive);
    }

    // Accumulation into a non-zero C (GEMM is C += A·B, and backward passes
    // rely on it): packed must add exactly what naive adds.
    #[test]
    fn packed_nn_accumulates_bitwise(m in 4usize..9, k in 10usize..30, n in 7usize..18, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (fill(&mut rng, m * k), fill(&mut rng, k * n));
        let base = fill(&mut rng, m * n);
        let mut packed = base.clone();
        kernels::gemm_nn_packed(&a, &b, &mut packed, m, k, n);
        let mut naive = base.clone();
        kernels::gemm_nn_naive(&a, &b, &mut naive, m, k, n);
        prop_assert_eq!(packed, naive);
    }
}

// ---------------------------------------------------------------------
// Zero-size edge cases (regression for the inconsistent empty-dimension
// guards the row helpers used to have): every kernel must be a no-op that
// leaves C untouched, never a panic or a division by zero.
// ---------------------------------------------------------------------

#[test]
fn zero_m_is_noop() {
    let b = vec![1.0f32; 12];
    let mut c: Vec<f32> = vec![];
    kernels::gemm_nn(&[], &b, &mut c, 0, 3, 4);
    kernels::gemm_nt(&[], &b, &mut c, 0, 3, 4);
    kernels::gemm_tn(&[], &b, &mut c, 0, 3, 4);
    assert!(c.is_empty());
}

#[test]
fn zero_k_leaves_c_unchanged() {
    let mut c = vec![7.0f32; 6];
    kernels::gemm_nn(&[], &[], &mut c, 2, 0, 3);
    assert_eq!(c, vec![7.0f32; 6]);
    kernels::gemm_nt(&[], &[], &mut c, 2, 0, 3);
    assert_eq!(c, vec![7.0f32; 6]);
    kernels::gemm_tn(&[], &[], &mut c, 2, 0, 3);
    assert_eq!(c, vec![7.0f32; 6]);
}

#[test]
fn zero_n_is_noop() {
    let a = vec![1.0f32; 6];
    let mut c: Vec<f32> = vec![];
    kernels::gemm_nn(&a, &[], &mut c, 2, 3, 0);
    kernels::gemm_nt(&a, &[], &mut c, 2, 3, 0);
    kernels::gemm_tn(&a, &[], &mut c, 3, 2, 0);
    assert!(c.is_empty());
}

#[test]
fn all_zero_dims_is_noop() {
    let mut c: Vec<f32> = vec![];
    kernels::gemm_nn(&[], &[], &mut c, 0, 0, 0);
    kernels::gemm_nt(&[], &[], &mut c, 0, 0, 0);
    kernels::gemm_tn(&[], &[], &mut c, 0, 0, 0);
    assert!(c.is_empty());
}
