//! Numeric gradient checks: every differentiable op's backward pass is
//! compared against central finite differences.
//!
//! f32 arithmetic limits attainable precision, so the comparison uses a
//! mixed absolute/relative tolerance. Failures here mean the engine would
//! train on silently wrong gradients — these are the most load-bearing
//! tests in the workspace.

use mbssl_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f32 = 1e-2;
const TOL_ABS: f32 = 2e-2;
const TOL_REL: f32 = 2e-2;

/// Checks autograd gradients of `f` at `x0` against central differences.
fn gradcheck(shape: impl Into<Shape>, x0: Vec<f32>, f: impl Fn(&Tensor) -> Tensor) {
    let shape = shape.into();
    let x = Tensor::from_vec(x0.clone(), shape.clone()).requires_grad();
    let loss = f(&x);
    assert_eq!(loss.numel(), 1, "gradcheck target must be scalar");
    loss.backward();
    let analytic = x.grad().expect("no gradient reached the input");

    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus[i] += EPS;
        let mut minus = x0.clone();
        minus[i] -= EPS;
        let fp = f(&Tensor::from_vec(plus, shape.clone())).item();
        let fm = f(&Tensor::from_vec(minus, shape.clone())).item();
        let numeric = (fp - fm) / (2.0 * EPS);
        let a = analytic[i];
        let err = (a - numeric).abs();
        let scale = a.abs().max(numeric.abs()).max(1.0);
        assert!(
            err <= TOL_ABS.max(TOL_REL * scale),
            "grad mismatch at index {i}: analytic {a}, numeric {numeric} (err {err})"
        );
    }
}

fn randu(n: usize, rng: &mut StdRng, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn gradcheck_add_broadcast() {
    let mut rng = StdRng::seed_from_u64(1);
    let other = Tensor::from_vec(randu(3, &mut rng, -1.0, 1.0), [3]);
    gradcheck([2, 3], randu(6, &mut rng, -1.0, 1.0), move |x| {
        x.add(&other).square().sum_all()
    });
}

#[test]
fn gradcheck_mul_broadcast() {
    let mut rng = StdRng::seed_from_u64(2);
    let other = Tensor::from_vec(randu(2, &mut rng, 0.5, 1.5), [2, 1]);
    gradcheck([2, 3], randu(6, &mut rng, -1.0, 1.0), move |x| {
        x.mul(&other).sum_all()
    });
}

#[test]
fn gradcheck_div() {
    let mut rng = StdRng::seed_from_u64(3);
    let denom = Tensor::from_vec(randu(4, &mut rng, 1.0, 2.0), [4]);
    gradcheck([4], randu(4, &mut rng, -1.0, 1.0), move |x| {
        x.div(&denom).sum_all()
    });
}

#[test]
fn gradcheck_div_rhs() {
    let mut rng = StdRng::seed_from_u64(4);
    let numer = Tensor::from_vec(randu(4, &mut rng, -1.0, 1.0), [4]);
    gradcheck([4], randu(4, &mut rng, 1.0, 2.0), move |x| {
        numer.div(x).sum_all()
    });
}

#[test]
fn gradcheck_matmul_lhs() {
    let mut rng = StdRng::seed_from_u64(5);
    let w = Tensor::from_vec(randu(12, &mut rng, -1.0, 1.0), [4, 3]);
    gradcheck([2, 4], randu(8, &mut rng, -1.0, 1.0), move |x| {
        x.matmul(&w).square().sum_all()
    });
}

#[test]
fn gradcheck_matmul_rhs() {
    let mut rng = StdRng::seed_from_u64(6);
    let a = Tensor::from_vec(randu(8, &mut rng, -1.0, 1.0), [2, 4]);
    gradcheck([4, 3], randu(12, &mut rng, -1.0, 1.0), move |x| {
        a.matmul(x).square().sum_all()
    });
}

#[test]
fn gradcheck_bmm() {
    let mut rng = StdRng::seed_from_u64(7);
    let b = Tensor::from_vec(randu(2 * 3 * 2, &mut rng, -1.0, 1.0), [2, 3, 2]);
    gradcheck([2, 2, 3], randu(12, &mut rng, -1.0, 1.0), move |x| {
        x.bmm(&b).square().sum_all()
    });
}

#[test]
fn gradcheck_softmax() {
    let mut rng = StdRng::seed_from_u64(8);
    let w = Tensor::from_vec(randu(6, &mut rng, -1.0, 1.0), [2, 3]);
    gradcheck([2, 3], randu(6, &mut rng, -2.0, 2.0), move |x| {
        x.softmax_lastdim().mul(&w).sum_all()
    });
}

#[test]
fn gradcheck_log_softmax() {
    let mut rng = StdRng::seed_from_u64(9);
    let w = Tensor::from_vec(randu(6, &mut rng, -1.0, 1.0), [2, 3]);
    gradcheck([2, 3], randu(6, &mut rng, -2.0, 2.0), move |x| {
        x.log_softmax_lastdim().mul(&w).sum_all()
    });
}

#[test]
fn gradcheck_layer_norm_input() {
    let mut rng = StdRng::seed_from_u64(10);
    let gamma = Tensor::from_vec(randu(4, &mut rng, 0.5, 1.5), [4]);
    let beta = Tensor::from_vec(randu(4, &mut rng, -0.5, 0.5), [4]);
    let w = Tensor::from_vec(randu(8, &mut rng, -1.0, 1.0), [2, 4]);
    gradcheck([2, 4], randu(8, &mut rng, -2.0, 2.0), move |x| {
        x.layer_norm(&gamma, &beta, 1e-5).mul(&w).sum_all()
    });
}

#[test]
fn gradcheck_layer_norm_gamma() {
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::from_vec(randu(8, &mut rng, -2.0, 2.0), [2, 4]);
    let beta = Tensor::zeros([4]);
    let w = Tensor::from_vec(randu(8, &mut rng, -1.0, 1.0), [2, 4]);
    gradcheck([4], randu(4, &mut rng, 0.5, 1.5), move |g| {
        x.layer_norm(g, &beta, 1e-5).mul(&w).sum_all()
    });
}

#[test]
fn gradcheck_cross_entropy() {
    let mut rng = StdRng::seed_from_u64(12);
    gradcheck([3, 4], randu(12, &mut rng, -2.0, 2.0), |x| {
        x.cross_entropy_logits(&[1, 3, 0])
    });
}

#[test]
fn gradcheck_bce_with_logits() {
    let mut rng = StdRng::seed_from_u64(13);
    gradcheck([4], randu(4, &mut rng, -2.0, 2.0), |x| {
        x.bce_with_logits(&[1.0, 0.0, 1.0, 0.0])
    });
}

#[test]
fn gradcheck_activations() {
    let mut rng = StdRng::seed_from_u64(14);
    // Stay away from relu's kink.
    let x0: Vec<f32> = randu(6, &mut rng, 0.2, 2.0);
    gradcheck([6], x0.clone(), |x| x.relu().square().sum_all());
    gradcheck([6], x0.clone(), |x| x.gelu().sum_all());
    gradcheck([6], x0.clone(), |x| x.sigmoid().sum_all());
    gradcheck([6], x0.clone(), |x| x.tanh().sum_all());
    gradcheck([6], x0.clone(), |x| x.exp().sum_all());
    gradcheck([6], x0.clone(), |x| x.ln().sum_all());
    gradcheck([6], x0.clone(), |x| x.sqrt().sum_all());
    gradcheck([6], x0.clone(), |x| x.softplus().sum_all());
    gradcheck([6], x0, |x| x.recip().sum_all());
}

#[test]
fn gradcheck_reductions() {
    let mut rng = StdRng::seed_from_u64(15);
    let x0 = randu(12, &mut rng, -1.0, 1.0);
    gradcheck([3, 4], x0.clone(), |x| x.sum_axis(0, false).square().sum_all());
    gradcheck([3, 4], x0.clone(), |x| x.mean_axis(-1, true).square().sum_all());
    gradcheck([3, 4], x0, |x| x.mean_all());
}

#[test]
fn gradcheck_max_axis_away_from_ties() {
    // Use well-separated values so the max is stable under perturbation.
    let x0 = vec![0.1, 1.5, -0.7, 2.2, 0.4, -1.9];
    gradcheck([2, 3], x0, |x| x.max_axis(-1, false).square().sum_all());
}

#[test]
fn gradcheck_shape_ops() {
    let mut rng = StdRng::seed_from_u64(16);
    let x0 = randu(12, &mut rng, -1.0, 1.0);
    gradcheck([3, 4], x0.clone(), |x| x.reshape([4, 3]).square().sum_all());
    gradcheck([3, 4], x0.clone(), |x| x.narrow(0, 1, 2).square().sum_all());
    gradcheck([3, 4], x0.clone(), |x| x.transpose_last().square().sum_all());
    gradcheck([3, 4], x0.clone(), |x| x.permute(&[1, 0]).square().sum_all());
    gradcheck([3, 4], x0, |x| x.index_select0(&[0, 2, 2]).square().sum_all());
}

#[test]
fn gradcheck_embedding() {
    let mut rng = StdRng::seed_from_u64(17);
    gradcheck([4, 3], randu(12, &mut rng, -1.0, 1.0), |x| {
        x.embedding(&[1, 3, 1]).square().sum_all()
    });
}

#[test]
fn gradcheck_concat() {
    let mut rng = StdRng::seed_from_u64(18);
    let other = Tensor::from_vec(randu(4, &mut rng, -1.0, 1.0), [2, 2]);
    gradcheck([2, 2], randu(4, &mut rng, -1.0, 1.0), move |x| {
        Tensor::concat(&[x, &other], 1).square().sum_all()
    });
}

#[test]
fn gradcheck_masked_fill() {
    let mut rng = StdRng::seed_from_u64(19);
    let mask = Tensor::from_slice(&[0.0, 1.0, 0.0, 0.0, 1.0, 0.0], [2, 3]);
    gradcheck([2, 3], randu(6, &mut rng, -1.0, 1.0), move |x| {
        x.masked_fill(&mask, -5.0).square().sum_all()
    });
}

#[test]
fn gradcheck_l2_normalize() {
    let mut rng = StdRng::seed_from_u64(20);
    let w = Tensor::from_vec(randu(6, &mut rng, -1.0, 1.0), [2, 3]);
    gradcheck([2, 3], randu(6, &mut rng, 0.5, 1.5), move |x| {
        x.l2_normalize_lastdim(1e-6).mul(&w).sum_all()
    });
}

#[test]
fn gradcheck_composite_attention_like() {
    // A mini attention computation: softmax(QKᵀ)·V through one input.
    let mut rng = StdRng::seed_from_u64(21);
    let k = Tensor::from_vec(randu(6, &mut rng, -1.0, 1.0), [1, 3, 2]);
    let v = Tensor::from_vec(randu(6, &mut rng, -1.0, 1.0), [1, 3, 2]);
    gradcheck([1, 3, 2], randu(6, &mut rng, -1.0, 1.0), move |q| {
        q.bmm(&k.transpose_last())
            .mul_scalar(0.707)
            .softmax_lastdim()
            .bmm(&v)
            .square()
            .sum_all()
    });
}

#[test]
fn gradcheck_maximum_minimum() {
    // Well-separated operands avoid tie ambiguity.
    let other = Tensor::from_slice(&[0.9, -0.8, 0.05, -0.4], [4]);
    let x0 = vec![0.3, -0.2, 0.6, -0.9];
    let o = other.clone();
    gradcheck([4], x0.clone(), move |x| x.maximum(&o).square().sum_all());
    gradcheck([4], x0, move |x| x.minimum(&other).square().sum_all());
}
