//! Parameter initializers. All take an explicit RNG so every model in the
//! workspace is reproducible from a seed.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Uniform initialization in `[low, high)`.
pub fn uniform(shape: impl Into<Shape>, low: f32, high: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let dist = Uniform::new(low, high);
    let data: Vec<f32> = (0..shape.numel()).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, shape)
}

/// Normal initialization with the given mean and standard deviation.
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let dist = Normal::new(mean, std).expect("std must be finite and positive");
    let data: Vec<f32> = (0..shape.numel()).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform for a `[fan_in, fan_out]` weight matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform([fan_in, fan_out], -bound, bound, rng)
}

/// Kaiming/He normal for ReLU networks, `[fan_in, fan_out]`.
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    normal([fan_in, fan_out], 0.0, std, rng)
}

/// Embedding-table initialization: small normal, matching the common
/// `N(0, 0.02)` transformer convention.
pub fn embedding_table(vocab: usize, dim: usize, rng: &mut impl Rng) -> Tensor {
    normal([vocab, dim], 0.0, 0.02, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform([100], -0.5, 0.5, &mut rng);
        assert!(t.to_vec().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal([10_000], 1.0, 2.0, &mut rng);
        let data = t.to_vec();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 =
            data.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(300, 300, &mut rng);
        let bound = (6.0f32 / 600.0).sqrt();
        assert!(t.to_vec().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = embedding_table(10, 4, &mut StdRng::seed_from_u64(3));
        let b = embedding_table(10, 4, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.to_vec(), b.to_vec());
    }
}
