//! Raw `&[f32]` compute kernels.
//!
//! Everything here is plain slice math with no knowledge of tensors or
//! autograd, so it can be unit-tested and benchmarked in isolation. Kernels
//! above a per-op work threshold split their output rows across the
//! persistent worker pool in [`crate::pool`]; chunks claim work from an
//! atomic counter, and each row's arithmetic is identical to the sequential
//! code, so results are bit-identical at any thread count.

use crate::pool;

/// Work (in multiply-adds) below which GEMM stays single-threaded.
const PAR_GEMM_THRESHOLD: usize = 64 * 64 * 64;

/// Elements below which row-wise / elementwise kernels stay
/// single-threaded: broadcasting a pool job costs on the order of a few
/// microseconds, which small tensors cannot amortize.
const PAR_ELEMWISE_THRESHOLD: usize = 1 << 15;

/// Returns the number of worker threads to use for `work` units.
fn thread_count(work: usize, threshold: usize) -> usize {
    if work < threshold {
        return 1;
    }
    pool::threads()
}

/// Rows per parallel chunk when `m` rows are split across the pool.
/// Over-decomposes by 4× relative to the thread count so the atomic chunk
/// claiming can balance uneven row costs.
fn rows_per_chunk(m: usize, threads: usize) -> usize {
    m.div_ceil((threads * 4).min(m).max(1))
}

/// C += A(m×k) · B(k×n), all row-major. `C` must be zeroed by the caller if
/// plain assignment is wanted.
pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let threads = thread_count(m * k * n, PAR_GEMM_THRESHOLD);
    if threads <= 1 || m < 2 {
        gemm_nn_rows(a, b, c, k, n);
        return;
    }
    let rows_per = rows_per_chunk(m, threads);
    pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
        let row = ci * rows_per;
        let take = c_chunk.len() / n;
        let a_chunk = &a[row * k..(row + take) * k];
        gemm_nn_rows(a_chunk, b, c_chunk, k, n);
    });
}

/// Row-panel worker for [`gemm_nn`]: C(rows×n) += A(rows×k)·B(k×n).
fn gemm_nn_rows(a: &[f32], b: &[f32], c: &mut [f32], k: usize, n: usize) {
    let rows = c.len() / n.max(1);
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        // i-k-j loop order: the inner loop is a contiguous axpy over B's
        // row, which auto-vectorizes well.
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// C += A(m×k) · Bᵀ where B is stored row-major as (n×k).
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let threads = thread_count(m * k * n, PAR_GEMM_THRESHOLD);
    if threads <= 1 || m < 2 {
        gemm_nt_rows(a, b, c, k, n);
        return;
    }
    let rows_per = rows_per_chunk(m, threads);
    pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
        let row = ci * rows_per;
        let take = c_chunk.len() / n;
        let a_chunk = &a[row * k..(row + take) * k];
        gemm_nt_rows(a_chunk, b, c_chunk, k, n);
    });
}

fn gemm_nt_rows(a: &[f32], b: &[f32], c: &mut [f32], k: usize, n: usize) {
    let rows = c.len().checked_div(n).unwrap_or(0);
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *c_v += dot(a_row, b_row);
        }
    }
}

/// C += Aᵀ · B where A is stored row-major as (k×m) and B as (k×n);
/// C is (m×n). Used by matmul backward for the lhs-transposed product.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    // Process as rank-1 updates: for each p, C += A[p, :]ᵀ · B[p, :].
    // Parallelize over output rows instead to avoid write contention.
    let threads = thread_count(m * k * n, PAR_GEMM_THRESHOLD);
    if threads <= 1 || m < 2 {
        gemm_tn_rows(a, b, c, 0, m, k, n);
        return;
    }
    let rows_per = rows_per_chunk(m, threads);
    pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
        let row = ci * rows_per;
        let take = c_chunk.len() / n;
        gemm_tn_rows(a, b, c_chunk, row, take, k, n);
    });
}

fn gemm_tn_rows(a: &[f32], b: &[f32], c: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    let m = a.len().checked_div(k).unwrap_or(0);
    for p in 0..k {
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..rows {
            let a_pi = a[p * m + row0 + i];
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-way unrolled accumulation: keeps several FMA chains in flight.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let o = i * 4;
        s0 += a[o] * b[o];
        s1 += a[o + 1] * b[o + 1];
        s2 += a[o + 2] * b[o + 2];
        s3 += a[o + 3] * b[o + 3];
    }
    let mut rest = 0.0f32;
    for i in chunks * 4..a.len() {
        rest += a[i] * b[i];
    }
    s0 + s1 + s2 + s3 + rest
}

/// y += alpha * x.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (y_v, &x_v) in y.iter_mut().zip(x.iter()) {
        *y_v += alpha * x_v;
    }
}

/// Splits a row-major (rows×cols) buffer into row panels across the pool
/// and applies the sequential `body` to each panel. Row math is untouched,
/// so results are identical to a plain `body(data)` call.
fn for_each_row_panel(data: &mut [f32], cols: usize, body: impl Fn(&mut [f32]) + Sync) {
    let threads = thread_count(data.len(), PAR_ELEMWISE_THRESHOLD);
    let rows = data.len() / cols.max(1);
    if threads <= 1 || rows < 2 {
        body(data);
        return;
    }
    let rows_per = rows_per_chunk(rows, threads);
    pool::parallel_chunks_mut(data, rows_per * cols, |_ci, panel| body(panel));
}

/// In-place numerically stable softmax over each row of an (rows×cols)
/// matrix.
pub fn softmax_rows(data: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for_each_row_panel(data, cols, |panel| {
        for row in panel.chunks_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    });
}

/// In-place log-softmax over each row.
pub fn log_softmax_rows(data: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for_each_row_panel(data, cols, |panel| {
        for row in panel.chunks_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter() {
                sum += (*v - max).exp();
            }
            let log_z = max + sum.ln();
            for v in row.iter_mut() {
                *v -= log_z;
            }
        }
    });
}

/// Applies `f` to every element in place, splitting large buffers across
/// the pool. The per-element computation is position-independent, so the
/// result is identical to a sequential map.
pub fn map_inplace(data: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    let threads = thread_count(data.len(), PAR_ELEMWISE_THRESHOLD);
    if threads <= 1 {
        for v in data.iter_mut() {
            *v = f(*v);
        }
        return;
    }
    let chunk = data.len().div_ceil((threads * 4).max(1));
    pool::parallel_chunks_mut(data, chunk.max(1), |_ci, part| {
        for v in part.iter_mut() {
            *v = f(*v);
        }
    });
}

/// `out[i] = f(a[i], b[i])` for equal-length slices, splitting large
/// buffers across the pool.
pub fn zip_map_into(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    let threads = thread_count(out.len(), PAR_ELEMWISE_THRESHOLD);
    if threads <= 1 {
        for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b.iter())) {
            *o = f(x, y);
        }
        return;
    }
    let chunk = out.len().div_ceil((threads * 4).max(1));
    pool::parallel_chunks_mut(out, chunk.max(1), |ci, part| {
        let start = ci * chunk;
        for (j, o) in part.iter_mut().enumerate() {
            *o = f(a[start + j], b[start + j]);
        }
    });
}

/// Raw mutable base pointer that may cross thread boundaries. Each chunk
/// index derives a disjoint window from it, so no two threads alias.
#[derive(Clone, Copy)]
struct SendMut(*mut f32);
unsafe impl Send for SendMut {}
unsafe impl Sync for SendMut {}

/// Fused layer-norm forward: for each of `rows` rows of width `d`,
/// normalizes `x` to zero mean / unit variance and applies `gamma`/`beta`.
/// Writes the output, the normalized activations (`xhat`, saved for
/// backward), and the per-row inverse std (`inv_std`). Rows are
/// independent, so large inputs split across the pool.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_forward_rows(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    xhat: &mut [f32],
    inv_std: &mut [f32],
    d: usize,
    eps: f32,
) {
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len(), xhat.len());
    let rows = inv_std.len();
    debug_assert_eq!(x.len(), rows * d);
    let threads = thread_count(x.len(), PAR_ELEMWISE_THRESHOLD);
    let rows_per = rows_per_chunk(rows, threads);
    let chunks = rows.div_ceil(rows_per.max(1)).max(1);
    let (p_out, p_xhat, p_istd) = (
        SendMut(out.as_mut_ptr()),
        SendMut(xhat.as_mut_ptr()),
        SendMut(inv_std.as_mut_ptr()),
    );
    let body = move |ci: usize| {
        // Bind the wrappers themselves: disjoint capture would otherwise
        // capture the bare non-`Sync` pointers.
        let (p_out, p_xhat, p_istd) = (p_out, p_xhat, p_istd);
        let r0 = ci * rows_per;
        let r1 = (r0 + rows_per).min(rows);
        for r in r0..r1 {
            let o = r * d;
            let row = &x[o..o + d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            unsafe {
                *p_istd.0.add(r) = istd;
                for i in 0..d {
                    let xh = (row[i] - mean) * istd;
                    *p_xhat.0.add(o + i) = xh;
                    *p_out.0.add(o + i) = gamma[i] * xh + beta[i];
                }
            }
        }
    };
    if threads <= 1 || rows < 2 {
        for ci in 0..chunks {
            body(ci);
        }
    } else {
        pool::parallel_for(chunks, body);
    }
}

/// Layer-norm input gradient: per row,
/// `gx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))`
/// with `dxhat = gy * gamma`. Rows are independent and split across the
/// pool like the forward pass.
pub fn layernorm_backward_input_rows(
    gy: &[f32],
    gamma: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gx: &mut [f32],
    d: usize,
) {
    let rows = inv_std.len();
    debug_assert_eq!(gy.len(), rows * d);
    debug_assert_eq!(gx.len(), rows * d);
    let threads = thread_count(gx.len(), PAR_ELEMWISE_THRESHOLD);
    if threads <= 1 || rows < 2 {
        layernorm_backward_input_panel(gy, gamma, xhat, inv_std, gx, 0, rows, d);
        return;
    }
    let rows_per = rows_per_chunk(rows, threads);
    pool::parallel_chunks_mut(gx, rows_per * d, |ci, gx_panel| {
        let r0 = ci * rows_per;
        let take = gx_panel.len() / d;
        layernorm_backward_input_panel(gy, gamma, xhat, inv_std, gx_panel, r0, take, d);
    });
}

fn layernorm_backward_input_panel(
    gy: &[f32],
    gamma: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gx_panel: &mut [f32],
    r0: usize,
    rows: usize,
    d: usize,
) {
    for ri in 0..rows {
        let r = r0 + ri;
        let o = r * d;
        let mut mean_dxhat = 0.0f32;
        let mut mean_dxhat_xhat = 0.0f32;
        for i in 0..d {
            let dxh = gy[o + i] * gamma[i];
            mean_dxhat += dxh;
            mean_dxhat_xhat += dxh * xhat[o + i];
        }
        mean_dxhat /= d as f32;
        mean_dxhat_xhat /= d as f32;
        for i in 0..d {
            let dxh = gy[o + i] * gamma[i];
            gx_panel[ri * d + i] =
                inv_std[r] * (dxh - mean_dxhat - xhat[o + i] * mean_dxhat_xhat);
        }
    }
}

/// Sum of all elements.
#[inline]
pub fn sum(data: &[f32]) -> f32 {
    data.iter().sum()
}

/// Squared L2 norm.
#[inline]
pub fn sq_norm(data: &[f32]) -> f32 {
    data.iter().map(|v| v * v).sum()
}

/// Transposes a row-major (rows×cols) matrix into `out` (cols×rows).
pub fn transpose(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    // Simple blocked transpose for cache friendliness.
    const B: usize = 32;
    for i0 in (0..rows).step_by(B) {
        for j0 in (0..cols).step_by(B) {
            let i_end = (i0 + B).min(rows);
            let j_end = (j0 + B).min(cols);
            for i in i0..i_end {
                for j in j0..j_end {
                    out[j * rows + i] = src[i * cols + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 13) as f32 * 0.25 - 1.0).collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_nn_matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_nn_matches_naive_large_parallel() {
        let (m, k, n) = (70, 65, 72); // exceeds PAR threshold
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_nn_accumulates() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0; 4];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &[11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let (m, k, n) = (4, 6, 3);
        let a = seq(m * k);
        let b_t = seq(n * k); // stored as n×k
        // Build row-major B from Bᵀ for the reference.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_nt(&a, &b_t, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_tn_matches_naive() {
        let (m, k, n) = (5, 4, 3);
        let a_t = seq(k * m); // stored as k×m
        let b = seq(k * n);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(&a_t, &b, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_tn_parallel_matches_naive() {
        let (m, k, n) = (80, 70, 66);
        let a_t = seq(k * m);
        let b = seq(k * n);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(&a_t, &b, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn dot_handles_remainder() {
        let a = seq(11);
        let b = seq(11);
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - expect).abs() < 1e-5);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut data = seq(12);
        softmax_rows(&mut data, 4);
        for row in data.chunks(4) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_stable_with_large_values() {
        let mut data = vec![1000.0, 1001.0, 1002.0];
        softmax_rows(&mut data, 3);
        assert!(data.iter().all(|v| v.is_finite()));
        assert!((data.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let src = seq(8);
        let mut sm = src.clone();
        softmax_rows(&mut sm, 4);
        let mut lsm = src;
        log_softmax_rows(&mut lsm, 4);
        for (l, s) in lsm.iter().zip(sm.iter()) {
            assert!((l - s.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let src = seq(6 * 9);
        let mut t = vec![0.0; 54];
        let mut back = vec![0.0; 54];
        transpose(&src, &mut t, 6, 9);
        transpose(&t, &mut back, 9, 6);
        assert_close(&src, &back);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_close(&y, &[10.5, 21.0]);
    }
}
