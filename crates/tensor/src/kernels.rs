//! Raw `&[f32]` compute kernels.
//!
//! Everything here is plain slice math with no knowledge of tensors or
//! autograd, so it can be unit-tested and benchmarked in isolation. Kernels
//! above a per-op work threshold split their output rows across the
//! persistent worker pool in [`crate::pool`]; chunks claim work from an
//! atomic counter, and each row's arithmetic is identical to the sequential
//! code, so results are bit-identical at any thread count.

use crate::alloc;
use crate::pool;
use crate::simd;
use mbssl_telemetry as telemetry;

/// Work (in multiply-adds) below which GEMM stays single-threaded.
const PAR_GEMM_THRESHOLD: usize = 64 * 64 * 64;

/// B footprint (k·n elements) above which [`gemm_nn`] takes the packed
/// path. Below it the whole of B stays L1-resident for the naive axpy
/// sweep and packing is pure overhead — measured on the model's skinny
/// shapes (k, n ≤ 64) the naive kernel wins, while at 128³ and beyond the
/// packed microkernel does. Both paths are bit-identical, so the cutoff is
/// purely a performance choice.
const PACK_MIN_BN: usize = 8192;

/// C footprint (m·n elements) above which [`gemm_tn`] takes the packed
/// path. The naive p-sweep re-reads all of C every k step, which is free
/// while C is L1-resident (the weight-gradient shapes) and ruinous once it
/// is not.
const PACK_MIN_CMN: usize = 4096;

/// Work (m·k·n multiply-adds) above which [`gemm_nt`] packs Bᵀ into
/// NR-lane strips; the packing cost (n·k moves) is amortized over m rows.
const PACK_NT_MIN_WORK: usize = 16 * 16 * 16;

/// Microkernel tile height: rows of C held in registers per inner call.
/// Public so [`crate::simd`] and the pack-once consumers share the layout.
pub const MR: usize = 4;
/// Microkernel tile width: columns of C per call (one 8-lane AVX2 vector,
/// or two 4-lane vectors on narrower ISAs).
pub const NR: usize = 8;
/// k-dimension block size: pack panels of at most this many k-steps so the
/// active A strip (MR·KC) and B strip (NR·KC) stay cache-resident while the
/// microkernel streams over them.
pub const KC: usize = 256;

/// Elements below which row-wise / elementwise kernels stay
/// single-threaded: broadcasting a pool job costs on the order of a few
/// microseconds, which small tensors cannot amortize.
const PAR_ELEMWISE_THRESHOLD: usize = 1 << 15;

/// Returns the number of worker threads to use for `work` units.
fn thread_count(work: usize, threshold: usize) -> usize {
    if work < threshold {
        return 1;
    }
    pool::threads()
}

/// Rows per parallel chunk when `m` rows are split across the pool.
/// Over-decomposes by 4× relative to the thread count so the atomic chunk
/// claiming can balance uneven row costs.
fn rows_per_chunk(m: usize, threads: usize) -> usize {
    m.div_ceil((threads * 4).min(m).max(1))
}

/// Number of output rows a (rows×n) buffer holds; 0 when either side is
/// empty. All row helpers share this guard so empty dimensions behave
/// identically across kernels.
#[inline]
fn rows_of(c_len: usize, n: usize) -> usize {
    c_len.checked_div(n).unwrap_or(0)
}

/// C += A(m×k) · B(k×n), all row-major. `C` must be zeroed by the caller if
/// plain assignment is wanted.
///
/// Large products run the packed cache-blocked path ([`gemm_nn_packed`]),
/// small ones the naive row kernel ([`gemm_nn_naive`]); both produce
/// bit-identical results, so the dispatch is invisible to callers.
pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let mut sp = telemetry::span("kernel.gemm_nn");
    sp.add_bytes(4 * (m * k + k * n + m * n) as u64);
    let threads = thread_count(m * k * n, PAR_GEMM_THRESHOLD);
    if m < 2 * MR || k * n < PACK_MIN_BN {
        if threads <= 1 || m < 2 {
            gemm_nn_rows_fast(a, b, c, k, n);
        } else {
            let rows_per = rows_per_chunk(m, threads);
            pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
                let row = ci * rows_per;
                let take = c_chunk.len() / n;
                gemm_nn_rows_fast(&a[row * k..(row + take) * k], b, c_chunk, k, n);
            });
        }
        return;
    }
    let bpack = pack_b_panels(b, k, n);
    if threads <= 1 {
        gemm_nn_packed_panel(a, &bpack, c, k, n);
    } else {
        let rows_per = rows_per_chunk(m, threads);
        pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
            let row = ci * rows_per;
            let take = c_chunk.len() / n;
            let a_chunk = &a[row * k..(row + take) * k];
            gemm_nn_packed_panel(a_chunk, &bpack, c_chunk, k, n);
        });
    }
    alloc::recycle(bpack);
}

/// Sequential naive reference for [`gemm_nn`]. Retained as the ground
/// truth the packed path is pinned against (bit-for-bit) in tests.
pub fn gemm_nn_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_nn_rows(a, b, c, k, n);
}

/// Sequential packed path for [`gemm_nn`]; public so tests can exercise it
/// directly on shapes the size dispatch would otherwise route to the naive
/// kernel.
pub fn gemm_nn_packed(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let bpack = pack_b_panels(b, k, n);
    gemm_nn_packed_panel(a, &bpack, c, k, n);
    alloc::recycle(bpack);
}

/// Unrolled row-panel worker the [`gemm_nn`] dispatcher uses below the
/// packing threshold: four k-steps per pass over the C row, quartering the
/// C load/store traffic. Each output element still receives its
/// contributions one `+=` at a time in ascending-p order (never a combined
/// sum) and the `a == 0.0` skip applies per step, so results are
/// bit-identical to [`gemm_nn_rows`]; blocks with a zero step fall back to
/// single-step updates in the same order.
fn gemm_nn_rows_fast(a: &[f32], b: &[f32], c: &mut [f32], k: usize, n: usize) {
    let rows = rows_of(c.len(), n);
    let k4 = k - k % 4;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        // Rows containing exact zeros (post-dropout activations) take the
        // reference loop — its per-step skip already saves the work, and
        // the blocked loop's fallback would only add branches.
        if a_row.iter().any(|&v| v == 0.0) {
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                    *c_v += a_ip * b_v;
                }
            }
            continue;
        }
        let mut p = 0;
        while p < k4 {
            let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
            let b0 = &b[p * n..][..n];
            let b1 = &b[(p + 1) * n..][..n];
            let b2 = &b[(p + 2) * n..][..n];
            let b3 = &b[(p + 3) * n..][..n];
            for (j, c_v) in c_row.iter_mut().enumerate() {
                let mut t = *c_v;
                t += a0 * b0[j];
                t += a1 * b1[j];
                t += a2 * b2[j];
                t += a3 * b3[j];
                *c_v = t;
            }
            p += 4;
        }
        for p in k4..k {
            let a_ip = a_row[p];
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// Row-panel worker for [`gemm_nn`]: C(rows×n) += A(rows×k)·B(k×n).
fn gemm_nn_rows(a: &[f32], b: &[f32], c: &mut [f32], k: usize, n: usize) {
    let rows = rows_of(c.len(), n);
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        // i-k-j loop order: the inner loop is a contiguous axpy over B's
        // row, which auto-vectorizes well.
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// Packs B (k×n row-major) into the panel layout the microkernel streams:
/// KC-row blocks, each holding ⌈n/NR⌉ strips of NR columns stored p-major
/// (`strip[p*NR + j]`). Packing only relocates values — it never combines
/// them — so it cannot change results. Ragged edge strips are zero-padded;
/// the microkernel never reads the pad lanes. The buffer comes from
/// [`alloc`]; callers hand it back with `alloc::recycle`.
fn pack_b_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let n_round = n.div_ceil(NR) * NR;
    let mut out = alloc::zeroed(k * n_round);
    for pc0 in (0..k).step_by(KC) {
        let kc = KC.min(k - pc0);
        let block = pc0 * n_round;
        for (s, j0) in (0..n).step_by(NR).enumerate() {
            let nr = NR.min(n - j0);
            let strip = block + s * kc * NR;
            for p in 0..kc {
                let src = &b[(pc0 + p) * n + j0..][..nr];
                out[strip + p * NR..][..nr].copy_from_slice(src);
            }
        }
    }
    out
}

/// A matrix packed once into the `pack_b_panels` layout, for GEMMs whose
/// right-hand side is reused across many calls (inference weights, the
/// catalog embedding table). Packing is pure data movement, so
/// [`gemm_nn_prepacked`] over a `PackedB` is bit-identical to [`gemm_nn`]
/// over the original row-major matrix.
pub struct PackedB {
    data: Vec<f32>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Packs row-major `b` (`k × n`) into microkernel panels. Done once;
    /// the packed buffer is owned until drop (not recycled).
    pub fn pack(b: &[f32], k: usize, n: usize) -> PackedB {
        assert_eq!(b.len(), k * n, "PackedB::pack shape mismatch");
        PackedB {
            data: pack_b_panels(b, k, n),
            k,
            n,
        }
    }

    /// Inner (k) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column (n) dimension of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packs selected rows of a row-major `table` (`rows × k`) directly
    /// into microkernel panels, treating row `select[j]` as column `j` of
    /// B. Equivalent to gathering the rows, transposing to `k × n`, and
    /// calling [`PackedB::pack`] — the same values land in the same panel
    /// slots, so GEMMs over the result are bit-identical — but fused into
    /// a single pass over the table (no gather or transpose temporaries).
    /// Built for the two-stage retrieval re-ranker, where the selection
    /// changes every request.
    pub fn pack_select(table: &[f32], k: usize, select: &[u32]) -> PackedB {
        let n = select.len();
        let mut data = alloc::zeroed(Self::packed_len(k, n));
        pack_select_fill(table, k, select, &mut data);
        PackedB { data, k, n }
    }

    /// [`PackedB::pack_select`] into caller-owned storage (stale contents
    /// are fine — every slot, pad lanes included, is written). `buf` must
    /// hold exactly [`PackedB::packed_len`]`(k, select.len())` elements.
    /// The returned view borrows `buf`; built for the re-ranker, which
    /// packs a fresh selection per request out of its bump arena instead
    /// of round-tripping the recycling allocator.
    pub fn pack_select_into<'a>(
        table: &[f32],
        k: usize,
        select: &[u32],
        buf: &'a mut [f32],
    ) -> PackedBView<'a> {
        let n = select.len();
        assert_eq!(buf.len(), Self::packed_len(k, n), "pack_select_into buf");
        pack_select_fill(table, k, select, buf);
        PackedBView { data: buf, k, n }
    }

    /// Packed-buffer length (in f32s) for a `k × n` matrix: `n` rounds up
    /// to a whole number of NR-wide strips.
    pub fn packed_len(k: usize, n: usize) -> usize {
        k * n.div_ceil(NR) * NR
    }

    /// A borrowed [`PackedBView`] of this packed matrix.
    pub fn view(&self) -> PackedBView<'_> {
        PackedBView { data: &self.data, k: self.k, n: self.n }
    }

    /// Minimum scratch length callers of
    /// [`gemm_nn_prepacked_scratch`] must provide.
    pub const SCRATCH_LEN: usize = MR * KC;
}

/// A packed B matrix borrowed from caller-owned storage (same panel layout
/// as [`PackedB`]); produced by [`PackedB::pack_select_into`] or
/// [`PackedB::view`]. GEMM entry points accept either form.
#[derive(Clone, Copy)]
pub struct PackedBView<'a> {
    data: &'a [f32],
    k: usize,
    n: usize,
}

impl<'a> PackedBView<'a> {
    /// Inner (k) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column (n) dimension of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl<'a> From<&'a PackedB> for PackedBView<'a> {
    fn from(b: &'a PackedB) -> PackedBView<'a> {
        b.view()
    }
}

/// Shared fill for [`PackedB::pack_select`] / [`PackedB::pack_select_into`]:
/// writes every slot of `data` (ragged-edge pad lanes are zeroed
/// explicitly, full strips are fully overwritten), so stale buffers pack
/// identically to fresh ones.
fn pack_select_fill(table: &[f32], k: usize, select: &[u32], data: &mut [f32]) {
    assert!(k > 0 && table.len() % k == 0, "table must be rows × k");
    let n = select.len();
    let n_round = n.div_ceil(NR) * NR;
    debug_assert_eq!(data.len(), k * n_round);
    for pc0 in (0..k).step_by(KC) {
        let kc = KC.min(k - pc0);
        let block = pc0 * n_round;
        for (s, j0) in (0..n).step_by(NR).enumerate() {
            let nr = NR.min(n - j0);
            let strip = &mut data[block + s * kc * NR..][..kc * NR];
            if nr == NR {
                // Full strip: SIMD 8×8 transposes off the table rows.
                let rows: [&[f32]; NR] = std::array::from_fn(|jj| {
                    &table[select[j0 + jj] as usize * k + pc0..][..kc]
                });
                simd::pack_strip(&rows, kc, strip);
                continue;
            }
            // Ragged edge strip: zero first so the pad lanes read 0.
            strip.fill(0.0);
            for jj in 0..nr {
                let src = &table[select[j0 + jj] as usize * k + pc0..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    strip[p * NR + jj] = v;
                }
            }
        }
    }
}

/// C += A(m×k) · B with B pre-packed by [`PackedB::pack`]. Bit-identical
/// to [`gemm_nn`] on the unpacked matrix (the packed and naive paths share
/// the per-element accumulation order); skips the per-call pack entirely.
pub fn gemm_nn_prepacked(a: &[f32], b: &PackedB, c: &mut [f32], m: usize) {
    debug_assert_eq!(a.len(), m * b.k);
    debug_assert_eq!(c.len(), m * b.n);
    let mut sp = telemetry::span("kernel.gemm_nn");
    sp.add_bytes(4 * (m * b.k + b.k * b.n + m * b.n) as u64);
    let threads = thread_count(m * b.k * b.n, PAR_GEMM_THRESHOLD);
    if threads <= 1 || m < 2 {
        let mut apack = alloc::zeroed(MR * KC);
        gemm_nn_packed_panel_with(a, &b.data, c, b.k, b.n, &mut apack);
        alloc::recycle(apack);
        return;
    }
    let (k, n) = (b.k, b.n);
    let rows_per = rows_per_chunk(m, threads);
    pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
        let row = ci * rows_per;
        let take = c_chunk.len() / n;
        let mut apack = alloc::zeroed(MR * KC);
        gemm_nn_packed_panel_with(&a[row * k..(row + take) * k], &b.data, c_chunk, k, n, &mut apack);
        alloc::recycle(apack);
    });
}

/// [`gemm_nn_prepacked`] with a caller-provided A-repack scratch buffer of
/// at least [`PackedB::SCRATCH_LEN`] elements (no allocator traffic at
/// all). Always sequential — the inference engine calls this per request
/// with arena-owned scratch. Accepts `&PackedB` or a [`PackedBView`].
pub fn gemm_nn_prepacked_scratch<'p>(
    a: &[f32],
    b: impl Into<PackedBView<'p>>,
    c: &mut [f32],
    m: usize,
    apack: &mut [f32],
) {
    let b = b.into();
    debug_assert_eq!(a.len(), m * b.k);
    debug_assert_eq!(c.len(), m * b.n);
    assert!(apack.len() >= PackedB::SCRATCH_LEN, "scratch too small");
    let mut sp = telemetry::span("kernel.gemm_nn");
    sp.add_bytes(4 * (m * b.k + b.k * b.n + m * b.n) as u64);
    gemm_nn_packed_panel_with(a, b.data, c, b.k, b.n, apack);
}

/// Packed driver for one row panel of [`gemm_nn`]:
/// C(rows×n) += A(rows×k) · B, with B already packed by [`pack_b_panels`].
/// A is repacked per (KC-block × MR-strip) into a small p-major buffer so
/// the microkernel reads both operands contiguously.
fn gemm_nn_packed_panel(a: &[f32], bpack: &[f32], c: &mut [f32], k: usize, n: usize) {
    let mut apack = alloc::zeroed(MR * KC);
    gemm_nn_packed_panel_with(a, bpack, c, k, n, &mut apack);
    alloc::recycle(apack);
}

/// [`gemm_nn_packed_panel`] with caller-provided A-repack scratch
/// (`len >= MR*KC`; stale contents are fine — every position read is
/// written first within its tile).
fn gemm_nn_packed_panel_with(
    a: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    k: usize,
    n: usize,
    apack: &mut [f32],
) {
    let rows = rows_of(c.len(), n);
    let n_round = n.div_ceil(NR) * NR;
    for pc0 in (0..k).step_by(KC) {
        let kc = KC.min(k - pc0);
        let block = pc0 * n_round;
        for i0 in (0..rows).step_by(MR) {
            let mr = MR.min(rows - i0);
            if mr < MR {
                apack.iter_mut().for_each(|v| *v = 0.0);
            }
            // apack[p*MR + r] = A[i0+r][pc0+p]
            for r in 0..mr {
                let a_row = &a[(i0 + r) * k + pc0..][..kc];
                for (p, &v) in a_row.iter().enumerate() {
                    apack[p * MR + r] = v;
                }
            }
            for (s, j0) in (0..n).step_by(NR).enumerate() {
                let nr = NR.min(n - j0);
                let strip = &bpack[block + s * kc * NR..][..kc * NR];
                microkernel(apack, strip, &mut c[i0 * n + j0..], n, mr, nr, kc);
            }
        }
    }
}

/// The register-tiled inner kernel shared by the packed `nn` and `tn`
/// paths: C tile (mr×nr, rows `c_stride` apart, `c` starting at the tile's
/// top-left element) += Apack·Bpack over `kc` packed steps, with the C tile
/// held in registers for the whole k-sweep.
///
/// Bit-identity with the naive kernels: every output element accumulates
/// its k-terms in ascending-p order, the `a == 0.0` skip is applied per
/// (row, p) exactly like the naive axpy loops, and loading the tile into
/// registers / storing it back does not alter f32 bits. KC-blocking splits
/// the sweep, but blocks are visited in ascending-p order, so the
/// per-element addition sequence is unchanged.
#[inline]
fn microkernel(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    c_stride: usize,
    mr: usize,
    nr: usize,
    kc: usize,
) {
    if mr == MR && nr == NR {
        // Full tile: fixed bounds so the accumulators stay in registers.
        // The k-sweep itself lives in `simd::gemm_tile`, which picks the
        // AVX2 or scalar variant (bit-identical either way).
        let mut acc = [0.0f32; MR * NR];
        for r in 0..MR {
            acc[r * NR..][..NR].copy_from_slice(&c[r * c_stride..][..NR]);
        }
        simd::gemm_tile(apack, bpack, &mut acc, kc);
        for r in 0..MR {
            c[r * c_stride..][..NR].copy_from_slice(&acc[r * NR..][..NR]);
        }
        return;
    }
    // Ragged edge tile: same accumulation order over partial bounds.
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate().take(mr) {
        row[..nr].copy_from_slice(&c[r * c_stride..][..nr]);
    }
    for p in 0..kc {
        let b = &bpack[p * NR..][..NR];
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            let a = apack[p * MR + r];
            if a == 0.0 {
                continue;
            }
            for (acc_v, &b_v) in row.iter_mut().zip(b.iter()).take(nr) {
                *acc_v += a * b_v;
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        c[r * c_stride..][..nr].copy_from_slice(&row[..nr]);
    }
}

/// C += A(m×k) · Bᵀ where B is stored row-major as (n×k).
///
/// The naive kernel computes each output element as one [`dot`] call, which
/// leaves SIMD lanes idle (a dot is a serial reduction). The packed path
/// transposes B into NR-lane p-major strips and runs `nt_row_strip`,
/// which advances NR dot products in lock-step — each lane reproduces
/// `dot`'s exact chain structure (four partial sums over p mod 4, a
/// remainder chain, then `s0+s1+s2+s3+rest`), so every output element is
/// bit-identical to the naive kernel at any thread count.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let mut sp = telemetry::span("kernel.gemm_nt");
    sp.add_bytes(4 * (m * k + n * k + m * n) as u64);
    let threads = thread_count(m * k * n, PAR_GEMM_THRESHOLD);
    if m < MR || m * k * n < PACK_NT_MIN_WORK {
        if threads <= 1 || m < 2 {
            gemm_nt_rows(a, b, c, k, n);
        } else {
            let rows_per = rows_per_chunk(m, threads);
            pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
                let row = ci * rows_per;
                let take = c_chunk.len() / n;
                gemm_nt_rows(&a[row * k..(row + take) * k], b, c_chunk, k, n);
            });
        }
        return;
    }
    let bpack = pack_bt_panels(b, k, n);
    if threads <= 1 {
        gemm_nt_packed_panel(a, &bpack, c, k, n);
    } else {
        let rows_per = rows_per_chunk(m, threads);
        pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
            let row = ci * rows_per;
            let take = c_chunk.len() / n;
            let a_chunk = &a[row * k..(row + take) * k];
            gemm_nt_packed_panel(a_chunk, &bpack, c_chunk, k, n);
        });
    }
    alloc::recycle(bpack);
}

/// Sequential naive reference for [`gemm_nt`].
pub fn gemm_nt_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    gemm_nt_rows(a, b, c, k, n);
}

/// Sequential packed path for [`gemm_nt`]; public for the bitwise tests.
pub fn gemm_nt_packed(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let bpack = pack_bt_panels(b, k, n);
    gemm_nt_packed_panel(a, &bpack, c, k, n);
    alloc::recycle(bpack);
}

/// Packs Bᵀ (B stored n×k row-major) into ⌈n/NR⌉ strips of NR output
/// columns, stored p-major (`strip[p*NR + jj] = B[j0+jj][p]`). Pure data
/// movement; ragged edge lanes are zero-padded and never read back.
fn pack_bt_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let n_strips = n.div_ceil(NR);
    let mut out = alloc::zeroed(n_strips * k * NR);
    for s in 0..n_strips {
        let j0 = s * NR;
        let nr = NR.min(n - j0);
        let strip = s * k * NR;
        for jj in 0..nr {
            let src = &b[(j0 + jj) * k..][..k];
            for (p, &v) in src.iter().enumerate() {
                out[strip + p * NR + jj] = v;
            }
        }
    }
    out
}

/// Row-panel worker for the packed [`gemm_nt`] path.
fn gemm_nt_packed_panel(a: &[f32], bpack: &[f32], c: &mut [f32], k: usize, n: usize) {
    let rows = rows_of(c.len(), n);
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (s, j0) in (0..n).step_by(NR).enumerate() {
            let nr = NR.min(n - j0);
            let strip = &bpack[s * k * NR..][..k * NR];
            nt_row_strip(a_row, strip, &mut c_row[j0..j0 + nr]);
        }
    }
}

/// NR dot products advanced in lock-step: `c_out[jj] += dot(a_row, B[j0+jj])`
/// for one strip of packed Bᵀ lanes. Per lane this is exactly [`dot`]'s
/// arithmetic — the same four p-mod-4 partial-sum chains filled in the same
/// order, the same remainder chain, combined as `s0 + s1 + s2 + s3 + rest` —
/// so the result is bit-identical to calling `dot` per element while the
/// lane dimension vectorizes. The loop body lives in [`crate::simd`],
/// which dispatches between the AVX2 and scalar variants.
fn nt_row_strip(a_row: &[f32], strip: &[f32], c_out: &mut [f32]) {
    simd::nt_strip(a_row, strip, c_out);
}

fn gemm_nt_rows(a: &[f32], b: &[f32], c: &mut [f32], k: usize, n: usize) {
    let rows = rows_of(c.len(), n);
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *c_v += dot(a_row, b_row);
        }
    }
}

/// C += Aᵀ · B where A is stored row-major as (k×m) and B as (k×n);
/// C is (m×n). Used by matmul backward for the lhs-transposed product,
/// where k is the (large) batch·sequence dimension — the packed path packs
/// both A and B so the microkernel streams contiguously and keeps each C
/// tile in registers across the whole k-sweep.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let mut sp = telemetry::span("kernel.gemm_tn");
    sp.add_bytes(4 * (k * m + k * n + m * n) as u64);
    let threads = thread_count(m * k * n, PAR_GEMM_THRESHOLD);
    if m < 2 || m * n < PACK_MIN_CMN {
        if threads <= 1 || m < 2 {
            gemm_tn_rows_fast(a, b, c, 0, m, k, n);
        } else {
            let rows_per = rows_per_chunk(m, threads);
            pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
                let row = ci * rows_per;
                let take = c_chunk.len() / n;
                gemm_tn_rows_fast(a, b, c_chunk, row, take, k, n);
            });
        }
        return;
    }
    let bpack = pack_b_panels(b, k, n);
    if threads <= 1 {
        gemm_tn_packed_panel(a, &bpack, c, 0, m, k, n);
    } else {
        let rows_per = rows_per_chunk(m, threads);
        pool::parallel_chunks_mut(c, rows_per * n, |ci, c_chunk| {
            let row = ci * rows_per;
            let take = c_chunk.len() / n;
            gemm_tn_packed_panel(a, &bpack, c_chunk, row, take, k, n);
        });
    }
    alloc::recycle(bpack);
}

/// Sequential naive reference for [`gemm_tn`].
pub fn gemm_tn_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_tn_rows(a, b, c, 0, m, k, n);
}

/// Sequential packed path for [`gemm_tn`]; public for the bitwise tests.
pub fn gemm_tn_packed(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let bpack = pack_b_panels(b, k, n);
    gemm_tn_packed_panel(a, &bpack, c, 0, m, k, n);
    alloc::recycle(bpack);
}

/// Packed driver for rows `row0..row0+rows` of the [`gemm_tn`] output. A is
/// stored (k×m), so for a fixed p the strip's A values are contiguous; the
/// pack transposes them into the p-major layout the microkernel expects.
fn gemm_tn_packed_panel(
    a: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    let m = rows_of(a.len(), k);
    let n_round = n.div_ceil(NR) * NR;
    let mut apack = alloc::zeroed(MR * KC);
    for pc0 in (0..k).step_by(KC) {
        let kc = KC.min(k - pc0);
        let block = pc0 * n_round;
        for i0 in (0..rows).step_by(MR) {
            let mr = MR.min(rows - i0);
            if mr < MR {
                apack.iter_mut().for_each(|v| *v = 0.0);
            }
            // apack[p*MR + r] = A[pc0+p][row0+i0+r]
            for p in 0..kc {
                let src = &a[(pc0 + p) * m + row0 + i0..][..mr];
                apack[p * MR..][..mr].copy_from_slice(src);
            }
            for (s, j0) in (0..n).step_by(NR).enumerate() {
                let nr = NR.min(n - j0);
                let strip = &bpack[block + s * kc * NR..][..kc * NR];
                microkernel(&apack, strip, &mut c[i0 * n + j0..], n, mr, nr, kc);
            }
        }
    }
    alloc::recycle(apack);
}

/// Unrolled counterpart of [`gemm_tn_rows`] the dispatcher uses below the
/// packing threshold. `tn` sweeps all of C once per k-step, so blocking
/// four steps together quarters the dominant C read/write traffic. Same
/// bit-exactness argument as [`gemm_nn_rows_fast`]: per output element the
/// four contributions are separate `+=` in ascending-p order, zero steps
/// fall back to the single-step path in the same order.
fn gemm_tn_rows_fast(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    let m = rows_of(a.len(), k);
    let k4 = k - k % 4;
    let mut p = 0;
    while p < k4 {
        let b0 = &b[p * n..][..n];
        let b1 = &b[(p + 1) * n..][..n];
        let b2 = &b[(p + 2) * n..][..n];
        let b3 = &b[(p + 3) * n..][..n];
        for i in 0..rows {
            let col = row0 + i;
            let (a0, a1, a2, a3) = (
                a[p * m + col],
                a[(p + 1) * m + col],
                a[(p + 2) * m + col],
                a[(p + 3) * m + col],
            );
            let c_row = &mut c[i * n..(i + 1) * n];
            if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                for (j, c_v) in c_row.iter_mut().enumerate() {
                    let mut t = *c_v;
                    t += a0 * b0[j];
                    t += a1 * b1[j];
                    t += a2 * b2[j];
                    t += a3 * b3[j];
                    *c_v = t;
                }
            } else {
                if a0 != 0.0 {
                    for (c_v, &b_v) in c_row.iter_mut().zip(b0.iter()) {
                        *c_v += a0 * b_v;
                    }
                }
                if a1 != 0.0 {
                    for (c_v, &b_v) in c_row.iter_mut().zip(b1.iter()) {
                        *c_v += a1 * b_v;
                    }
                }
                if a2 != 0.0 {
                    for (c_v, &b_v) in c_row.iter_mut().zip(b2.iter()) {
                        *c_v += a2 * b_v;
                    }
                }
                if a3 != 0.0 {
                    for (c_v, &b_v) in c_row.iter_mut().zip(b3.iter()) {
                        *c_v += a3 * b_v;
                    }
                }
            }
        }
        p += 4;
    }
    for p in k4..k {
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..rows {
            let a_pi = a[p * m + row0 + i];
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

fn gemm_tn_rows(a: &[f32], b: &[f32], c: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    let m = rows_of(a.len(), k);
    for p in 0..k {
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..rows {
            let a_pi = a[p * m + row0 + i];
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-way unrolled accumulation: keeps several FMA chains in flight.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let o = i * 4;
        s0 += a[o] * b[o];
        s1 += a[o + 1] * b[o + 1];
        s2 += a[o + 2] * b[o + 2];
        s3 += a[o + 3] * b[o + 3];
    }
    let mut rest = 0.0f32;
    for i in chunks * 4..a.len() {
        rest += a[i] * b[i];
    }
    s0 + s1 + s2 + s3 + rest
}

/// y += alpha * x.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (y_v, &x_v) in y.iter_mut().zip(x.iter()) {
        *y_v += alpha * x_v;
    }
}

/// Splits a row-major (rows×cols) buffer into row panels across the pool
/// and applies the sequential `body` to each panel. Row math is untouched,
/// so results are identical to a plain `body(data)` call.
fn for_each_row_panel(data: &mut [f32], cols: usize, body: impl Fn(&mut [f32]) + Sync) {
    let threads = thread_count(data.len(), PAR_ELEMWISE_THRESHOLD);
    let rows = data.len() / cols.max(1);
    if threads <= 1 || rows < 2 {
        body(data);
        return;
    }
    let rows_per = rows_per_chunk(rows, threads);
    pool::parallel_chunks_mut(data, rows_per * cols, |_ci, panel| body(panel));
}

/// In-place numerically stable softmax over each row of an (rows×cols)
/// matrix.
pub fn softmax_rows(data: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for_each_row_panel(data, cols, |panel| {
        for row in panel.chunks_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    });
}

/// In-place log-softmax over each row.
pub fn log_softmax_rows(data: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for_each_row_panel(data, cols, |panel| {
        for row in panel.chunks_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter() {
                sum += (*v - max).exp();
            }
            let log_z = max + sum.ln();
            for v in row.iter_mut() {
                *v -= log_z;
            }
        }
    });
}

/// Whether [`map_inplace`] would split a buffer of `n` elements across the
/// pool (callers use this to choose between a fused single-pass serial loop
/// and copy-then-parallel-map).
pub fn map_splits(n: usize) -> bool {
    thread_count(n, PAR_ELEMWISE_THRESHOLD) > 1
}

/// Applies `f` to every element in place, splitting large buffers across
/// the pool. The per-element computation is position-independent, so the
/// result is identical to a sequential map.
pub fn map_inplace(data: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    let threads = thread_count(data.len(), PAR_ELEMWISE_THRESHOLD);
    if threads <= 1 {
        for v in data.iter_mut() {
            *v = f(*v);
        }
        return;
    }
    let chunk = data.len().div_ceil((threads * 4).max(1));
    pool::parallel_chunks_mut(data, chunk.max(1), |_ci, part| {
        for v in part.iter_mut() {
            *v = f(*v);
        }
    });
}

/// `out[i] = f(a[i], b[i])` for equal-length slices, splitting large
/// buffers across the pool.
pub fn zip_map_into(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    let threads = thread_count(out.len(), PAR_ELEMWISE_THRESHOLD);
    if threads <= 1 {
        for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b.iter())) {
            *o = f(x, y);
        }
        return;
    }
    let chunk = out.len().div_ceil((threads * 4).max(1));
    pool::parallel_chunks_mut(out, chunk.max(1), |ci, part| {
        let start = ci * chunk;
        for (j, o) in part.iter_mut().enumerate() {
            *o = f(a[start + j], b[start + j]);
        }
    });
}

/// Raw mutable base pointer that may cross thread boundaries. Each chunk
/// index derives a disjoint window from it, so no two threads alias.
#[derive(Clone, Copy)]
struct SendMut(*mut f32);
unsafe impl Send for SendMut {}
unsafe impl Sync for SendMut {}

/// Fused layer-norm forward: for each of `rows` rows of width `d`,
/// normalizes `x` to zero mean / unit variance and applies `gamma`/`beta`.
/// Writes the output, the normalized activations (`xhat`, saved for
/// backward), and the per-row inverse std (`inv_std`). Rows are
/// independent, so large inputs split across the pool.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_forward_rows(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    xhat: &mut [f32],
    inv_std: &mut [f32],
    d: usize,
    eps: f32,
) {
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len(), xhat.len());
    let rows = inv_std.len();
    debug_assert_eq!(x.len(), rows * d);
    let threads = thread_count(x.len(), PAR_ELEMWISE_THRESHOLD);
    let rows_per = rows_per_chunk(rows, threads);
    let chunks = rows.div_ceil(rows_per.max(1)).max(1);
    let (p_out, p_xhat, p_istd) = (
        SendMut(out.as_mut_ptr()),
        SendMut(xhat.as_mut_ptr()),
        SendMut(inv_std.as_mut_ptr()),
    );
    let body = move |ci: usize| {
        // Bind the wrappers themselves: disjoint capture would otherwise
        // capture the bare non-`Sync` pointers.
        let (p_out, p_xhat, p_istd) = (p_out, p_xhat, p_istd);
        let r0 = ci * rows_per;
        let r1 = (r0 + rows_per).min(rows);
        for r in r0..r1 {
            let o = r * d;
            let row = &x[o..o + d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            unsafe {
                *p_istd.0.add(r) = istd;
                for i in 0..d {
                    let xh = (row[i] - mean) * istd;
                    *p_xhat.0.add(o + i) = xh;
                    *p_out.0.add(o + i) = gamma[i] * xh + beta[i];
                }
            }
        }
    };
    if threads <= 1 || rows < 2 {
        for ci in 0..chunks {
            body(ci);
        }
    } else {
        pool::parallel_for(chunks, body);
    }
}

/// Layer-norm input gradient: per row,
/// `gx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))`
/// with `dxhat = gy * gamma`. Rows are independent and split across the
/// pool like the forward pass.
pub fn layernorm_backward_input_rows(
    gy: &[f32],
    gamma: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gx: &mut [f32],
    d: usize,
) {
    let rows = inv_std.len();
    debug_assert_eq!(gy.len(), rows * d);
    debug_assert_eq!(gx.len(), rows * d);
    let threads = thread_count(gx.len(), PAR_ELEMWISE_THRESHOLD);
    if threads <= 1 || rows < 2 {
        layernorm_backward_input_panel(gy, gamma, xhat, inv_std, gx, 0, rows, d);
        return;
    }
    let rows_per = rows_per_chunk(rows, threads);
    pool::parallel_chunks_mut(gx, rows_per * d, |ci, gx_panel| {
        let r0 = ci * rows_per;
        let take = gx_panel.len() / d;
        layernorm_backward_input_panel(gy, gamma, xhat, inv_std, gx_panel, r0, take, d);
    });
}

fn layernorm_backward_input_panel(
    gy: &[f32],
    gamma: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gx_panel: &mut [f32],
    r0: usize,
    rows: usize,
    d: usize,
) {
    for ri in 0..rows {
        let r = r0 + ri;
        let o = r * d;
        let mut mean_dxhat = 0.0f32;
        let mut mean_dxhat_xhat = 0.0f32;
        for i in 0..d {
            let dxh = gy[o + i] * gamma[i];
            mean_dxhat += dxh;
            mean_dxhat_xhat += dxh * xhat[o + i];
        }
        mean_dxhat /= d as f32;
        mean_dxhat_xhat /= d as f32;
        for i in 0..d {
            let dxh = gy[o + i] * gamma[i];
            gx_panel[ri * d + i] =
                inv_std[r] * (dxh - mean_dxhat - xhat[o + i] * mean_dxhat_xhat);
        }
    }
}

/// Sum of all elements.
#[inline]
pub fn sum(data: &[f32]) -> f32 {
    data.iter().sum()
}

/// Squared L2 norm.
#[inline]
pub fn sq_norm(data: &[f32]) -> f32 {
    data.iter().map(|v| v * v).sum()
}

/// Per-row squared L2 norms of a row-major (rows×cols) matrix, written
/// into `out` (`rows` long). The distance half of the IVF assignment
/// identity `‖e − c‖² = ‖e‖² − 2·dot(e, c) + ‖c‖²`: with row norms
/// precomputed, nearest-centroid search reduces to a GEMM plus this.
#[inline]
pub fn row_sq_norms(data: &[f32], cols: usize, out: &mut [f32]) {
    debug_assert_eq!(data.len(), out.len() * cols);
    for (o, row) in out.iter_mut().zip(data.chunks_exact(cols)) {
        *o = sq_norm(row);
    }
}

/// Transposes a row-major (rows×cols) matrix into `out` (cols×rows).
pub fn transpose(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    // Simple blocked transpose for cache friendliness.
    const B: usize = 32;
    for i0 in (0..rows).step_by(B) {
        for j0 in (0..cols).step_by(B) {
            let i_end = (i0 + B).min(rows);
            let j_end = (j0 + B).min(cols);
            for i in i0..i_end {
                for j in j0..j_end {
                    out[j * rows + i] = src[i * cols + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 13) as f32 * 0.25 - 1.0).collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_nn_matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_nn_matches_naive_large_parallel() {
        let (m, k, n) = (70, 65, 72); // exceeds PAR threshold
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_nn_accumulates() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0; 4];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &[11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let (m, k, n) = (4, 6, 3);
        let a = seq(m * k);
        let b_t = seq(n * k); // stored as n×k
        // Build row-major B from Bᵀ for the reference.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_nt(&a, &b_t, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_tn_matches_naive() {
        let (m, k, n) = (5, 4, 3);
        let a_t = seq(k * m); // stored as k×m
        let b = seq(k * n);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(&a_t, &b, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_tn_parallel_matches_naive() {
        let (m, k, n) = (80, 70, 66);
        let a_t = seq(k * m);
        let b = seq(k * n);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(&a_t, &b, &mut c, m, k, n);
        assert_close(&c, &naive_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn dot_handles_remainder() {
        let a = seq(11);
        let b = seq(11);
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - expect).abs() < 1e-5);
    }

    #[test]
    fn row_sq_norms_matches_per_row_sq_norm() {
        let data = seq(5 * 7);
        let mut out = vec![0.0f32; 5];
        row_sq_norms(&data, 7, &mut out);
        for (o, row) in out.iter().zip(data.chunks(7)) {
            assert_eq!(*o, sq_norm(row));
        }
    }

    #[test]
    fn pack_select_matches_gather_transpose_pack() {
        // n = 13 exercises the ragged (zero-padded) edge strip.
        let (rows, k, m) = (30usize, 17usize, 3usize);
        let table = seq(rows * k);
        let select: Vec<u32> = (0..13u32).map(|j| (j * 7 + 2) % rows as u32).collect();
        let n = select.len();
        let mut gathered_t = vec![0.0f32; k * n];
        for (j, &r) in select.iter().enumerate() {
            for p in 0..k {
                gathered_t[p * n + j] = table[r as usize * k + p];
            }
        }
        let reference = PackedB::pack(&gathered_t, k, n);
        let fused = PackedB::pack_select(&table, k, &select);
        assert_eq!(fused.k(), k);
        assert_eq!(fused.n(), n);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fused.data), bits(&reference.data));
        // And the GEMMs over both agree bit-for-bit.
        let a = seq(m * k);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_fused = vec![0.0f32; m * n];
        gemm_nn_prepacked(&a, &reference, &mut c_ref, m);
        gemm_nn_prepacked(&a, &fused, &mut c_fused, m);
        assert_eq!(bits(&c_ref), bits(&c_fused));
    }

    #[test]
    fn pack_select_into_stale_buffer_matches_owned() {
        // A stale (garbage-filled) caller buffer must pack bit-identically
        // to the owned path — pad lanes included (n = 13 has a ragged edge).
        let (rows, k) = (30usize, 17usize);
        let table = seq(rows * k);
        let select: Vec<u32> = (0..13u32).map(|j| (j * 7 + 2) % rows as u32).collect();
        let owned = PackedB::pack_select(&table, k, &select);
        let mut buf = vec![f32::NAN; PackedB::packed_len(k, select.len())];
        let view = PackedB::pack_select_into(&table, k, &select, &mut buf);
        assert_eq!((view.k(), view.n()), (k, select.len()));
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&buf), bits(&owned.data));
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut data = seq(12);
        softmax_rows(&mut data, 4);
        for row in data.chunks(4) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_stable_with_large_values() {
        let mut data = vec![1000.0, 1001.0, 1002.0];
        softmax_rows(&mut data, 3);
        assert!(data.iter().all(|v| v.is_finite()));
        assert!((data.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let src = seq(8);
        let mut sm = src.clone();
        softmax_rows(&mut sm, 4);
        let mut lsm = src;
        log_softmax_rows(&mut lsm, 4);
        for (l, s) in lsm.iter().zip(sm.iter()) {
            assert!((l - s.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let src = seq(6 * 9);
        let mut t = vec![0.0; 54];
        let mut back = vec![0.0; 54];
        transpose(&src, &mut t, 6, 9);
        transpose(&t, &mut back, 9, 6);
        assert_close(&src, &back);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_close(&y, &[10.5, 21.0]);
    }
}
