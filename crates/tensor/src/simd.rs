//! Explicit SIMD variants of the packed GEMM inner kernels.
//!
//! The scalar microkernels in [`crate::kernels`] auto-vectorize reasonably
//! well, but the compiler must stay conservative around the `a == 0.0` skip
//! and the accumulator layout. This module provides hand-written
//! `std::arch` AVX2 versions of the two inner loops — the MR×NR register
//! tile of the packed `nn`/`tn` path and the NR-lane strip of the packed
//! `nt` path — selected once at runtime and gated by `MBSSL_SIMD`.
//!
//! # Bit-identity contract
//!
//! The SIMD kernels are **bit-for-bit identical** to the scalar references,
//! not merely close:
//!
//! - every multiply-add is a separate `_mm256_mul_ps` + `_mm256_add_ps`
//!   (never FMA), so each lane performs the same two individually rounded
//!   f32 operations as the scalar `acc += a * b`;
//! - accumulation visits k-steps in the same ascending order, with the
//!   same partial-sum structure (`nt` keeps the four p-mod-4 chains plus
//!   remainder, combined `s0 + s1 + s2 + s3 + rest`);
//! - the `a == 0.0` skip of the tile kernel is applied per (row, p) exactly
//!   where the scalar kernel applies it (skipping a whole vector of
//!   identical lanes is the same as skipping each lane);
//! - NR = 8 makes each accumulator row exactly one `__m256`, so no lane is
//!   split or reassociated.
//!
//! `tests/simd_parity.rs` pins the contract with proptests; the kernels are
//! public so the tests can drive both variants directly regardless of the
//! ambient `MBSSL_SIMD` setting.

use std::sync::OnceLock;

use crate::kernels::{MR, NR};

// The tile kernel's vectorized zero test loads one a-column as a single
// __m128; NR = 8 makes each accumulator row one __m256 (see module docs).
const _: () = assert!(MR == 4, "gemm_tile_avx2 assumes MR == 4");
const _: () = assert!(NR == 8, "the AVX2 kernels assume NR == 8");

/// Whether SIMD dispatch is allowed. Defaults to on; `MBSSL_SIMD=off`
/// (or `0` / `none`) forces the scalar fallbacks. Read once and cached for
/// the process lifetime, mirroring `MBSSL_FUSED` / `MBSSL_ALLOC`.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("MBSSL_SIMD").as_deref(),
            Ok("off") | Ok("0") | Ok("none")
        )
    })
}

/// Whether the CPU supports the AVX2 kernels (independent of the
/// `MBSSL_SIMD` gate). Always `false` off x86-64.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX2 kernels are actually in use: enabled by the env gate
/// *and* supported by the CPU. Cached; dispatch sites branch on this.
pub fn active() -> bool {
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| enabled() && avx2_available())
}

/// One MR×NR register-tile accumulation: `acc[r][..] += apack[p*MR+r] *
/// bpack[p*NR..][..NR]` over `kc` packed steps. `acc` is row-major
/// `MR * NR`; dispatches to AVX2 when [`active`].
#[inline]
pub fn gemm_tile(apack: &[f32], bpack: &[f32], acc: &mut [f32], kc: usize) {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies AVX2 was detected at runtime.
        unsafe { gemm_tile_avx2(apack, bpack, acc, kc) };
        return;
    }
    gemm_tile_scalar(apack, bpack, acc, kc);
}

/// Scalar reference for [`gemm_tile`]: the exact accumulation loop of the
/// packed microkernel's full-tile path.
pub fn gemm_tile_scalar(apack: &[f32], bpack: &[f32], acc: &mut [f32], kc: usize) {
    debug_assert!(acc.len() >= MR * NR);
    for p in 0..kc {
        let b = &bpack[p * NR..][..NR];
        for r in 0..MR {
            let a = apack[p * MR + r];
            if a == 0.0 {
                continue;
            }
            let row = &mut acc[r * NR..][..NR];
            for (acc_v, &b_v) in row.iter_mut().zip(b.iter()) {
                *acc_v += a * b_v;
            }
        }
    }
}

/// AVX2 variant of [`gemm_tile`]. Each accumulator row is one `__m256`;
/// every step is broadcast → mul → add (no FMA) with the scalar kernel's
/// per-(row, p) `a == 0.0` skip, so results are bit-identical to
/// [`gemm_tile_scalar`].
///
/// # Safety
/// The CPU must support AVX2 (check [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_tile_avx2(apack: &[f32], bpack: &[f32], acc: &mut [f32], kc: usize) {
    use std::arch::x86_64::*;
    debug_assert!(acc.len() >= MR * NR);
    let mut rows = [_mm256_setzero_ps(); MR];
    for (r, row) in rows.iter_mut().enumerate() {
        *row = _mm256_loadu_ps(acc.as_ptr().add(r * NR));
    }
    let zero4 = _mm_setzero_ps();
    for p in 0..kc {
        let b = _mm256_loadu_ps(bpack.as_ptr().add(p * NR));
        // One vectorized zero test over the whole a-column (MR = 4 = one
        // __m128) replaces MR scalar compare-and-branch pairs. cmpeq treats
        // -0.0 == 0.0 and NaN != 0.0 exactly like the scalar `a == 0.0`.
        let a4 = _mm_loadu_ps(apack.as_ptr().add(p * MR));
        if _mm_movemask_ps(_mm_cmpeq_ps(a4, zero4)) == 0 {
            for (r, row) in rows.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*apack.get_unchecked(p * MR + r));
                // mul + add, not FMA: each lane rounds twice exactly like
                // the scalar `acc += a * b`.
                *row = _mm256_add_ps(*row, _mm256_mul_ps(a, b));
            }
        } else {
            for (r, row) in rows.iter_mut().enumerate() {
                let a = *apack.get_unchecked(p * MR + r);
                if a == 0.0 {
                    continue;
                }
                *row = _mm256_add_ps(*row, _mm256_mul_ps(_mm256_set1_ps(a), b));
            }
        }
    }
    for (r, row) in rows.iter().enumerate() {
        _mm256_storeu_ps(acc.as_mut_ptr().add(r * NR), *row);
    }
}

/// One packed-`nt` strip: `c_out[jj] += dot(a_row, lane jj of strip)` for
/// `c_out.len() <= NR` lanes, reproducing [`crate::kernels::dot`]'s chain
/// structure per lane. Dispatches to AVX2 when [`active`].
#[inline]
pub fn nt_strip(a_row: &[f32], strip: &[f32], c_out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies AVX2 was detected at runtime.
        unsafe { nt_strip_avx2(a_row, strip, c_out) };
        return;
    }
    nt_strip_scalar(a_row, strip, c_out);
}

/// Scalar reference for [`nt_strip`]: four p-mod-4 partial-sum chains plus
/// a remainder chain, combined `s0 + s1 + s2 + s3 + rest` — exactly the
/// per-lane arithmetic of the naive `dot`.
pub fn nt_strip_scalar(a_row: &[f32], strip: &[f32], c_out: &mut [f32]) {
    let k = a_row.len();
    let chunks = k / 4;
    let mut s = [[0.0f32; NR]; 4];
    let mut rest = [0.0f32; NR];
    for i in 0..chunks {
        let o = i * 4;
        for (ch, s_ch) in s.iter_mut().enumerate() {
            let a_v = a_row[o + ch];
            let b_v = &strip[(o + ch) * NR..][..NR];
            for (acc, &bv) in s_ch.iter_mut().zip(b_v.iter()) {
                *acc += a_v * bv;
            }
        }
    }
    for p in chunks * 4..k {
        let a_v = a_row[p];
        let b_v = &strip[p * NR..][..NR];
        for (acc, &bv) in rest.iter_mut().zip(b_v.iter()) {
            *acc += a_v * bv;
        }
    }
    for (jj, c_v) in c_out.iter_mut().enumerate() {
        *c_v += s[0][jj] + s[1][jj] + s[2][jj] + s[3][jj] + rest[jj];
    }
}

/// AVX2 variant of [`nt_strip`]: the four partial-sum chains and the
/// remainder chain are each one `__m256`, advanced with broadcast → mul →
/// add (no FMA) in the same order as the scalar code, and combined
/// left-to-right (`((s0 + s1) + s2) + s3) + rest`) per lane — bit-identical
/// to [`nt_strip_scalar`].
///
/// # Safety
/// The CPU must support AVX2 (check [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn nt_strip_avx2(a_row: &[f32], strip: &[f32], c_out: &mut [f32]) {
    use std::arch::x86_64::*;
    let k = a_row.len();
    let chunks = k / 4;
    let mut s = [_mm256_setzero_ps(); 4];
    let mut rest = _mm256_setzero_ps();
    for i in 0..chunks {
        let o = i * 4;
        for (ch, s_ch) in s.iter_mut().enumerate() {
            let a_v = _mm256_set1_ps(*a_row.get_unchecked(o + ch));
            let b_v = _mm256_loadu_ps(strip.as_ptr().add((o + ch) * NR));
            *s_ch = _mm256_add_ps(*s_ch, _mm256_mul_ps(a_v, b_v));
        }
    }
    for p in chunks * 4..k {
        let a_v = _mm256_set1_ps(*a_row.get_unchecked(p));
        let b_v = _mm256_loadu_ps(strip.as_ptr().add(p * NR));
        rest = _mm256_add_ps(rest, _mm256_mul_ps(a_v, b_v));
    }
    // ((((s0 + s1) + s2) + s3) + rest), matching the scalar combine order.
    let total = _mm256_add_ps(
        _mm256_add_ps(_mm256_add_ps(_mm256_add_ps(s[0], s[1]), s[2]), s[3]),
        rest,
    );
    let mut lanes = [0.0f32; NR];
    _mm256_storeu_ps(lanes.as_mut_ptr(), total);
    for (jj, c_v) in c_out.iter_mut().enumerate() {
        *c_v += lanes[jj];
    }
}

/// Transposes one NR-column strip of the fused gather-pack
/// (`kernels::PackedB::pack_select`): `dst[p*NR + jj] = rows[jj][p]` for
/// `p < kc`. Pure data movement — no arithmetic — so SIMD and scalar are
/// trivially bit-identical. Dispatches to AVX2 when [`active`].
#[inline]
pub fn pack_strip(rows: &[&[f32]; NR], kc: usize, dst: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies AVX2 was detected at runtime.
        unsafe { pack_strip_avx2(rows, kc, dst) };
        return;
    }
    pack_strip_scalar(rows, kc, dst);
}

/// Scalar reference for [`pack_strip`].
pub fn pack_strip_scalar(rows: &[&[f32]; NR], kc: usize, dst: &mut [f32]) {
    debug_assert!(dst.len() >= kc * NR);
    for (jj, row) in rows.iter().enumerate() {
        for (p, &v) in row[..kc].iter().enumerate() {
            dst[p * NR + jj] = v;
        }
    }
}

/// AVX2 variant of [`pack_strip`]: 8×8 in-register transposes (unpack
/// pairs → shuffle quads → permute 128-bit halves), turning the scalar
/// path's stride-NR scatter stores into contiguous `__m256` stores.
///
/// # Safety
/// The CPU must support AVX2 (check [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn pack_strip_avx2(rows: &[&[f32]; NR], kc: usize, dst: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert!(dst.len() >= kc * NR);
    let blocks = kc / 8;
    for b in 0..blocks {
        let p0 = b * 8;
        let mut r = [_mm256_setzero_ps(); 8];
        for (jj, row) in rows.iter().enumerate() {
            debug_assert!(row.len() >= kc);
            r[jj] = _mm256_loadu_ps(row.as_ptr().add(p0));
        }
        let t0 = _mm256_unpacklo_ps(r[0], r[1]);
        let t1 = _mm256_unpackhi_ps(r[0], r[1]);
        let t2 = _mm256_unpacklo_ps(r[2], r[3]);
        let t3 = _mm256_unpackhi_ps(r[2], r[3]);
        let t4 = _mm256_unpacklo_ps(r[4], r[5]);
        let t5 = _mm256_unpackhi_ps(r[4], r[5]);
        let t6 = _mm256_unpacklo_ps(r[6], r[7]);
        let t7 = _mm256_unpackhi_ps(r[6], r[7]);
        let s0 = _mm256_shuffle_ps(t0, t2, 0x44);
        let s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
        let s2 = _mm256_shuffle_ps(t1, t3, 0x44);
        let s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
        let s4 = _mm256_shuffle_ps(t4, t6, 0x44);
        let s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
        let s6 = _mm256_shuffle_ps(t5, t7, 0x44);
        let s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
        let out = [
            _mm256_permute2f128_ps(s0, s4, 0x20),
            _mm256_permute2f128_ps(s1, s5, 0x20),
            _mm256_permute2f128_ps(s2, s6, 0x20),
            _mm256_permute2f128_ps(s3, s7, 0x20),
            _mm256_permute2f128_ps(s0, s4, 0x31),
            _mm256_permute2f128_ps(s1, s5, 0x31),
            _mm256_permute2f128_ps(s2, s6, 0x31),
            _mm256_permute2f128_ps(s3, s7, 0x31),
        ];
        for (p, v) in out.iter().enumerate() {
            _mm256_storeu_ps(dst.as_mut_ptr().add((p0 + p) * NR), *v);
        }
    }
    for p in blocks * 8..kc {
        for (jj, row) in rows.iter().enumerate() {
            *dst.get_unchecked_mut(p * NR + jj) = *row.get_unchecked(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    #[test]
    fn tile_scalar_matches_avx2_when_available() {
        if !avx2_available() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(7);
        for kc in [0usize, 1, 3, 17, 256] {
            let mut apack = fill(&mut rng, (kc * MR).max(1));
            // Exercise the a == 0.0 skip.
            for v in apack.iter_mut().step_by(5) {
                *v = 0.0;
            }
            let bpack = fill(&mut rng, (kc * NR).max(1));
            let init = fill(&mut rng, MR * NR);
            let mut scalar = init.clone();
            let mut simd = init.clone();
            gemm_tile_scalar(&apack, &bpack, &mut scalar, kc);
            unsafe { gemm_tile_avx2(&apack, &bpack, &mut simd, kc) };
            assert_eq!(scalar, simd, "kc={kc}");
        }
    }

    #[test]
    fn nt_strip_scalar_matches_avx2_when_available() {
        if !avx2_available() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(8);
        for k in [0usize, 1, 4, 5, 31, 64] {
            for nr in 1..=NR {
                let a_row = fill(&mut rng, k);
                let strip = fill(&mut rng, (k * NR).max(1));
                let init = fill(&mut rng, nr);
                let mut scalar = init.clone();
                let mut simd = init.clone();
                nt_strip_scalar(&a_row, &strip, &mut scalar);
                unsafe { nt_strip_avx2(&a_row, &strip, &mut simd) };
                assert_eq!(scalar, simd, "k={k} nr={nr}");
            }
        }
    }

    #[test]
    fn pack_strip_scalar_matches_avx2_when_available() {
        if !avx2_available() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(9);
        // kc = 8/64 hit the pure 8×8 path; 13/29 exercise the remainder.
        for kc in [1usize, 7, 8, 13, 29, 64] {
            let backing: Vec<Vec<f32>> = (0..NR).map(|_| fill(&mut rng, kc)).collect();
            let rows: [&[f32]; NR] = std::array::from_fn(|jj| backing[jj].as_slice());
            let mut scalar = vec![-1.0f32; kc * NR];
            let mut simd = vec![-2.0f32; kc * NR];
            pack_strip_scalar(&rows, kc, &mut scalar);
            unsafe { pack_strip_avx2(&rows, kc, &mut simd) };
            assert_eq!(scalar, simd, "kc={kc}");
        }
    }

    #[test]
    fn env_gate_consistency() {
        // active() can only be true when both the gate and the CPU allow it.
        assert!(!active() || (enabled() && avx2_available()));
    }
}
