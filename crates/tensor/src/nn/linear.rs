//! Dense affine layer.

use rand::Rng;

use crate::init;
use crate::nn::{join_name, Module, ParamMap};
use crate::tensor::Tensor;

/// `y = x · W (+ b)`, applied to the last axis of any-rank input.
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Xavier-initialized linear layer with bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: init::xavier_uniform(in_dim, out_dim, rng).requires_grad(),
            bias: Some(Tensor::zeros([out_dim]).requires_grad()),
            in_dim,
            out_dim,
        }
    }

    /// Without a bias term.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: init::xavier_uniform(in_dim, out_dim, rng).requires_grad(),
            bias: None,
            in_dim,
            out_dim,
        }
    }

    /// `x · W (+ b)` over the last axis of `x`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        debug_assert_eq!(
            *x.dims().last().unwrap(),
            self.in_dim,
            "linear input dim mismatch"
        );
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Direct access to the weight (used by tied-embedding heads).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Direct access to the bias (used by fused epilogues like
    /// [`Tensor::bias_gelu`]).
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }
}

impl Module for Linear {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        map.insert(join_name(prefix, "weight"), self.weight.clone());
        if let Some(b) = &self.bias {
            map.insert(join_name(prefix, "bias"), b.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(4, 3, &mut rng);
        let x = Tensor::ones([2, 5, 4]);
        let y = l.forward(&x);
        assert_eq!(y.dims(), &[2, 5, 3]);
    }

    #[test]
    fn identity_weight_passes_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new_no_bias(2, 2, &mut rng);
        l.weight = Tensor::from_slice(&[1.0, 0.0, 0.0, 1.0], [2, 2]).requires_grad();
        let x = Tensor::from_slice(&[3.0, 4.0], [1, 2]);
        assert_eq!(l.forward(&x).to_vec(), vec![3.0, 4.0]);
    }

    #[test]
    fn bias_added() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        l.weight = Tensor::zeros([2, 2]).requires_grad();
        l.bias = Some(Tensor::from_slice(&[1.0, -1.0], [2]).requires_grad());
        let x = Tensor::ones([3, 2]);
        assert_eq!(l.forward(&x).to_vec(), vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn params_registered() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(4, 3, &mut rng);
        let map = l.param_map("layer");
        assert_eq!(map.len(), 2);
        assert!(map.get("layer.weight").is_some());
        assert!(map.get("layer.bias").is_some());
        assert_eq!(map.numel(), 4 * 3 + 3);
    }

    #[test]
    fn gradients_reach_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones([1, 2]);
        l.forward(&x).sum_all().backward();
        for t in l.param_map("l").tensors() {
            assert!(t.grad().is_some(), "param missing grad");
        }
    }
}
