//! Layer-normalization module wrapping the fused op.

use crate::nn::{join_name, Module, ParamMap};
use crate::tensor::Tensor;

/// LayerNorm over the last axis with learnable affine parameters.
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    /// Fresh LayerNorm over a last axis of width `dim` (`gamma = 1`,
    /// `beta = 0`, `eps = 1e-5`).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::ones([dim]).requires_grad(),
            beta: Tensor::zeros([dim]).requires_grad(),
            eps: 1e-5,
            dim,
        }
    }

    /// Overrides the numerical-stability epsilon.
    pub fn with_eps(mut self, eps: f32) -> Self {
        self.eps = eps;
        self
    }

    /// Normalizes `x` over its last axis and applies the affine transform.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        debug_assert_eq!(*x.dims().last().unwrap(), self.dim, "layernorm dim mismatch");
        x.layer_norm(&self.gamma, &self.beta, self.eps)
    }

    /// Normalized axis width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Fused pre-LN residual sublayer: `layer_norm(a + b)` as a single
    /// autograd node ([`Tensor::residual_layer_norm`]), bit-for-bit equal to
    /// `self.forward(&a.add(b))`.
    pub fn residual_forward(&self, a: &Tensor, b: &Tensor) -> Tensor {
        debug_assert_eq!(*a.dims().last().unwrap(), self.dim, "layernorm dim mismatch");
        a.residual_layer_norm(b, &self.gamma, &self.beta, self.eps)
    }
}

impl Module for LayerNorm {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        map.insert(join_name(prefix, "gamma"), self.gamma.clone());
        map.insert(join_name(prefix, "beta"), self.beta.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [1, 4]);
        let y = ln.forward(&x).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn registers_two_params() {
        let ln = LayerNorm::new(8);
        let map = ln.param_map("ln");
        assert_eq!(map.len(), 2);
        assert_eq!(map.numel(), 16);
    }
}
