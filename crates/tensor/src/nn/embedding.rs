//! Embedding layer with optional padding index.

use rand::Rng;

use crate::init;
use crate::nn::{join_name, Module, ParamMap};
use crate::tensor::Tensor;

/// A `[vocab, dim]` lookup table.
///
/// If `padding_idx` is set, that row is zeroed at construction; its gradient
/// updates are harmless for padded batches because padded positions are
/// masked out of every loss in this workspace, but zeroing keeps the
/// representation clean for inspection.
pub struct Embedding {
    weight: Tensor,
    vocab: usize,
    dim: usize,
    padding_idx: Option<usize>,
}

impl Embedding {
    /// Fresh `[vocab, dim]` table with seeded normal init.
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Embedding {
            weight: init::embedding_table(vocab, dim, rng).requires_grad(),
            vocab,
            dim,
            padding_idx: None,
        }
    }

    /// Zeroes the row at `idx` (conventionally the padding token, id 0).
    pub fn with_padding_idx(self, idx: usize) -> Self {
        assert!(idx < self.vocab, "padding idx out of range");
        {
            let mut data = self.weight.data_mut();
            for v in &mut data[idx * self.dim..(idx + 1) * self.dim] {
                *v = 0.0;
            }
        }
        Embedding {
            padding_idx: Some(idx),
            ..self
        }
    }

    /// Looks up a flat list of ids: `[N] -> [N, D]`.
    pub fn forward(&self, ids: &[usize]) -> Tensor {
        self.weight.embedding(ids)
    }

    /// Looks up a padded batch: `[B*L] -> [B, L, D]`.
    pub fn forward_seq(&self, ids: &[usize], batch: usize, len: usize) -> Tensor {
        self.weight.embedding_seq(ids, batch, len)
    }

    /// Vocabulary size (number of rows).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width (number of columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The zeroed padding row, if one was configured.
    pub fn padding_idx(&self) -> Option<usize> {
        self.padding_idx
    }

    /// The full table, e.g. for scoring all items at once.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Module for Embedding {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        map.insert(join_name(prefix, "weight"), self.weight.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(10, 4, &mut rng);
        assert_eq!(e.forward(&[1, 2, 3]).dims(), &[3, 4]);
        assert_eq!(e.forward_seq(&[1, 2, 3, 4], 2, 2).dims(), &[2, 2, 4]);
    }

    #[test]
    fn padding_row_zeroed() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(10, 4, &mut rng).with_padding_idx(0);
        assert_eq!(e.forward(&[0]).to_vec(), vec![0.0; 4]);
        assert_eq!(e.padding_idx(), Some(0));
        // Other rows untouched.
        assert!(e.forward(&[1]).to_vec().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn params_include_table() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(10, 4, &mut rng);
        let map = e.param_map("emb");
        assert_eq!(map.numel(), 40);
    }

    #[test]
    fn lookups_share_gradients_with_table() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(5, 2, &mut rng);
        e.forward(&[2, 2]).sum_all().backward();
        let g = e.weight().grad().unwrap();
        assert_eq!(&g[4..6], &[2.0, 2.0]); // row 2 hit twice
        assert_eq!(&g[0..2], &[0.0, 0.0]);
    }
}
