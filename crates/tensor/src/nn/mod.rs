//! Neural-network building blocks on top of the tensor ops.
//!
//! Conventions:
//! - every layer owns its parameters as tracked leaf tensors;
//! - `collect_params` registers them (with stable hierarchical names) into a
//!   [`ParamMap`] used by optimizers and serialization;
//! - layers that use dropout take a [`Mode`]: `Mode::Train(rng)` samples
//!   masks, `Mode::Eval` is deterministic.

mod attention;
mod embedding;
mod feedforward;
mod gru;
mod layernorm;
mod linear;
mod transformer;

pub use attention::{causal_mask, key_padding_mask, MultiHeadAttention};
pub use embedding::Embedding;
pub use feedforward::{Activation, FeedForward};
pub use gru::Gru;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use transformer::TransformerBlock;

use rand::rngs::StdRng;

use crate::tensor::Tensor;

/// Forward-pass mode: training (with an RNG for stochastic layers) or
/// deterministic evaluation.
pub enum Mode<'a> {
    /// Training pass: stochastic layers draw from the given RNG.
    Train(&'a mut StdRng),
    /// Evaluation pass: all layers are deterministic.
    Eval,
}

impl Mode<'_> {
    /// Whether this is a training pass.
    pub fn is_train(&self) -> bool {
        matches!(self, Mode::Train(_))
    }

    /// Applies dropout with probability `p` in training mode; identity in
    /// eval mode or when `p == 0`.
    pub fn dropout(&mut self, x: &Tensor, p: f32) -> Tensor {
        match self {
            Mode::Train(rng) if p > 0.0 => x.dropout(p, *rng),
            _ => x.clone(),
        }
    }

    /// Draws the keep/scale mask that [`Mode::dropout`] would use for a
    /// tensor of `n` elements — one RNG draw per element in `Train` mode
    /// when `p > 0`, no draws otherwise — without building a graph node.
    /// Fused call sites use this so the RNG stream stays identical to the
    /// unfused composition.
    pub fn dropout_mask_for(&mut self, n: usize, p: f32) -> Option<Vec<f32>> {
        match self {
            Mode::Train(rng) if p > 0.0 => Some(crate::ops::dropout_mask(n, p, *rng)),
            _ => None,
        }
    }
}

/// Ordered registry of named parameters.
///
/// Names are hierarchical (`encoder.layer0.attn.wq`) and insertion order is
/// stable, so the same architecture always produces the same registry — the
/// contract serialization relies on.
#[derive(Default)]
pub struct ParamMap {
    entries: Vec<(String, Tensor)>,
}

impl ParamMap {
    /// An empty registry.
    pub fn new() -> Self {
        ParamMap::default()
    }

    /// Registers a parameter. Panics on duplicate names — that is always a
    /// wiring bug.
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        let name = name.into();
        assert!(
            !self.entries.iter().any(|(n, _)| n == &name),
            "duplicate parameter name {name}"
        );
        self.entries.push((name, tensor));
    }

    /// All parameter handles, in registration order.
    pub fn tensors(&self) -> Vec<Tensor> {
        self.entries.iter().map(|(_, t)| t.clone()).collect()
    }

    /// Name/handle pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Looks a parameter up by exact name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar parameter count.
    pub fn numel(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.numel()).sum()
    }
}

/// Anything with trainable parameters.
pub trait Module {
    /// Registers this module's parameters under `prefix` into `map`.
    fn collect_params(&self, prefix: &str, map: &mut ParamMap);

    /// Convenience: collect into a fresh map rooted at `prefix`.
    fn param_map(&self, prefix: &str) -> ParamMap {
        let mut map = ParamMap::new();
        self.collect_params(prefix, &mut map);
        map
    }
}

/// Joins a prefix and a leaf name with `.`, tolerating empty prefixes.
pub fn join_name(prefix: &str, leaf: &str) -> String {
    if prefix.is_empty() {
        leaf.to_string()
    } else {
        format!("{prefix}.{leaf}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn param_map_insert_and_get() {
        let mut map = ParamMap::new();
        map.insert("a.w", Tensor::zeros([2, 2]));
        map.insert("a.b", Tensor::zeros([2]));
        assert_eq!(map.len(), 2);
        assert_eq!(map.numel(), 6);
        assert!(map.get("a.w").is_some());
        assert!(map.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut map = ParamMap::new();
        map.insert("w", Tensor::zeros([1]));
        map.insert("w", Tensor::zeros([1]));
    }

    #[test]
    fn join_name_handles_empty_prefix() {
        assert_eq!(join_name("", "w"), "w");
        assert_eq!(join_name("enc", "w"), "enc.w");
    }

    #[test]
    fn mode_eval_dropout_is_identity() {
        let x = Tensor::ones([8]);
        let mut mode = Mode::Eval;
        assert_eq!(mode.dropout(&x, 0.5).to_vec(), x.to_vec());
    }

    #[test]
    fn mode_train_dropout_masks() {
        let x = Tensor::ones([1000]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut mode = Mode::Train(&mut rng);
        let y = mode.dropout(&x, 0.5);
        let zeros = y.to_vec().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 300 && zeros < 700, "zeros {zeros}");
    }
}
