//! Pre-LN transformer encoder block.

use rand::Rng;

use crate::nn::{
    join_name, Activation, FeedForward, LayerNorm, Mode, Module, MultiHeadAttention, ParamMap,
};
use crate::tensor::Tensor;

/// `x + MHA(LN(x))` followed by `x + FFN(LN(x))` (pre-norm, which trains
/// stably without a warmup-critical schedule).
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    dropout: f32,
}

impl TransformerBlock {
    /// Fresh block: `dim`-wide, `heads`-head attention and a
    /// `dim -> ffn_hidden -> dim` GELU feed-forward, with `dropout` applied
    /// to attention probabilities, residual branches, and the FFN hidden
    /// layer.
    pub fn new(dim: usize, heads: usize, ffn_hidden: usize, dropout: f32, rng: &mut impl Rng) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(dim, heads, dropout, rng),
            ffn: FeedForward::new(dim, ffn_hidden, Activation::Gelu, dropout, rng),
            ln1: LayerNorm::new(dim),
            ln2: LayerNorm::new(dim),
            dropout,
        }
    }

    /// `x: [B, L, D]`, optional attention mask (see
    /// [`crate::nn::MultiHeadAttention`]).
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>, mode: &mut Mode) -> Tensor {
        let attn_out = self
            .attn
            .forward_self(&self.ln1.forward(x), mask, mode);
        if crate::fused::enabled() {
            // Same dataflow, fewer nodes: `ln2(x + da)` is one fused node and
            // the final `x + da + df` is a single three-way sum. Both sums
            // keep the unfused left-to-right element order.
            let da = mode.dropout(&attn_out, self.dropout);
            let h2 = self.ln2.residual_forward(x, &da);
            let ffn_out = self.ffn.forward(&h2, mode);
            let df = mode.dropout(&ffn_out, self.dropout);
            x.add3(&da, &df)
        } else {
            let x = x.add(&mode.dropout(&attn_out, self.dropout));
            let ffn_out = self.ffn.forward(&self.ln2.forward(&x), mode);
            x.add(&mode.dropout(&ffn_out, self.dropout))
        }
    }

    /// The block's attention sublayer.
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }
}

impl Module for TransformerBlock {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        self.attn.collect_params(&join_name(prefix, "attn"), map);
        self.ffn.collect_params(&join_name(prefix, "ffn"), map);
        self.ln1.collect_params(&join_name(prefix, "ln1"), map);
        self.ln2.collect_params(&join_name(prefix, "ln2"), map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = TransformerBlock::new(8, 2, 16, 0.0, &mut rng);
        let x = Tensor::ones([2, 5, 8]);
        assert_eq!(block.forward(&x, None, &mut Mode::Eval).dims(), &[2, 5, 8]);
    }

    #[test]
    fn residual_keeps_input_information() {
        // With zeroed attention/ffn output weights the block is identity.
        let mut rng = StdRng::seed_from_u64(0);
        let block = TransformerBlock::new(4, 1, 8, 0.0, &mut rng);
        let x = Tensor::from_vec((0..8).map(|v| v as f32 * 0.1).collect(), [1, 2, 4]);
        let y = block.forward(&x, None, &mut Mode::Eval);
        // Not identity in general, but the residual guarantees the output
        // is x plus something — check the correlation is strong.
        let xv = x.to_vec();
        let yv = y.to_vec();
        let diff_norm: f32 = xv.iter().zip(&yv).map(|(a, b)| (a - b).powi(2)).sum();
        let x_norm: f32 = xv.iter().map(|a| a * a).sum();
        assert!(diff_norm < 50.0 * x_norm.max(1.0));
    }

    #[test]
    fn param_count_is_stable() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = TransformerBlock::new(8, 2, 16, 0.1, &mut rng);
        // attn 8 + ffn 4 + 2×ln 2 = 16 tensors
        assert_eq!(block.param_map("blk").len(), 16);
    }

    #[test]
    fn all_params_receive_grad() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = TransformerBlock::new(4, 2, 8, 0.0, &mut rng);
        let x = Tensor::ones([1, 3, 4]);
        block
            .forward(&x, None, &mut Mode::Eval)
            .sum_all()
            .backward();
        for (name, t) in block.param_map("blk").iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }
}
