//! Multi-head (self- or cross-) attention with masking.

use rand::Rng;

use crate::nn::{join_name, Linear, Mode, Module, ParamMap};
use crate::tensor::Tensor;

/// Standard scaled dot-product multi-head attention.
///
/// Masks are `0/1` tensors where **1 means "blocked"**, broadcastable to the
/// per-head score shape `[B*H, Lq, Lk]`. Use [`causal_mask`] (shape
/// `[Lq, Lk]`) and [`key_padding_mask`] (shape `[B*H, 1, Lk]`) to build
/// them; combine by `maximum`.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
    head_dim: usize,
    dropout: f32,
}

impl MultiHeadAttention {
    /// Fresh attention block with `dim`-wide Q/K/V/O projections split over
    /// `heads` heads and attention-probability dropout rate `dropout`.
    pub fn new(dim: usize, heads: usize, dropout: f32, rng: &mut impl Rng) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        MultiHeadAttention {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            wo: Linear::new(dim, dim, rng),
            heads,
            dim,
            head_dim: dim / heads,
            dropout,
        }
    }

    /// `[B, L, D] -> [B*H, L, Dh]`.
    fn split_heads(&self, x: &Tensor) -> Tensor {
        let (b, l) = (x.dims()[0], x.dims()[1]);
        x.reshape([b, l, self.heads, self.head_dim])
            .permute(&[0, 2, 1, 3])
            .reshape([b * self.heads, l, self.head_dim])
    }

    /// `[B*H, L, Dh] -> [B, L, D]`.
    fn merge_heads(&self, x: &Tensor, b: usize) -> Tensor {
        let l = x.dims()[1];
        x.reshape([b, self.heads, l, self.head_dim])
            .permute(&[0, 2, 1, 3])
            .reshape([b, l, self.dim])
    }

    /// Attention over `query [B, Lq, D]`, `key/value [B, Lk, D]`.
    pub fn forward(
        &self,
        query: &Tensor,
        key: &Tensor,
        value: &Tensor,
        mask: Option<&Tensor>,
        mode: &mut Mode,
    ) -> Tensor {
        let b = query.dims()[0];
        debug_assert_eq!(key.dims()[0], b);
        debug_assert_eq!(value.dims()[0], b);
        let q = self.split_heads(&self.wq.forward(query));
        let k = self.split_heads(&self.wk.forward(key));
        let v = self.split_heads(&self.wv.forward(value));

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let ctx = if crate::fused::enabled() {
            // One-node SDPA: same math, same RNG draw order (the mask is
            // drawn up front exactly where the unfused dropout would draw
            // it), bit-for-bit equal to the composition below.
            let (bh, lq, lk) = (q.dims()[0], q.dims()[1], k.dims()[1]);
            let dmask = mode.dropout_mask_for(bh * lq * lk, self.dropout);
            q.sdpa(&k, &v, mask, scale, dmask)
        } else {
            let _sp = mbssl_telemetry::span("kernel.attn_unfused");
            let mut scores = q.bmm(&k.transpose_last()).into_mul_scalar(scale);
            if let Some(m) = mask {
                scores = scores.masked_fill(m, -1e9);
            }
            let attn = scores.softmax_lastdim();
            let attn = mode.dropout(&attn, self.dropout);
            attn.bmm(&v)
        };
        self.wo.forward(&self.merge_heads(&ctx, b))
    }

    /// Self-attention convenience.
    pub fn forward_self(&self, x: &Tensor, mask: Option<&Tensor>, mode: &mut Mode) -> Tensor {
        self.forward(x, x, x, mask, mode)
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model dimension (input and output width).
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Module for MultiHeadAttention {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        self.wq.collect_params(&join_name(prefix, "wq"), map);
        self.wk.collect_params(&join_name(prefix, "wk"), map);
        self.wv.collect_params(&join_name(prefix, "wv"), map);
        self.wo.collect_params(&join_name(prefix, "wo"), map);
    }
}

/// Causal (autoregressive) mask of shape `[L, L]`: 1 above the diagonal.
pub fn causal_mask(len: usize) -> Tensor {
    let mut data = vec![0.0f32; len * len];
    for i in 0..len {
        for j in (i + 1)..len {
            data[i * len + j] = 1.0;
        }
    }
    Tensor::from_vec(data, [len, len])
}

/// Key-padding mask of shape `[B*H, 1, Lk]` from per-position validity
/// (`valid[b*lk + j] != 0` means position j of batch b is real).
pub fn key_padding_mask(valid: &[f32], batch: usize, heads: usize, lk: usize) -> Tensor {
    assert_eq!(valid.len(), batch * lk, "validity length mismatch");
    let mut data = vec![0.0f32; batch * heads * lk];
    for b in 0..batch {
        for h in 0..heads {
            for j in 0..lk {
                data[(b * heads + h) * lk + j] = if valid[b * lk + j] != 0.0 { 0.0 } else { 1.0 };
            }
        }
    }
    Tensor::from_vec(data, [batch * heads, 1, lk])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_query() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new(8, 2, 0.0, &mut rng);
        let q = Tensor::ones([2, 3, 8]);
        let kv = Tensor::ones([2, 5, 8]);
        let y = attn.forward(&q, &kv, &kv, None, &mut Mode::Eval);
        assert_eq!(y.dims(), &[2, 3, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(
            m.to_vec(),
            vec![0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn causal_attention_ignores_future_tokens() {
        let mut rng = StdRng::seed_from_u64(3);
        let attn = MultiHeadAttention::new(4, 1, 0.0, &mut rng);
        // Two inputs identical in the first 2 positions, different at pos 3.
        let mut a = vec![0.1f32; 3 * 4];
        let mut b = vec![0.1f32; 3 * 4];
        for i in 0..4 {
            a[2 * 4 + i] = 1.0;
            b[2 * 4 + i] = -1.0;
        }
        let xa = Tensor::from_vec(a, [1, 3, 4]);
        let xb = Tensor::from_vec(b, [1, 3, 4]);
        let mask = causal_mask(3);
        let ya = attn.forward_self(&xa, Some(&mask), &mut Mode::Eval).to_vec();
        let yb = attn.forward_self(&xb, Some(&mask), &mut Mode::Eval).to_vec();
        // Outputs at positions 0 and 1 must be identical.
        for i in 0..8 {
            assert!((ya[i] - yb[i]).abs() < 1e-5, "position leaked future info");
        }
        // Position 2 must differ.
        assert!((8..12).any(|i| (ya[i] - yb[i]).abs() > 1e-3));
    }

    #[test]
    fn key_padding_mask_blocks_padded_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let attn = MultiHeadAttention::new(4, 2, 0.0, &mut rng);
        // Batch of 1, 3 positions, last one padded.
        let valid = vec![1.0, 1.0, 0.0];
        let mask = key_padding_mask(&valid, 1, 2, 3);
        assert_eq!(mask.dims(), &[2, 1, 3]);
        // Changing the padded key must not change the output.
        let mut base = vec![0.3f32; 3 * 4];
        let mut alt = base.clone();
        for i in 0..4 {
            alt[2 * 4 + i] = 9.0;
        }
        base[2 * 4] += 0.0;
        let xa = Tensor::from_vec(base, [1, 3, 4]);
        let xb = Tensor::from_vec(alt, [1, 3, 4]);
        // Use xa's first two positions as queries against both key sets.
        let q = xa.narrow(1, 0, 2);
        let ya = attn.forward(&q, &xa, &xa, Some(&mask), &mut Mode::Eval).to_vec();
        let yb = attn.forward(&q, &xb, &xb, Some(&mask), &mut Mode::Eval).to_vec();
        for (u, v) in ya.iter().zip(yb.iter()) {
            assert!((u - v).abs() < 1e-5, "padded key leaked");
        }
    }

    #[test]
    fn params_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new(8, 2, 0.0, &mut rng);
        // 4 linears × (weight + bias)
        assert_eq!(attn.param_map("a").len(), 8);
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new(4, 2, 0.0, &mut rng);
        let x = Tensor::ones([1, 3, 4]);
        attn.forward_self(&x, None, &mut Mode::Eval).sum_all().backward();
        for t in attn.param_map("a").tensors() {
            assert!(t.grad().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn dim_head_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        MultiHeadAttention::new(6, 4, 0.0, &mut rng);
    }
}
