//! Gated recurrent unit over padded batches.

use rand::Rng;

use crate::init;
use crate::nn::{join_name, Module, ParamMap};
use crate::tensor::Tensor;

/// A single-layer GRU.
///
/// Update gate `z`, reset gate `r`, candidate `h~`:
/// ```text
/// z = σ(x·Wz + h·Uz + bz)
/// r = σ(x·Wr + h·Ur + br)
/// h~ = tanh(x·Wh + (r ⊙ h)·Uh + bh)
/// h' = (1 − z) ⊙ h + z ⊙ h~
/// ```
/// Padded steps (validity 0) carry the previous hidden state through
/// unchanged, so right-padded and left-padded batches both work.
pub struct Gru {
    wz: Tensor,
    uz: Tensor,
    bz: Tensor,
    wr: Tensor,
    ur: Tensor,
    br: Tensor,
    wh: Tensor,
    uh: Tensor,
    bh: Tensor,
    input_dim: usize,
    hidden_dim: usize,
}

impl Gru {
    /// Fresh GRU cell with Xavier-initialized gate matrices and zero biases.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        Gru {
            wz: init::xavier_uniform(input_dim, hidden_dim, rng).requires_grad(),
            uz: init::xavier_uniform(hidden_dim, hidden_dim, rng).requires_grad(),
            bz: Tensor::zeros([hidden_dim]).requires_grad(),
            wr: init::xavier_uniform(input_dim, hidden_dim, rng).requires_grad(),
            ur: init::xavier_uniform(hidden_dim, hidden_dim, rng).requires_grad(),
            br: Tensor::zeros([hidden_dim]).requires_grad(),
            wh: init::xavier_uniform(input_dim, hidden_dim, rng).requires_grad(),
            uh: init::xavier_uniform(hidden_dim, hidden_dim, rng).requires_grad(),
            bh: Tensor::zeros([hidden_dim]).requires_grad(),
            input_dim,
            hidden_dim,
        }
    }

    /// One step: `x [B, D]`, `h [B, H]` → new `h [B, H]`.
    pub fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let z = x
            .matmul(&self.wz)
            .add(&h.matmul(&self.uz))
            .add(&self.bz)
            .into_sigmoid();
        let r = x
            .matmul(&self.wr)
            .add(&h.matmul(&self.ur))
            .add(&self.br)
            .into_sigmoid();
        let h_cand = x
            .matmul(&self.wh)
            .add(&r.mul(h).matmul(&self.uh))
            .add(&self.bh)
            .into_tanh();
        let one_minus_z = z.neg().into_add_scalar(1.0);
        one_minus_z.mul(h).add(&z.mul(&h_cand))
    }

    /// Runs the GRU over `x [B, L, D]` with per-position validity
    /// `valid [B, L]` (1 = real token). Returns `(all_states [B, L, H],
    /// final_state [B, H])`, where the final state is the hidden state
    /// after the last valid position of each sequence.
    pub fn forward(&self, x: &Tensor, valid: &Tensor) -> (Tensor, Tensor) {
        let (b, l, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        debug_assert_eq!(d, self.input_dim);
        debug_assert_eq!(valid.dims(), &[b, l]);
        let mut h = Tensor::zeros([b, self.hidden_dim]);
        let mut states: Vec<Tensor> = Vec::with_capacity(l);
        for t in 0..l {
            let x_t = x.narrow(1, t, 1).reshape([b, d]);
            let m_t = valid.narrow(1, t, 1); // [B, 1]
            let h_new = self.step(&x_t, &h);
            // Masked update: padded steps keep the previous state.
            let keep = m_t.neg().into_add_scalar(1.0);
            h = m_t.mul(&h_new).add(&keep.mul(&h));
            states.push(h.clone());
        }
        let refs: Vec<&Tensor> = states.iter().collect();
        let stacked = Tensor::stack(&refs) // [L, B, H]
            .permute(&[1, 0, 2]); // [B, L, H]
        (stacked, h)
    }

    /// Hidden state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }
}

impl Module for Gru {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        for (leaf, t) in [
            ("wz", &self.wz),
            ("uz", &self.uz),
            ("bz", &self.bz),
            ("wr", &self.wr),
            ("ur", &self.ur),
            ("br", &self.br),
            ("wh", &self.wh),
            ("uh", &self.uh),
            ("bh", &self.bh),
        ] {
            map.insert(join_name(prefix, leaf), t.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(4, 6, &mut rng);
        let x = Tensor::ones([2, 3, 4]);
        let valid = Tensor::ones([2, 3]);
        let (all, last) = gru.forward(&x, &valid);
        assert_eq!(all.dims(), &[2, 3, 6]);
        assert_eq!(last.dims(), &[2, 6]);
    }

    #[test]
    fn padded_steps_keep_state() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(2, 3, &mut rng);
        // Sequence of length 3 with only the first step valid.
        let x = Tensor::from_vec(vec![1.0; 6], [1, 3, 2]);
        let valid = Tensor::from_slice(&[1.0, 0.0, 0.0], [1, 3]);
        let (all, last) = gru.forward(&x, &valid);
        let a = all.to_vec();
        // States at t=1 and t=2 equal the state at t=0.
        assert_eq!(&a[0..3], &a[3..6]);
        assert_eq!(&a[0..3], &a[6..9]);
        assert_eq!(&a[0..3], last.to_vec().as_slice());
    }

    #[test]
    fn final_state_depends_on_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(2, 3, &mut rng);
        let valid = Tensor::ones([1, 2]);
        let x1 = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], [1, 2, 2]);
        let x2 = Tensor::from_vec(vec![1.0, 1.0, -1.0, -1.0], [1, 2, 2]);
        let (_, h1) = gru.forward(&x1, &valid);
        let (_, h2) = gru.forward(&x2, &valid);
        let d: f32 = h1
            .to_vec()
            .iter()
            .zip(h2.to_vec().iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-4);
    }

    #[test]
    fn nine_parameter_tensors() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(2, 3, &mut rng);
        assert_eq!(gru.param_map("gru").len(), 9);
    }

    #[test]
    fn backward_reaches_all_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(2, 3, &mut rng);
        let x = Tensor::ones([1, 4, 2]);
        let valid = Tensor::ones([1, 4]);
        let (_, h) = gru.forward(&x, &valid);
        h.sum_all().backward();
        for (name, t) in gru.param_map("gru").iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }
}
