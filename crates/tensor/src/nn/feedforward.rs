//! Position-wise feed-forward network (the transformer MLP block).

use rand::Rng;

use crate::nn::{join_name, Linear, Mode, Module, ParamMap};
use crate::tensor::Tensor;

/// Inner activation of the FFN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a borrowed tensor.
    pub fn apply(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => x.relu(),
            Activation::Gelu => x.gelu(),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Consuming form for owned intermediates: reuses `x`'s buffer in place
    /// when it is untracked and uniquely owned (inference), identical math
    /// otherwise.
    fn apply_owned(self, x: Tensor) -> Tensor {
        match self {
            Activation::Relu => x.into_relu(),
            Activation::Gelu => x.into_gelu(),
            Activation::Tanh => x.into_tanh(),
        }
    }
}

/// `Linear -> activation -> dropout -> Linear`.
pub struct FeedForward {
    lin1: Linear,
    lin2: Linear,
    activation: Activation,
    dropout: f32,
}

impl FeedForward {
    /// Fresh FFN: `dim -> hidden -> dim` with the given inner activation and
    /// dropout rate on the hidden layer.
    pub fn new(dim: usize, hidden: usize, activation: Activation, dropout: f32, rng: &mut impl Rng) -> Self {
        FeedForward {
            lin1: Linear::new(dim, hidden, rng),
            lin2: Linear::new(hidden, dim, rng),
            activation,
            dropout,
        }
    }

    /// Applies the block to `x` (last dim must equal `dim`).
    pub fn forward(&self, x: &Tensor, mode: &mut Mode) -> Tensor {
        let h = match self.lin1.bias() {
            // Fused epilogue: matmul -> bias_gelu as one node instead of
            // matmul -> add -> gelu as three. Same values, same gradients.
            Some(b) if crate::fused::enabled() && self.activation == Activation::Gelu => {
                x.matmul(self.lin1.weight()).bias_gelu(b)
            }
            _ => {
                let _sp = mbssl_telemetry::span("kernel.ffn_unfused");
                self.activation.apply_owned(self.lin1.forward(x))
            }
        };
        let h = mode.dropout(&h, self.dropout);
        self.lin2.forward(&h)
    }
}

impl Module for FeedForward {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        self.lin1.collect_params(&join_name(prefix, "lin1"), map);
        self.lin2.collect_params(&join_name(prefix, "lin2"), map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let ffn = FeedForward::new(8, 32, Activation::Gelu, 0.0, &mut rng);
        let x = Tensor::ones([2, 5, 8]);
        assert_eq!(ffn.forward(&x, &mut Mode::Eval).dims(), &[2, 5, 8]);
    }

    #[test]
    fn four_params_registered() {
        let mut rng = StdRng::seed_from_u64(0);
        let ffn = FeedForward::new(4, 8, Activation::Relu, 0.1, &mut rng);
        assert_eq!(ffn.param_map("ffn").len(), 4);
    }

    #[test]
    fn eval_mode_deterministic() {
        let mut rng = StdRng::seed_from_u64(0);
        let ffn = FeedForward::new(4, 8, Activation::Relu, 0.5, &mut rng);
        let x = Tensor::ones([1, 4]);
        let a = ffn.forward(&x, &mut Mode::Eval).to_vec();
        let b = ffn.forward(&x, &mut Mode::Eval).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn activations_differ() {
        let x = Tensor::from_slice(&[-1.0, 1.0], [2]);
        assert_eq!(Activation::Relu.apply(&x).to_vec(), vec![0.0, 1.0]);
        assert!(Activation::Gelu.apply(&x).to_vec()[0] < 0.0);
        assert!((Activation::Tanh.apply(&x).to_vec()[1] - 1.0f32.tanh()).abs() < 1e-6);
    }
}
