//! First-order optimizers over leaf parameter tensors.
//!
//! Optimizers hold clones of the parameter handles (cheap `Rc`s) plus
//! per-parameter state keyed by position. The training loop is the usual
//! `zero_grad → forward → backward → clip → step`.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Common optimizer interface.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated on the
    /// parameters. Parameters with no gradient are skipped.
    fn step(&mut self);

    /// Clears all parameter gradients.
    fn zero_grad(&mut self);

    /// The parameters being optimized.
    fn params(&self) -> &[Tensor];

    /// Overrides the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Clips the global L2 norm of all gradients to `max_norm`; returns the
/// pre-clip norm. Call between `backward` and `step`.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut total_sq = 0.0f32;
    for p in params {
        if let Some(g) = p.grad_ref().as_ref() {
            total_sq += crate::kernels::sq_norm(g);
        }
    }
    let norm = total_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            p.scale_grad(scale);
        }
    }
    norm
}

/// Plain SGD with optional momentum and L2 weight decay.
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Vec<f32>>,
}

impl Sgd {
    /// Plain SGD (no momentum, no weight decay).
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Sgd {
            params,
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Enables classical (heavy-ball) momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables L2 weight decay (added to the gradient).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for p in &self.params {
            let g_ref = p.grad_ref();
            let Some(g) = g_ref.as_ref() else { continue };
            let mut data = p.data_mut();
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| vec![0.0; data.len()]);
                for i in 0..data.len() {
                    let grad = g[i] + self.weight_decay * data[i];
                    v[i] = self.momentum * v[i] + grad;
                    data[i] -= self.lr * v[i];
                }
            } else {
                for i in 0..data.len() {
                    let grad = g[i] + self.weight_decay * data[i];
                    data[i] -= self.lr * grad;
                }
            }
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam / AdamW (decoupled weight decay when `decoupled == true`).
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    decoupled: bool,
    t: u64,
    m: HashMap<u64, Vec<f32>>,
    v: HashMap<u64, Vec<f32>>,
}

impl Adam {
    /// Standard Adam with default betas (0.9, 0.999).
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            decoupled: false,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// AdamW: decoupled weight decay.
    pub fn adamw(params: Vec<Tensor>, lr: f32, weight_decay: f32) -> Self {
        let mut a = Adam::new(params, lr);
        a.weight_decay = weight_decay;
        a.decoupled = true;
        a
    }

    /// Overrides the moment-decay coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Enables weight decay (coupled unless built via [`Adam::adamw`]).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            let g_ref = p.grad_ref();
            let Some(g) = g_ref.as_ref() else { continue };
            let mut data = p.data_mut();
            let m = self
                .m
                .entry(p.id())
                .or_insert_with(|| vec![0.0; data.len()]);
            let v = self
                .v
                .entry(p.id())
                .or_insert_with(|| vec![0.0; data.len()]);
            for i in 0..data.len() {
                let mut grad = g[i];
                if !self.decoupled && self.weight_decay > 0.0 {
                    grad += self.weight_decay * data[i];
                }
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad * grad;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                let mut update = self.lr * m_hat / (v_hat.sqrt() + self.eps);
                if self.decoupled && self.weight_decay > 0.0 {
                    update += self.lr * self.weight_decay * data[i];
                }
                data[i] -= update;
            }
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Linear warmup followed by inverse-sqrt decay, the standard transformer
/// schedule. Stateless: compute the LR for a step and apply with `set_lr`.
#[derive(Clone, Copy, Debug)]
pub struct WarmupSchedule {
    /// Peak learning rate, reached at the end of warmup.
    pub base_lr: f32,
    /// Number of linear-warmup steps before decay starts.
    pub warmup_steps: u64,
}

impl WarmupSchedule {
    /// Learning rate for (zero-based) optimization step `step`.
    pub fn lr_at(&self, step: u64) -> f32 {
        if self.warmup_steps == 0 {
            return self.base_lr;
        }
        if step < self.warmup_steps {
            self.base_lr * (step + 1) as f32 / self.warmup_steps as f32
        } else {
            self.base_lr * ((self.warmup_steps as f32) / (step + 1) as f32).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes `(x - 3)^2` and checks convergence.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let x = opt.params()[0].clone();
        for _ in 0..steps {
            opt.zero_grad();
            let loss = x.add_scalar(-3.0).square().sum_all();
            loss.backward();
            opt.step();
        }
        x.to_vec()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = Tensor::from_slice(&[0.0], [1]).requires_grad();
        let mut opt = Sgd::new(vec![x], 0.1);
        let final_x = quadratic_descent(&mut opt, 100);
        assert!((final_x - 3.0).abs() < 1e-3, "x = {final_x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = Tensor::from_slice(&[0.0], [1]).requires_grad();
        let mut opt = Sgd::new(vec![x], 0.05).with_momentum(0.9);
        let final_x = quadratic_descent(&mut opt, 200);
        assert!((final_x - 3.0).abs() < 1e-2, "x = {final_x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = Tensor::from_slice(&[0.0], [1]).requires_grad();
        let mut opt = Adam::new(vec![x], 0.2);
        let final_x = quadratic_descent(&mut opt, 200);
        assert!((final_x - 3.0).abs() < 1e-2, "x = {final_x}");
    }

    #[test]
    fn adamw_decay_shrinks_weights() {
        let x = Tensor::from_slice(&[5.0], [1]).requires_grad();
        let mut opt = Adam::adamw(vec![x.clone()], 0.01, 0.5);
        for _ in 0..50 {
            opt.zero_grad();
            // Zero-gradient loss: only decay acts.
            x.accumulate_grad(&[0.0]);
            opt.step();
        }
        assert!(x.to_vec()[0] < 5.0);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let p = Tensor::zeros([2]).requires_grad();
        p.accumulate_grad(&[3.0, 4.0]); // norm 5
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = p.grad().unwrap();
        let post = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_below_threshold() {
        let p = Tensor::zeros([2]).requires_grad();
        p.accumulate_grad(&[0.3, 0.4]);
        clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert_eq!(p.grad().unwrap(), vec![0.3, 0.4]);
    }

    #[test]
    fn warmup_schedule_shape() {
        let s = WarmupSchedule {
            base_lr: 1.0,
            warmup_steps: 10,
        };
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(40) < 1.0);
        assert!(s.lr_at(100) < s.lr_at(40));
    }

    #[test]
    fn params_without_grad_are_skipped() {
        let x = Tensor::from_slice(&[1.0], [1]).requires_grad();
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        opt.step(); // no grad accumulated: unchanged
        assert_eq!(x.to_vec(), vec![1.0]);
    }
}
