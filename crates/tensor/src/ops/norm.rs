//! Fused layer normalization over the last axis.

#![allow(clippy::needless_range_loop)] // multi-array index loops are clearer here

use crate::alloc;
use crate::kernels;
use crate::tensor::Tensor;

impl Tensor {
    /// Layer normalization over the last axis with learnable `gamma`/`beta`
    /// of shape `[D]`.
    ///
    /// `y = gamma * (x - mean) / sqrt(var + eps) + beta`, with mean/var
    /// computed per row. Fused into one op for numerical stability and a
    /// cheap backward.
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let d = *self
            .shape()
            .dims()
            .last()
            .expect("layer_norm requires rank >= 1");
        assert_eq!(gamma.dims(), &[d], "gamma must be [D]");
        assert_eq!(beta.dims(), &[d], "beta must be [D]");
        let rows = self.numel() / d.max(1);
        let mut out = alloc::zeroed(self.numel());
        // Saved for backward: normalized activations and inverse std.
        let mut xhat = alloc::zeroed(self.numel());
        let mut inv_std = alloc::zeroed(rows);
        {
            let x = self.data();
            let g = gamma.data();
            let b = beta.data();
            kernels::layernorm_forward_rows(&x, &g, &b, &mut out, &mut xhat, &mut inv_std, d, eps);
        }
        let x_c = self.clone();
        let gamma_c = gamma.clone();
        let beta_c = beta.clone();
        Tensor::make_op(
            self.shape().clone(),
            out,
            vec![self.clone(), gamma.clone(), beta.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let gy = g_ref.as_ref().unwrap();
                let gamma_data = gamma_c.data();
                if x_c.is_tracked() {
                    let mut gx = alloc::zeroed(x_c.numel());
                    kernels::layernorm_backward_input_rows(
                        gy,
                        &gamma_data,
                        &xhat,
                        &inv_std,
                        &mut gx,
                        d,
                    );
                    gx.iter().for_each(|v| debug_assert!(v.is_finite()));
                    x_c.accumulate_grad_owned(gx);
                }
                if gamma_c.is_tracked() {
                    let mut gg = alloc::zeroed(d);
                    for r in 0..rows {
                        let o = r * d;
                        for i in 0..d {
                            gg[i] += gy[o + i] * xhat[o + i];
                        }
                    }
                    gamma_c.accumulate_grad_owned(gg);
                }
                if beta_c.is_tracked() {
                    let mut gb = alloc::zeroed(d);
                    for r in 0..rows {
                        let o = r * d;
                        for i in 0..d {
                            gb[i] += gy[o + i];
                        }
                    }
                    beta_c.accumulate_grad_owned(gb);
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], [2, 4]);
        let gamma = Tensor::ones([4]);
        let beta = Tensor::zeros([4]);
        let y = x.layer_norm(&gamma, &beta, 1e-5);
        for row in y.to_vec().chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn layer_norm_applies_affine() {
        let x = Tensor::from_slice(&[1.0, -1.0], [1, 2]);
        let gamma = Tensor::from_slice(&[2.0, 2.0], [2]);
        let beta = Tensor::from_slice(&[1.0, 1.0], [2]);
        let y = x.layer_norm(&gamma, &beta, 1e-9).to_vec();
        assert!((y[0] - 3.0).abs() < 1e-3);
        assert!((y[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_input_grad_sums_to_zero() {
        // The Jacobian of layernorm annihilates constant shifts, so the
        // per-row input gradient must sum to ~0 for any upstream gradient.
        let x = Tensor::from_slice(&[0.3, -1.0, 2.0, 0.7], [1, 4]).requires_grad();
        let gamma = Tensor::ones([4]);
        let beta = Tensor::zeros([4]);
        let w = Tensor::from_slice(&[1.0, -0.5, 2.0, 0.0], [1, 4]);
        x.layer_norm(&gamma, &beta, 1e-5).mul(&w).sum_all().backward();
        let g = x.grad().unwrap();
        let s: f32 = g.iter().sum();
        assert!(s.abs() < 1e-4, "row grad sum {s}");
    }

    #[test]
    fn layer_norm_param_grads() {
        let x = Tensor::from_slice(&[1.0, 3.0], [1, 2]);
        let gamma = Tensor::ones([2]).requires_grad();
        let beta = Tensor::zeros([2]).requires_grad();
        x.layer_norm(&gamma, &beta, 1e-9).sum_all().backward();
        // dbeta = sum of output grads = 1 per column.
        assert_eq!(beta.grad().unwrap(), vec![1.0, 1.0]);
        // dgamma = sum gy * xhat; xhat = [-1, 1].
        let gg = gamma.grad().unwrap();
        assert!((gg[0] + 1.0).abs() < 1e-3);
        assert!((gg[1] - 1.0).abs() < 1e-3);
    }
}
