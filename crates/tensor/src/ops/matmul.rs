//! Matrix products, batched matrix products, transposition, and permutation.

use crate::alloc;
use crate::kernels;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product `self · rhs`.
    ///
    /// `self` has shape `[.., M, K]` (leading dims flattened into rows) and
    /// `rhs` must be a 2-D `[K, N]` matrix. The output restores `self`'s
    /// leading dims with the last one replaced by `N` — this is the "apply a
    /// linear map to every row" primitive used by dense layers.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(rhs.shape().rank(), 2, "matmul rhs must be 2-D");
        let (m, k) = self.shape().as_matrix();
        let (rk, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        assert_eq!(
            k, rk,
            "matmul inner dims mismatch: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        let mut out = alloc::zeroed(m * n);
        kernels::gemm_nn(&self.data(), &rhs.data(), &mut out, m, k, n);

        let mut out_dims: Vec<usize> = self.shape().dims().to_vec();
        if out_dims.is_empty() {
            out_dims.push(1);
        }
        *out_dims.last_mut().unwrap() = n;
        let lhs_c = self.clone();
        let rhs_c = rhs.clone();
        Tensor::make_op(
            Shape::new(out_dims),
            out,
            vec![self.clone(), rhs.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let g = g_ref.as_ref().unwrap();
                if lhs_c.is_tracked() {
                    // dA = dC · Bᵀ : (m×n)·(n×k) via gemm_nt with B stored (k? n×k)
                    let mut ga = alloc::zeroed(m * k);
                    kernels::gemm_nt(g, &rhs_c.data(), &mut ga, m, n, k);
                    lhs_c.accumulate_grad_owned(ga);
                }
                if rhs_c.is_tracked() {
                    // dB = Aᵀ · dC : (k×m)·(m×n) via gemm_tn with A stored (m×k)
                    let mut gb = alloc::zeroed(k * n);
                    kernels::gemm_tn(&lhs_c.data(), g, &mut gb, k, m, n);
                    rhs_c.accumulate_grad_owned(gb);
                }
            },
        )
    }

    /// Batched matrix product `[B, M, K] · [B, K, N] -> [B, M, N]`.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 3, "bmm lhs must be 3-D");
        assert_eq!(rhs.shape().rank(), 3, "bmm rhs must be 3-D");
        let (b, m, k) = (
            self.shape().dim(0),
            self.shape().dim(1),
            self.shape().dim(2),
        );
        let (rb, rk, n) = (rhs.shape().dim(0), rhs.shape().dim(1), rhs.shape().dim(2));
        assert_eq!(b, rb, "bmm batch mismatch");
        assert_eq!(k, rk, "bmm inner dim mismatch");

        let mut out = alloc::zeroed(b * m * n);
        {
            let a = self.data();
            let bb = rhs.data();
            for i in 0..b {
                kernels::gemm_nn(
                    &a[i * m * k..(i + 1) * m * k],
                    &bb[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
        let lhs_c = self.clone();
        let rhs_c = rhs.clone();
        Tensor::make_op(
            Shape::new([b, m, n]),
            out,
            vec![self.clone(), rhs.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let g = g_ref.as_ref().unwrap();
                if lhs_c.is_tracked() {
                    let mut ga = alloc::zeroed(b * m * k);
                    let rb = rhs_c.data();
                    for i in 0..b {
                        kernels::gemm_nt(
                            &g[i * m * n..(i + 1) * m * n],
                            &rb[i * k * n..(i + 1) * k * n],
                            &mut ga[i * m * k..(i + 1) * m * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(rb);
                    lhs_c.accumulate_grad_owned(ga);
                }
                if rhs_c.is_tracked() {
                    let mut gb = alloc::zeroed(b * k * n);
                    let la = lhs_c.data();
                    for i in 0..b {
                        kernels::gemm_tn(
                            &la[i * m * k..(i + 1) * m * k],
                            &g[i * m * n..(i + 1) * m * n],
                            &mut gb[i * k * n..(i + 1) * k * n],
                            k,
                            m,
                            n,
                        );
                    }
                    drop(la);
                    rhs_c.accumulate_grad_owned(gb);
                }
            },
        )
    }

    /// Swaps the last two dimensions (contiguous copy). Rank must be ≥ 2.
    pub fn transpose_last(&self) -> Tensor {
        let rank = self.shape().rank();
        assert!(rank >= 2, "transpose_last requires rank >= 2");
        let dims = self.shape().dims();
        let (r, c) = (dims[rank - 2], dims[rank - 1]);
        let batches = self.numel() / (r * c).max(1);
        let mut out = alloc::zeroed(self.numel());
        {
            let src = self.data();
            for i in 0..batches {
                kernels::transpose(
                    &src[i * r * c..(i + 1) * r * c],
                    &mut out[i * r * c..(i + 1) * r * c],
                    r,
                    c,
                );
            }
        }
        let mut out_dims = dims.to_vec();
        out_dims.swap(rank - 2, rank - 1);
        let src_c = self.clone();
        Tensor::make_op(
            Shape::new(out_dims),
            out,
            vec![self.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let g = g_ref.as_ref().unwrap();
                let mut gx = alloc::zeroed(g.len());
                for i in 0..batches {
                    kernels::transpose(
                        &g[i * r * c..(i + 1) * r * c],
                        &mut gx[i * r * c..(i + 1) * r * c],
                        c,
                        r,
                    );
                }
                src_c.accumulate_grad_owned(gx);
            },
        )
    }

    /// Reorders dimensions by `perm` (a permutation of `0..rank`),
    /// producing a contiguous copy.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let rank = self.shape().rank();
        assert_eq!(perm.len(), rank, "permute needs one entry per dim");
        let mut seen = vec![false; rank];
        for &p in perm {
            assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let src_dims = self.shape().dims().to_vec();
        let out_dims: Vec<usize> = perm.iter().map(|&p| src_dims[p]).collect();
        let out_shape = Shape::new(out_dims);
        let out = permute_copy(&self.data(), self.shape(), perm);

        // Inverse permutation for the backward pass.
        let mut inv = vec![0usize; rank];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        let src_c = self.clone();
        let out_shape_c = out_shape.clone();
        Tensor::make_op(out_shape, out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let gx = permute_copy(g, &out_shape_c, &inv);
            src_c.accumulate_grad_owned(gx);
        })
    }

    /// Dot product of two equal-shape tensors, as a scalar tensor.
    pub fn dot(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "dot requires equal shapes");
        self.mul(rhs).sum_all()
    }
}

/// Copies `src` (of `shape`) into a new buffer laid out as `perm(shape)`.
fn permute_copy(src: &[f32], shape: &Shape, perm: &[usize]) -> Vec<f32> {
    let rank = shape.rank();
    let src_strides = shape.strides();
    let out_dims: Vec<usize> = perm.iter().map(|&p| shape.dims()[p]).collect();
    // Stride in the source for each output axis.
    let walk: Vec<usize> = perm.iter().map(|&p| src_strides[p]).collect();
    let numel = shape.numel();
    let mut out = alloc::zeroed(numel);
    let mut idx = vec![0usize; rank];
    let mut src_off = 0usize;
    for out_item in out.iter_mut() {
        *out_item = src[src_off];
        for axis in (0..rank).rev() {
            idx[axis] += 1;
            src_off += walk[axis];
            if idx[axis] < out_dims[axis] {
                break;
            }
            src_off -= walk[axis] * out_dims[axis];
            idx[axis] = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn matmul_2d() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_slice(&[1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), a.to_vec());
    }

    #[test]
    fn matmul_3d_applies_rowwise() {
        // [2, 2, 3] x [3, 2] -> [2, 2, 2]
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [2, 2, 3]);
        let w = Tensor::from_slice(&[1.0, 0.0, 0.0, 1.0, 0.0, 0.0], [3, 2]);
        let y = a.matmul(&w);
        assert_eq!(y.dims(), &[2, 2, 2]);
        // Row [0,1,2] -> [0*1+1*0+2*0, 0*0+1*1+2*0] = [0, 1]
        assert_eq!(y.at(&[0, 0, 0]), 0.0);
        assert_eq!(y.at(&[0, 0, 1]), 1.0);
    }

    #[test]
    fn matmul_backward_shapes_and_values() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let b = Tensor::from_slice(&[5.0, 6.0, 7.0, 8.0], [2, 2]).requires_grad();
        a.matmul(&b).sum_all().backward();
        // dA = 1 · Bᵀ summed over out cols: each dA[i,p] = sum_j B[p,j]
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        // dB[p,j] = sum_i A[i,p]
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..18).map(|x| x as f32 * 0.25).collect(), [2, 3, 3]);
        let y = a.bmm(&b);
        for batch in 0..2 {
            let a2 = Tensor::from_vec(
                a.to_vec()[batch * 6..(batch + 1) * 6].to_vec(),
                [2, 3],
            );
            let b2 = Tensor::from_vec(
                b.to_vec()[batch * 9..(batch + 1) * 9].to_vec(),
                [3, 3],
            );
            let y2 = a2.matmul(&b2);
            assert_eq!(
                &y.to_vec()[batch * 6..(batch + 1) * 6],
                y2.to_vec().as_slice()
            );
        }
    }

    #[test]
    fn transpose_last_2d() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let t = a.transpose_last();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_last_batched_backward() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [2, 2, 3]).requires_grad();
        let t = a.transpose_last();
        assert_eq!(t.dims(), &[2, 3, 2]);
        t.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 12]);
    }

    #[test]
    fn permute_roundtrip() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), a.at(&[0, 2, 1]));
        let back = p.permute(&[1, 2, 0]);
        assert_eq!(back.to_vec(), a.to_vec());
    }

    #[test]
    fn permute_equals_transpose_for_swap() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        assert_eq!(a.permute(&[1, 0]).to_vec(), a.transpose_last().to_vec());
    }

    #[test]
    fn permute_backward_is_inverse() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]).requires_grad();
        a.permute(&[1, 0]).mul_scalar(2.0).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![2.0; 6]);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0], [3]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0], [3]);
        assert_eq!(a.dot(&b).item(), 32.0);
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        a.matmul(&b);
    }
}
