//! Reductions: sums, means, and max along an axis or over everything.

use crate::alloc;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Splits a shape at `axis` into `(outer, axis_len, inner)` so that the
/// element at `(o, a, i)` lives at offset `(o * axis_len + a) * inner + i`.
fn axis_split(shape: &Shape, axis: usize) -> (usize, usize, usize) {
    let dims = shape.dims();
    let outer: usize = dims[..axis].iter().product();
    let axis_len = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    (outer, axis_len, inner)
}

impl Tensor {
    /// Sum of all elements, as a scalar tensor.
    pub fn sum_all(&self) -> Tensor {
        let total = crate::kernels::sum(&self.data());
        let src = self.clone();
        Tensor::make_op(Shape::scalar(), vec![total], vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap()[0];
            let gx = alloc::filled(src.numel(), g);
            src.accumulate_grad_owned(gx);
        })
    }

    /// Mean of all elements, as a scalar tensor.
    pub fn mean_all(&self) -> Tensor {
        let n = self.numel().max(1) as f32;
        self.sum_all().mul_scalar(1.0 / n)
    }

    /// Sum along `axis` (negative axes allowed). When `keepdim` is true the
    /// reduced axis stays with size 1, which makes the result broadcastable
    /// against the input.
    pub fn sum_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let axis = self.shape().resolve_axis(axis);
        let (outer, axis_len, inner) = axis_split(self.shape(), axis);
        let mut out = alloc::zeroed(outer * inner);
        {
            let data = self.data();
            for o in 0..outer {
                for a in 0..axis_len {
                    let base = (o * axis_len + a) * inner;
                    let out_base = o * inner;
                    for i in 0..inner {
                        out[out_base + i] += data[base + i];
                    }
                }
            }
        }
        let out_shape = if keepdim {
            self.shape().keepdim_axis(axis)
        } else {
            self.shape().squeeze_axis(axis)
        };
        let src = self.clone();
        Tensor::make_op(out_shape, out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let mut gx = alloc::zeroed(src.numel());
            for o in 0..outer {
                for a in 0..axis_len {
                    let base = (o * axis_len + a) * inner;
                    let g_base = o * inner;
                    gx[base..base + inner].copy_from_slice(&g[g_base..g_base + inner]);
                }
            }
            src.accumulate_grad_owned(gx);
        })
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let resolved = self.shape().resolve_axis(axis);
        let n = self.shape().dim(resolved).max(1) as f32;
        self.sum_axis(axis, keepdim).mul_scalar(1.0 / n)
    }

    /// Max along `axis`; the gradient routes to the (first) argmax.
    pub fn max_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let axis = self.shape().resolve_axis(axis);
        let (outer, axis_len, inner) = axis_split(self.shape(), axis);
        assert!(axis_len > 0, "max over an empty axis");
        let mut out = alloc::filled(outer * inner, f32::NEG_INFINITY);
        let mut argmax = vec![0usize; outer * inner];
        {
            let data = self.data();
            for o in 0..outer {
                for a in 0..axis_len {
                    let base = (o * axis_len + a) * inner;
                    let out_base = o * inner;
                    for i in 0..inner {
                        let v = data[base + i];
                        if v > out[out_base + i] {
                            out[out_base + i] = v;
                            argmax[out_base + i] = a;
                        }
                    }
                }
            }
        }
        let out_shape = if keepdim {
            self.shape().keepdim_axis(axis)
        } else {
            self.shape().squeeze_axis(axis)
        };
        let src = self.clone();
        Tensor::make_op(out_shape, out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let mut gx = alloc::zeroed(src.numel());
            for o in 0..outer {
                for i in 0..inner {
                    let oi = o * inner + i;
                    let a = argmax[oi];
                    gx[(o * axis_len + a) * inner + i] = g[oi];
                }
            }
            src.accumulate_grad_owned(gx);
        })
    }

    /// Indices of the maximum along `axis` (no gradient; plain data).
    pub fn argmax_axis(&self, axis: isize) -> Vec<usize> {
        let axis = self.shape().resolve_axis(axis);
        let (outer, axis_len, inner) = axis_split(self.shape(), axis);
        let data = self.data();
        let mut best = vec![f32::NEG_INFINITY; outer * inner];
        let mut arg = vec![0usize; outer * inner];
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                for i in 0..inner {
                    let v = data[base + i];
                    let oi = o * inner + i;
                    if v > best[oi] {
                        best[oi] = v;
                        arg[oi] = a;
                    }
                }
            }
        }
        arg
    }

    /// Top-`k` values and indices along the last axis (descending), as
    /// plain data (no gradient). Ties keep the lower index first.
    /// Returns `(values, indices)`, each row-major `[outer, k]`.
    pub fn topk_lastdim(&self, k: usize) -> (Vec<f32>, Vec<usize>) {
        let cols = *self
            .shape()
            .dims()
            .last()
            .expect("topk requires rank >= 1");
        assert!(k > 0 && k <= cols, "k={k} out of range for axis size {cols}");
        let data = self.data();
        let rows = data.len() / cols.max(1);
        let mut values = Vec::with_capacity(rows * k);
        let mut indices = Vec::with_capacity(rows * k);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let mut idx: Vec<usize> = (0..cols).collect();
            // Partial selection: top-k by value, stable on ties.
            idx.sort_by(|&a, &b| {
                row[b]
                    .partial_cmp(&row[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for &i in idx.iter().take(k) {
                values.push(row[i]);
                indices.push(i);
            }
        }
        (values, indices)
    }

    /// L2 norm over the last axis, kept as size-1 dim: `[.., D] -> [.., 1]`.
    pub fn l2_norm_lastdim(&self, eps: f32) -> Tensor {
        self.square()
            .sum_axis(-1, true)
            .add_scalar(eps)
            .sqrt()
    }

    /// Rows normalized to unit L2 norm over the last axis.
    pub fn l2_normalize_lastdim(&self, eps: f32) -> Tensor {
        self.div(&self.l2_norm_lastdim(eps))
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn sum_all_and_backward() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0], [3]).requires_grad();
        let s = x.sum_all();
        assert_eq!(s.item(), 6.0);
        s.backward();
        assert_eq!(x.grad().unwrap(), vec![1.0; 3]);
    }

    #[test]
    fn mean_all_scales() {
        let x = Tensor::from_slice(&[2.0, 4.0], [2]).requires_grad();
        let m = x.mean_all();
        assert_eq!(m.item(), 3.0);
        m.backward();
        assert_eq!(x.grad().unwrap(), vec![0.5, 0.5]);
    }

    #[test]
    fn sum_axis_middle() {
        let x = Tensor::from_vec((1..=8).map(|v| v as f32).collect(), [2, 2, 2]);
        let s = x.sum_axis(1, false);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![4.0, 6.0, 12.0, 14.0]);
    }

    #[test]
    fn sum_axis_keepdim_broadcastable() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]);
        let s = x.sum_axis(-1, true);
        assert_eq!(s.dims(), &[2, 1]);
        let normalized = x.div(&s);
        assert_eq!(normalized.to_vec(), vec![1.0 / 3.0, 2.0 / 3.0, 3.0 / 7.0, 4.0 / 7.0]);
    }

    #[test]
    fn sum_axis_backward_broadcasts_grad() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        x.sum_axis(0, false).sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn max_axis_values_and_grad_routing() {
        let x = Tensor::from_slice(&[1.0, 5.0, 3.0, 2.0, 0.0, 4.0], [2, 3]).requires_grad();
        let m = x.max_axis(-1, false);
        assert_eq!(m.to_vec(), vec![5.0, 4.0]);
        m.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn argmax_axis_indices() {
        let x = Tensor::from_slice(&[1.0, 5.0, 3.0, 2.0, 0.0, 4.0], [2, 3]);
        assert_eq!(x.argmax_axis(-1), vec![1, 2]);
        assert_eq!(x.argmax_axis(0), vec![1, 0, 1]);
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let x = Tensor::from_slice(&[3.0, 4.0, 0.0, 5.0], [2, 2]);
        let n = x.l2_normalize_lastdim(1e-12);
        let v = n.to_vec();
        assert!((v[0] - 0.6).abs() < 1e-5);
        assert!((v[1] - 0.8).abs() < 1e-5);
        assert!((v[2] - 0.0).abs() < 1e-5);
        assert!((v[3] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn topk_values_and_indices() {
        let x = Tensor::from_slice(&[1.0, 5.0, 3.0, 2.0, 0.0, 4.0], [2, 3]);
        let (v, i) = x.topk_lastdim(2);
        assert_eq!(v, vec![5.0, 3.0, 4.0, 2.0]);
        assert_eq!(i, vec![1, 2, 2, 0]);
    }

    #[test]
    fn topk_ties_prefer_lower_index() {
        let x = Tensor::from_slice(&[2.0, 2.0, 1.0], [3]);
        let (_, i) = x.topk_lastdim(2);
        assert_eq!(i, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topk_oversized_k_panics() {
        Tensor::ones([3]).topk_lastdim(4);
    }

    #[test]
    fn mean_axis_values() {
        let x = Tensor::from_slice(&[1.0, 3.0, 5.0, 7.0], [2, 2]);
        assert_eq!(x.mean_axis(-1, false).to_vec(), vec![2.0, 6.0]);
    }
}
