//! Elementwise unary operations and activations.

use crate::alloc;
use crate::kernels;
use crate::tensor::Tensor;

/// Generic elementwise unary op.
///
/// `fwd(x)` computes the output; `dfdx(x, y, g)` computes the input gradient
/// given input `x`, output `y`, and output gradient `g` (having both `x` and
/// `y` available lets e.g. `sigmoid` reuse the forward result). Large
/// buffers split across the worker pool in the forward pass.
fn unary_op(
    src: &Tensor,
    fwd: impl Fn(f32) -> f32 + Sync,
    dfdx: impl Fn(f32, f32, f32) -> f32 + Send + Sync + 'static,
) -> Tensor {
    let out = {
        let x = src.data();
        if kernels::map_splits(x.len()) {
            // Parallel path: copy then split the in-place map across the pool.
            let mut out = alloc::copy_of(&x);
            drop(x);
            kernels::map_inplace(&mut out, &fwd);
            out
        } else {
            // Serial path: single pass, no intermediate copy.
            let mut out = alloc::buffer(x.len());
            out.extend(x.iter().map(|&v| fwd(v)));
            out
        }
    };
    let src_c = src.clone();
    Tensor::make_op(src.shape().clone(), out, vec![src.clone()], move |out_t| {
        let g_ref = out_t.grad_ref();
        let g = g_ref.as_ref().unwrap();
        let x = src_c.data();
        let y = out_t.data();
        let mut gx = alloc::buffer(x.len());
        gx.extend((0..x.len()).map(|i| dfdx(x[i], y[i], g[i])));
        drop(x);
        drop(y);
        src_c.accumulate_grad_owned(gx);
    })
}

/// Consuming variant of [`unary_op`]: when `src` is untracked and uniquely
/// owned (the typical shape of an intermediate in a `no_grad` inference
/// chain), applies `fwd` directly to its buffer instead of materializing a
/// new tensor. Tracked or shared inputs fall back to the recording path, so
/// call sites can use this unconditionally on owned temporaries.
fn unary_op_consuming(
    src: Tensor,
    fwd: impl Fn(f32) -> f32 + Sync,
    dfdx: impl Fn(f32, f32, f32) -> f32 + Send + Sync + 'static,
) -> Tensor {
    match src.try_take_data() {
        Ok((shape, mut data)) => {
            kernels::map_inplace(&mut data, &fwd);
            Tensor::from_vec(data, shape)
        }
        Err(src) => unary_op(&src, fwd, dfdx),
    }
}

impl Tensor {
    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        unary_op(self, |x| -x, |_, _, g| -g)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        unary_op(self, f32::exp, |_, y, g| g * y)
    }

    /// Elementwise natural log. Inputs must be positive.
    pub fn ln(&self) -> Tensor {
        unary_op(self, f32::ln, |x, _, g| g / x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        unary_op(self, f32::sqrt, |_, y, g| g * 0.5 / y)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        unary_op(self, |x| x * x, |x, _, g| g * 2.0 * x)
    }

    /// Elementwise power with constant exponent.
    pub fn pow_scalar(&self, p: f32) -> Tensor {
        unary_op(
            self,
            move |x| x.powf(p),
            move |x, _, g| g * p * x.powf(p - 1.0),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        unary_op(
            self,
            |x| x.max(0.0),
            |x, _, g| if x > 0.0 { g } else { 0.0 },
        )
    }

    /// Gaussian error linear unit (tanh approximation, as used by BERT).
    pub fn gelu(&self) -> Tensor {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        unary_op(
            self,
            |x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()),
            |x, y, g| {
                // Recover t = tanh(inner) from the stored forward output
                // y = 0.5·x·(1+t) instead of re-evaluating tanh; the libm
                // call dominates this closure and the recovered value
                // matches to rounding error. Near x = 0 the division loses
                // precision, so fall back to the direct form there.
                let t = if x.abs() > 1e-3 {
                    2.0 * y / x - 1.0
                } else {
                    (C * (x + 0.044715 * x * x * x)).tanh()
                };
                let dt = 1.0 - t * t;
                let dinner = C * (1.0 + 3.0 * 0.044715 * x * x);
                g * (0.5 * (1.0 + t) + 0.5 * x * dt * dinner)
            },
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        unary_op(
            self,
            |x| 1.0 / (1.0 + (-x).exp()),
            |_, y, g| g * y * (1.0 - y),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary_op(self, f32::tanh, |_, y, g| g * (1.0 - y * y))
    }

    /// Elementwise absolute value (gradient at 0 taken as 0).
    pub fn abs(&self) -> Tensor {
        unary_op(
            self,
            f32::abs,
            |x, _, g| {
                if x > 0.0 {
                    g
                } else if x < 0.0 {
                    -g
                } else {
                    0.0
                }
            },
        )
    }

    /// Clamps below at `min` (gradient passes only where `x > min`).
    pub fn clamp_min(&self, min: f32) -> Tensor {
        unary_op(
            self,
            move |x| x.max(min),
            move |x, _, g| if x > min { g } else { 0.0 },
        )
    }

    /// Reciprocal, `1/x`.
    pub fn recip(&self) -> Tensor {
        unary_op(self, |x| 1.0 / x, |_, y, g| -g * y * y)
    }

    // ---------------------------------------------------------------
    // Consuming variants: reuse the input buffer in place when it is
    // untracked and uniquely owned (inference chains under `no_grad`);
    // identical to the borrowing versions otherwise.
    // ---------------------------------------------------------------

    /// [`Tensor::relu`], reusing `self`'s buffer when possible.
    pub fn into_relu(self) -> Tensor {
        unary_op_consuming(self, |x| x.max(0.0), |x, _, g| if x > 0.0 { g } else { 0.0 })
    }

    /// [`Tensor::gelu`], reusing `self`'s buffer when possible.
    pub fn into_gelu(self) -> Tensor {
        const C: f32 = 0.797_884_6;
        unary_op_consuming(
            self,
            |x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()),
            |x, y, g| {
                // Recover t = tanh(inner) from the stored forward output
                // y = 0.5·x·(1+t) instead of re-evaluating tanh; the libm
                // call dominates this closure and the recovered value
                // matches to rounding error. Near x = 0 the division loses
                // precision, so fall back to the direct form there.
                let t = if x.abs() > 1e-3 {
                    2.0 * y / x - 1.0
                } else {
                    (C * (x + 0.044715 * x * x * x)).tanh()
                };
                let dt = 1.0 - t * t;
                let dinner = C * (1.0 + 3.0 * 0.044715 * x * x);
                g * (0.5 * (1.0 + t) + 0.5 * x * dt * dinner)
            },
        )
    }

    /// [`Tensor::tanh`], reusing `self`'s buffer when possible.
    pub fn into_tanh(self) -> Tensor {
        unary_op_consuming(self, f32::tanh, |_, y, g| g * (1.0 - y * y))
    }

    /// [`Tensor::sigmoid`], reusing `self`'s buffer when possible.
    pub fn into_sigmoid(self) -> Tensor {
        unary_op_consuming(self, |x| 1.0 / (1.0 + (-x).exp()), |_, y, g| g * y * (1.0 - y))
    }

    /// [`Tensor::exp`], reusing `self`'s buffer when possible.
    pub fn into_exp(self) -> Tensor {
        unary_op_consuming(self, f32::exp, |_, y, g| g * y)
    }

    /// [`Tensor::neg`], reusing `self`'s buffer when possible.
    pub fn into_neg(self) -> Tensor {
        unary_op_consuming(self, |x| -x, |_, _, g| -g)
    }

    /// [`Tensor::mul_scalar`], reusing `self`'s buffer when possible.
    pub fn into_mul_scalar(self, s: f32) -> Tensor {
        unary_op_consuming(self, move |x| x * s, move |_, _, g| g * s)
    }

    /// [`Tensor::add_scalar`], reusing `self`'s buffer when possible.
    pub fn into_add_scalar(self, s: f32) -> Tensor {
        unary_op_consuming(self, move |x| x + s, move |_, _, g| g)
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0], [3]).requires_grad();
        let y = x.relu();
        assert_eq!(y.to_vec(), vec![0.0, 0.0, 2.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let x = Tensor::from_slice(&[0.0], [1]).requires_grad();
        let y = x.sigmoid();
        assert_close(&y.to_vec(), &[0.5], 1e-6);
        y.sum_all().backward();
        assert_close(&x.grad().unwrap(), &[0.25], 1e-6);
    }

    #[test]
    fn tanh_grad() {
        let x = Tensor::from_slice(&[0.5], [1]).requires_grad();
        x.tanh().sum_all().backward();
        let expect = 1.0 - 0.5f32.tanh().powi(2);
        assert_close(&x.grad().unwrap(), &[expect], 1e-6);
    }

    #[test]
    fn exp_ln_inverse() {
        let x = Tensor::from_slice(&[0.3, 1.7], [2]);
        let y = x.exp().ln();
        assert_close(&y.to_vec(), &x.to_vec(), 1e-5);
    }

    #[test]
    fn sqrt_square() {
        let x = Tensor::from_slice(&[4.0, 9.0], [2]);
        assert_close(&x.sqrt().to_vec(), &[2.0, 3.0], 1e-6);
        assert_close(&x.square().to_vec(), &[16.0, 81.0], 1e-6);
    }

    #[test]
    fn gelu_known_values() {
        let x = Tensor::from_slice(&[0.0, 1.0, -1.0], [3]);
        let y = x.gelu().to_vec();
        assert!((y[0]).abs() < 1e-6);
        assert!((y[1] - 0.8412).abs() < 1e-3);
        assert!((y[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn clamp_min_blocks_grad() {
        let x = Tensor::from_slice(&[-2.0, 3.0], [2]).requires_grad();
        let y = x.clamp_min(0.0);
        assert_eq!(y.to_vec(), vec![0.0, 3.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn abs_grad_signs() {
        let x = Tensor::from_slice(&[-2.0, 0.0, 2.0], [3]).requires_grad();
        x.abs().sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn recip_values() {
        let x = Tensor::from_slice(&[2.0, 4.0], [2]);
        assert_close(&x.recip().to_vec(), &[0.5, 0.25], 1e-6);
    }

    #[test]
    fn chained_ops_compose_gradients() {
        // y = exp(2x); dy/dx = 2 exp(2x)
        let x = Tensor::from_slice(&[0.5], [1]).requires_grad();
        x.mul_scalar(2.0).exp().sum_all().backward();
        let expect = 2.0 * (1.0f32).exp();
        assert!((x.grad().unwrap()[0] - expect).abs() < 1e-4);
    }
}
