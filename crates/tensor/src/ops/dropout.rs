//! Inverted dropout.

use rand::Rng;

use crate::alloc;
use crate::tensor::Tensor;

/// Samples an inverted-dropout mask: each element is `1/(1-p)` with
/// probability `1-p` and `0` otherwise. Exposed so modules can share one
/// RNG and tests can fix masks.
pub fn dropout_mask(n: usize, p: f32, rng: &mut impl Rng) -> Vec<f32> {
    assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
    let keep = 1.0 - p;
    let scale = 1.0 / keep;
    (0..n)
        .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
        .collect()
}

impl Tensor {
    /// Applies inverted dropout with probability `p`, drawing the mask from
    /// `rng`. With `p == 0` this is the identity (no op recorded).
    pub fn dropout(&self, p: f32, rng: &mut impl Rng) -> Tensor {
        if p <= 0.0 {
            return self.clone();
        }
        let mask = dropout_mask(self.numel(), p, rng);
        self.dropout_with_mask(&mask)
    }

    /// Applies a precomputed dropout mask (values 0 or `1/(1-p)`).
    pub fn dropout_with_mask(&self, mask: &[f32]) -> Tensor {
        assert_eq!(mask.len(), self.numel(), "dropout mask length mismatch");
        let mut out = alloc::buffer(self.numel());
        out.extend(self.data().iter().zip(mask.iter()).map(|(&x, &m)| x * m));
        let src = self.clone();
        let mask_owned: Vec<f32> = mask.to_vec();
        Tensor::make_op(self.shape().clone(), out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let mut gx = alloc::buffer(mask_owned.len());
            gx.extend(g.iter().zip(mask_owned.iter()).map(|(&gv, &m)| gv * m));
            src.accumulate_grad_owned(gx);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_p_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::from_slice(&[1.0, 2.0], [2]);
        let y = x.dropout(0.0, &mut rng);
        assert_eq!(y.to_vec(), x.to_vec());
    }

    #[test]
    fn mask_scales_survivors() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [4]);
        let y = x.dropout_with_mask(&[2.0, 0.0, 2.0, 0.0]);
        assert_eq!(y.to_vec(), vec![2.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn backward_uses_same_mask() {
        let x = Tensor::ones([4]).requires_grad();
        x.dropout_with_mask(&[2.0, 0.0, 2.0, 0.0]).sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![2.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn expected_value_preserved() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mask = dropout_mask(n, 0.3, &mut rng);
        let mean: f32 = mask.iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "mask mean {mean}");
    }

    #[test]
    #[should_panic(expected = "dropout p must be in")]
    fn p_one_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        dropout_mask(4, 1.0, &mut rng);
    }
}
