//! Softmax-family ops (fused, numerically stable) and attention masking.

use crate::alloc;
use crate::kernels;
use crate::shape::{broadcast_strides, for_each_broadcast};
use crate::tensor::Tensor;

impl Tensor {
    /// Softmax over the last axis.
    pub fn softmax_lastdim(&self) -> Tensor {
        let cols = *self
            .shape()
            .dims()
            .last()
            .expect("softmax requires rank >= 1");
        let mut out = self.to_vec();
        kernels::softmax_rows(&mut out, cols);
        let src = self.clone();
        Tensor::make_op(self.shape().clone(), out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let y = out_t.data();
            let mut gx = alloc::zeroed(y.len());
            // dx = y * (g - sum(g * y)) rowwise.
            for r in 0..y.len() / cols.max(1) {
                let o = r * cols;
                let mut dot = 0.0f32;
                for i in 0..cols {
                    dot += g[o + i] * y[o + i];
                }
                for i in 0..cols {
                    gx[o + i] = y[o + i] * (g[o + i] - dot);
                }
            }
            drop(y);
            src.accumulate_grad_owned(gx);
        })
    }

    /// Log-softmax over the last axis.
    pub fn log_softmax_lastdim(&self) -> Tensor {
        let cols = *self
            .shape()
            .dims()
            .last()
            .expect("log_softmax requires rank >= 1");
        let mut out = self.to_vec();
        kernels::log_softmax_rows(&mut out, cols);
        let src = self.clone();
        Tensor::make_op(self.shape().clone(), out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let y = out_t.data();
            let mut gx = alloc::zeroed(y.len());
            // dx = g - softmax(x) * sum(g) rowwise; softmax = exp(y).
            for r in 0..y.len() / cols.max(1) {
                let o = r * cols;
                let gsum: f32 = g[o..o + cols].iter().sum();
                for i in 0..cols {
                    gx[o + i] = g[o + i] - y[o + i].exp() * gsum;
                }
            }
            drop(y);
            src.accumulate_grad_owned(gx);
        })
    }

    /// Replaces elements where `mask != 0` with `value`; gradient flows
    /// only through unmasked positions. `mask` broadcasts against `self`
    /// and is treated as constant (no gradient to the mask).
    ///
    /// Typical use: `logits.masked_fill(&pad_mask, -1e9).softmax_lastdim()`.
    pub fn masked_fill(&self, mask: &Tensor, value: f32) -> Tensor {
        let out_shape = self
            .shape()
            .broadcast(mask.shape())
            .unwrap_or_else(|| panic!("mask {} incompatible with {}", mask.shape(), self.shape()));
        assert_eq!(
            &out_shape,
            self.shape(),
            "mask must broadcast to the data shape, not enlarge it"
        );
        let ms = broadcast_strides(mask.shape(), &out_shape);
        let zero = vec![0usize; out_shape.rank()];
        let mut out = alloc::zeroed(out_shape.numel());
        let mut keep = vec![false; out_shape.numel()];
        {
            let data = self.data();
            let m = mask.data();
            for_each_broadcast(&out_shape, &zero, &ms, |o, _, r| {
                if m[r] != 0.0 {
                    out[o] = value;
                } else {
                    out[o] = data[o];
                    keep[o] = true;
                }
            });
        }
        let src = self.clone();
        Tensor::make_op(out_shape, out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let mut gx = alloc::zeroed(g.len());
            for i in 0..g.len() {
                if keep[i] {
                    gx[i] = g[i];
                }
            }
            src.accumulate_grad_owned(gx);
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 1.0, 1.0, 1.0], [2, 3]);
        let y = x.softmax_lastdim();
        for row in y.to_vec().chunks(3) {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
        // Uniform logits give uniform probabilities.
        let v = y.to_vec();
        assert!((v[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_backward_zero_for_uniform_grad() {
        // d softmax / dx contracted with a constant vector is zero
        // (softmax is shift-invariant).
        let x = Tensor::from_slice(&[0.3, -1.2, 2.0], [3]).requires_grad();
        x.softmax_lastdim().sum_all().backward();
        for g in x.grad().unwrap() {
            assert!(g.abs() < 1e-6, "grad {g} should vanish");
        }
    }

    #[test]
    fn log_softmax_matches_ln_softmax() {
        let x = Tensor::from_slice(&[0.5, 1.5, -0.5, 0.0], [2, 2]);
        let a = x.log_softmax_lastdim().to_vec();
        let b = x.softmax_lastdim().ln().to_vec();
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_backward_matches_composition() {
        let x1 = Tensor::from_slice(&[0.1, 0.9, -0.4], [3]).requires_grad();
        let x2 = Tensor::from_slice(&[0.1, 0.9, -0.4], [3]).requires_grad();
        // Weighted sum to make the gradient non-trivial.
        let w = Tensor::from_slice(&[1.0, -2.0, 0.5], [3]);
        x1.log_softmax_lastdim().mul(&w).sum_all().backward();
        x2.softmax_lastdim().ln().mul(&w).sum_all().backward();
        let g1 = x1.grad().unwrap();
        let g2 = x2.grad().unwrap();
        for (u, v) in g1.iter().zip(g2.iter()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn masked_fill_values_and_grad() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let mask = Tensor::from_slice(&[0.0, 1.0, 0.0, 0.0], [2, 2]);
        let y = x.masked_fill(&mask, -9.0);
        assert_eq!(y.to_vec(), vec![1.0, -9.0, 3.0, 4.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn masked_fill_broadcast_mask() {
        // Mask one column for every row.
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]);
        let mask = Tensor::from_slice(&[0.0, 1.0], [2]);
        let y = x.masked_fill(&mask, 0.0);
        assert_eq!(y.to_vec(), vec![1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn masked_softmax_ignores_masked_positions() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0], [1, 3]);
        let mask = Tensor::from_slice(&[0.0, 0.0, 1.0], [1, 3]);
        let y = x.masked_fill(&mask, -1e9).softmax_lastdim().to_vec();
        assert!(y[2] < 1e-6);
        assert!((y[0] + y[1] - 1.0).abs() < 1e-5);
    }
}
