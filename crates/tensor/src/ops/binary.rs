//! Broadcast-aware elementwise binary operations (`+`, `-`, `*`, `/`) and
//! scalar variants.

use crate::alloc;
use crate::kernels;
use crate::shape::{broadcast_strides, for_each_broadcast, BroadcastPlan};
use crate::tensor::Tensor;

/// Generic broadcast binary op.
///
/// `fwd(a, b)` computes the output element; `da(a, b, g)` and `db(a, b, g)`
/// compute the gradient contributions to each operand given the output
/// gradient `g` at the corresponding element. The same-shape and scalar
/// fast paths split large buffers across the worker pool.
fn binary_op(
    lhs: &Tensor,
    rhs: &Tensor,
    fwd: impl Fn(f32, f32) -> f32 + Sync,
    da: impl Fn(f32, f32, f32) -> f32 + Send + Sync + 'static,
    db: impl Fn(f32, f32, f32) -> f32 + Send + Sync + 'static,
) -> Tensor {
    let out_shape = lhs
        .shape()
        .broadcast(rhs.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", lhs.shape(), rhs.shape()));
    let a = lhs.data();
    let b = rhs.data();
    let numel = out_shape.numel();
    let out = match BroadcastPlan::build(lhs.shape(), rhs.shape(), &out_shape) {
        BroadcastPlan::SameShape => {
            if kernels::map_splits(numel) {
                let mut out = alloc::zeroed(numel);
                kernels::zip_map_into(&a, &b, &mut out, &fwd);
                out
            } else {
                let mut out = alloc::buffer(numel);
                out.extend(a.iter().zip(b.iter()).map(|(&x, &y)| fwd(x, y)));
                out
            }
        }
        BroadcastPlan::ScalarRhs => {
            let y = b[0];
            let mut out = alloc::buffer(numel);
            out.extend(a.iter().map(|&x| fwd(x, y)));
            out
        }
        BroadcastPlan::ScalarLhs => {
            let x = a[0];
            let mut out = alloc::buffer(numel);
            out.extend(b.iter().map(|&y| fwd(x, y)));
            out
        }
        BroadcastPlan::TrailingRhs { block } => {
            let mut out = alloc::buffer(numel);
            for chunk in a.chunks(block) {
                out.extend(chunk.iter().zip(b.iter()).map(|(&x, &y)| fwd(x, y)));
            }
            out
        }
        BroadcastPlan::General {
            out_shape: os,
            lhs_strides,
            rhs_strides,
        } => {
            let mut out = alloc::zeroed(numel);
            for_each_broadcast(&os, &lhs_strides, &rhs_strides, |o, l, r| {
                out[o] = fwd(a[l], b[r]);
            });
            out
        }
    };
    drop(a);
    drop(b);

    let lhs_c = lhs.clone();
    let rhs_c = rhs.clone();
    let out_shape_c = out_shape.clone();
    Tensor::make_op(
        out_shape,
        out,
        vec![lhs.clone(), rhs.clone()],
        move |out_t: &Tensor| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().expect("output gradient missing");
            let a = lhs_c.data();
            let b = rhs_c.data();
            // Mirror the forward's plan so the common layouts skip the
            // strided index arithmetic. Reduction orders match the General
            // path (row-major over the output), so results are unchanged.
            let plan = BroadcastPlan::build(lhs_c.shape(), rhs_c.shape(), &out_shape_c);
            // `accumulate_grad` touches only the gradient cell, so holding
            // the data borrows of `a`/`b` across it is safe.
            if lhs_c.is_tracked() {
                let mut ga;
                match &plan {
                    BroadcastPlan::SameShape => {
                        ga = alloc::buffer(a.len());
                        ga.extend((0..a.len()).map(|i| da(a[i], b[i], g[i])));
                    }
                    BroadcastPlan::ScalarRhs => {
                        let y = b[0];
                        ga = alloc::buffer(a.len());
                        ga.extend((0..a.len()).map(|i| da(a[i], y, g[i])));
                    }
                    BroadcastPlan::ScalarLhs => {
                        let x = a[0];
                        let mut acc = 0.0f32;
                        for i in 0..b.len() {
                            acc += da(x, b[i], g[i]);
                        }
                        ga = alloc::filled(1, acc);
                    }
                    BroadcastPlan::TrailingRhs { block } => {
                        ga = alloc::buffer(a.len());
                        for (chunk, g_chunk) in a.chunks(*block).zip(g.chunks(*block)) {
                            ga.extend(
                                chunk
                                    .iter()
                                    .zip(b.iter())
                                    .zip(g_chunk.iter())
                                    .map(|((&x, &y), &gv)| da(x, y, gv)),
                            );
                        }
                    }
                    BroadcastPlan::General { .. } => {
                        let ls = broadcast_strides(lhs_c.shape(), &out_shape_c);
                        let rs = broadcast_strides(rhs_c.shape(), &out_shape_c);
                        ga = alloc::zeroed(lhs_c.numel());
                        for_each_broadcast(&out_shape_c, &ls, &rs, |o, l, r| {
                            ga[l] += da(a[l], b[r], g[o]);
                        });
                    }
                }
                lhs_c.accumulate_grad_owned(ga);
            }
            if rhs_c.is_tracked() {
                let mut gb;
                match &plan {
                    BroadcastPlan::SameShape => {
                        gb = alloc::buffer(b.len());
                        gb.extend((0..b.len()).map(|i| db(a[i], b[i], g[i])));
                    }
                    BroadcastPlan::ScalarRhs => {
                        let y = b[0];
                        let mut acc = 0.0f32;
                        for i in 0..a.len() {
                            acc += db(a[i], y, g[i]);
                        }
                        gb = alloc::filled(1, acc);
                    }
                    BroadcastPlan::ScalarLhs => {
                        let x = a[0];
                        gb = alloc::buffer(b.len());
                        gb.extend((0..b.len()).map(|i| db(x, b[i], g[i])));
                    }
                    BroadcastPlan::TrailingRhs { block } => {
                        gb = alloc::zeroed(b.len());
                        for (chunk, g_chunk) in a.chunks(*block).zip(g.chunks(*block)) {
                            for ((gb_v, &x), (&y, &gv)) in gb
                                .iter_mut()
                                .zip(chunk.iter())
                                .zip(b.iter().zip(g_chunk.iter()))
                            {
                                *gb_v += db(x, y, gv);
                            }
                        }
                    }
                    BroadcastPlan::General { .. } => {
                        let ls = broadcast_strides(lhs_c.shape(), &out_shape_c);
                        let rs = broadcast_strides(rhs_c.shape(), &out_shape_c);
                        gb = alloc::zeroed(rhs_c.numel());
                        for_each_broadcast(&out_shape_c, &ls, &rs, |o, l, r| {
                            gb[r] += db(a[l], b[r], g[o]);
                        });
                    }
                }
                rhs_c.accumulate_grad_owned(gb);
            }
        },
    )
}

impl Tensor {
    /// Elementwise addition with broadcasting.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a + b, |_, _, g| g, |_, _, g| g)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a - b, |_, _, g| g, |_, _, g| -g)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a * b, |_, b, g| g * b, |a, _, g| g * a)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        binary_op(
            self,
            rhs,
            |a, b| a / b,
            |_, b, g| g / b,
            |a, b, g| -g * a / (b * b),
        )
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let out = {
            let x = self.data();
            let mut out = alloc::buffer(x.len());
            out.extend(x.iter().map(|&v| v + c));
            out
        };
        let src = self.clone();
        Tensor::make_op(
            self.shape().clone(),
            out,
            vec![self.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let g = g_ref.as_ref().unwrap();
                src.accumulate_grad(g);
            },
        )
    }

    /// Multiplies by a scalar constant.
    pub fn mul_scalar(&self, c: f32) -> Tensor {
        let out = {
            let x = self.data();
            let mut out = alloc::buffer(x.len());
            out.extend(x.iter().map(|&v| v * c));
            out
        };
        let src = self.clone();
        Tensor::make_op(
            self.shape().clone(),
            out,
            vec![self.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let g = g_ref.as_ref().unwrap();
                let mut scaled = alloc::buffer(g.len());
                scaled.extend(g.iter().map(|&v| v * c));
                src.accumulate_grad_owned(scaled);
            },
        )
    }

    /// `max(self, other)` elementwise with broadcasting; gradient routes to
    /// the larger operand (ties go to `self`).
    pub fn maximum(&self, rhs: &Tensor) -> Tensor {
        binary_op(
            self,
            rhs,
            f32::max,
            |a, b, g| if a >= b { g } else { 0.0 },
            |a, b, g| if b > a { g } else { 0.0 },
        )
    }

    /// `min(self, other)` elementwise with broadcasting.
    pub fn minimum(&self, rhs: &Tensor) -> Tensor {
        binary_op(
            self,
            rhs,
            f32::min,
            |a, b, g| if a <= b { g } else { 0.0 },
            |a, b, g| if b < a { g } else { 0.0 },
        )
    }
}

impl std::ops::Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs)
    }
}

impl std::ops::Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs)
    }
}

impl std::ops::Mul for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs)
    }
}

impl std::ops::Div for &Tensor {
    type Output = Tensor;
    fn div(self, rhs: &Tensor) -> Tensor {
        Tensor::div(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]);
        let b = Tensor::from_slice(&[10.0, 20.0], [2]);
        assert_eq!((&a + &b).to_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn add_bias_broadcast() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_slice(&[10.0, 20.0], [2]);
        assert_eq!((&a + &b).to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn mul_scalar_tensor_broadcast() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]);
        let s = Tensor::scalar(3.0);
        assert_eq!((&a * &s).to_vec(), vec![3.0, 6.0]);
        assert_eq!((&s * &a).to_vec(), vec![3.0, 6.0]);
    }

    #[test]
    fn div_values() {
        let a = Tensor::from_slice(&[6.0, 8.0], [2]);
        let b = Tensor::from_slice(&[2.0, 4.0], [2]);
        assert_eq!((&a / &b).to_vec(), vec![3.0, 2.0]);
    }

    #[test]
    fn add_backward_broadcast_reduces() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let b = Tensor::from_slice(&[1.0, 1.0], [2]).requires_grad();
        let out = (&a + &b).sum_all();
        out.backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 4]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0]); // summed over rows
    }

    #[test]
    fn mul_backward_product_rule() {
        let a = Tensor::from_slice(&[2.0, 3.0], [2]).requires_grad();
        let b = Tensor::from_slice(&[5.0, 7.0], [2]).requires_grad();
        (&a * &b).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn sub_backward_negates_rhs() {
        let a = Tensor::from_slice(&[1.0], [1]).requires_grad();
        let b = Tensor::from_slice(&[2.0], [1]).requires_grad();
        (&a - &b).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0]);
        assert_eq!(b.grad().unwrap(), vec![-1.0]);
    }

    #[test]
    fn reuse_of_operand_accumulates() {
        // y = x * x => dy/dx = 2x
        let x = Tensor::from_slice(&[3.0], [1]).requires_grad();
        (&x * &x).sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![6.0]);
    }

    #[test]
    fn maximum_routes_gradient() {
        let a = Tensor::from_slice(&[1.0, 5.0], [2]).requires_grad();
        let b = Tensor::from_slice(&[3.0, 2.0], [2]).requires_grad();
        let m = a.maximum(&b);
        assert_eq!(m.to_vec(), vec![3.0, 5.0]);
        m.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]).requires_grad();
        let y = a.mul_scalar(3.0).add_scalar(1.0);
        assert_eq!(y.to_vec(), vec![4.0, 7.0]);
        y.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 3]);
        let _ = &a + &b;
    }
}
