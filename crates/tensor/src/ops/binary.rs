//! Broadcast-aware elementwise binary operations (`+`, `-`, `*`, `/`) and
//! scalar variants.

use crate::kernels;
use crate::shape::{broadcast_strides, for_each_broadcast, BroadcastPlan};
use crate::tensor::Tensor;

/// Generic broadcast binary op.
///
/// `fwd(a, b)` computes the output element; `da(a, b, g)` and `db(a, b, g)`
/// compute the gradient contributions to each operand given the output
/// gradient `g` at the corresponding element. The same-shape and scalar
/// fast paths split large buffers across the worker pool.
fn binary_op(
    lhs: &Tensor,
    rhs: &Tensor,
    fwd: impl Fn(f32, f32) -> f32 + Sync,
    da: impl Fn(f32, f32, f32) -> f32 + Send + Sync + 'static,
    db: impl Fn(f32, f32, f32) -> f32 + Send + Sync + 'static,
) -> Tensor {
    let out_shape = lhs
        .shape()
        .broadcast(rhs.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", lhs.shape(), rhs.shape()));
    let a = lhs.data();
    let b = rhs.data();
    let mut out = vec![0.0f32; out_shape.numel()];
    match BroadcastPlan::build(lhs.shape(), rhs.shape(), &out_shape) {
        BroadcastPlan::SameShape => {
            kernels::zip_map_into(&a, &b, &mut out, &fwd);
        }
        BroadcastPlan::ScalarRhs => {
            let y = b[0];
            out.copy_from_slice(&a);
            kernels::map_inplace(&mut out, |x| fwd(x, y));
        }
        BroadcastPlan::ScalarLhs => {
            let x = a[0];
            out.copy_from_slice(&b);
            kernels::map_inplace(&mut out, |y| fwd(x, y));
        }
        BroadcastPlan::TrailingRhs { block } => {
            for (chunk, o_chunk) in a.chunks(block).zip(out.chunks_mut(block)) {
                for ((o, &x), &y) in o_chunk.iter_mut().zip(chunk.iter()).zip(b.iter()) {
                    *o = fwd(x, y);
                }
            }
        }
        BroadcastPlan::General {
            out_shape: os,
            lhs_strides,
            rhs_strides,
        } => {
            for_each_broadcast(&os, &lhs_strides, &rhs_strides, |o, l, r| {
                out[o] = fwd(a[l], b[r]);
            });
        }
    }
    drop(a);
    drop(b);

    let lhs_c = lhs.clone();
    let rhs_c = rhs.clone();
    let out_shape_c = out_shape.clone();
    Tensor::make_op(
        out_shape,
        out,
        vec![lhs.clone(), rhs.clone()],
        move |out_t: &Tensor| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().expect("output gradient missing");
            let a = lhs_c.data();
            let b = rhs_c.data();
            let ls = broadcast_strides(lhs_c.shape(), &out_shape_c);
            let rs = broadcast_strides(rhs_c.shape(), &out_shape_c);
            // `accumulate_grad` touches only the gradient cell, so holding
            // the data borrows of `a`/`b` across it is safe.
            if lhs_c.is_tracked() {
                let mut ga = vec![0.0f32; lhs_c.numel()];
                for_each_broadcast(&out_shape_c, &ls, &rs, |o, l, r| {
                    ga[l] += da(a[l], b[r], g[o]);
                });
                lhs_c.accumulate_grad(&ga);
            }
            if rhs_c.is_tracked() {
                let mut gb = vec![0.0f32; rhs_c.numel()];
                for_each_broadcast(&out_shape_c, &ls, &rs, |o, l, r| {
                    gb[r] += db(a[l], b[r], g[o]);
                });
                rhs_c.accumulate_grad(&gb);
            }
        },
    )
}

impl Tensor {
    /// Elementwise addition with broadcasting.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a + b, |_, _, g| g, |_, _, g| g)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a - b, |_, _, g| g, |_, _, g| -g)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        binary_op(self, rhs, |a, b| a * b, |_, b, g| g * b, |a, _, g| g * a)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        binary_op(
            self,
            rhs,
            |a, b| a / b,
            |_, b, g| g / b,
            |a, b, g| -g * a / (b * b),
        )
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let out: Vec<f32> = self.data().iter().map(|&x| x + c).collect();
        let src = self.clone();
        Tensor::make_op(
            self.shape().clone(),
            out,
            vec![self.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let g = g_ref.as_ref().unwrap();
                src.accumulate_grad(g);
            },
        )
    }

    /// Multiplies by a scalar constant.
    pub fn mul_scalar(&self, c: f32) -> Tensor {
        let out: Vec<f32> = self.data().iter().map(|&x| x * c).collect();
        let src = self.clone();
        Tensor::make_op(
            self.shape().clone(),
            out,
            vec![self.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let g = g_ref.as_ref().unwrap();
                let scaled: Vec<f32> = g.iter().map(|&v| v * c).collect();
                src.accumulate_grad(&scaled);
            },
        )
    }

    /// `max(self, other)` elementwise with broadcasting; gradient routes to
    /// the larger operand (ties go to `self`).
    pub fn maximum(&self, rhs: &Tensor) -> Tensor {
        binary_op(
            self,
            rhs,
            f32::max,
            |a, b, g| if a >= b { g } else { 0.0 },
            |a, b, g| if b > a { g } else { 0.0 },
        )
    }

    /// `min(self, other)` elementwise with broadcasting.
    pub fn minimum(&self, rhs: &Tensor) -> Tensor {
        binary_op(
            self,
            rhs,
            f32::min,
            |a, b, g| if a <= b { g } else { 0.0 },
            |a, b, g| if b < a { g } else { 0.0 },
        )
    }
}

impl std::ops::Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs)
    }
}

impl std::ops::Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs)
    }
}

impl std::ops::Mul for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs)
    }
}

impl std::ops::Div for &Tensor {
    type Output = Tensor;
    fn div(self, rhs: &Tensor) -> Tensor {
        Tensor::div(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]);
        let b = Tensor::from_slice(&[10.0, 20.0], [2]);
        assert_eq!((&a + &b).to_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn add_bias_broadcast() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_slice(&[10.0, 20.0], [2]);
        assert_eq!((&a + &b).to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn mul_scalar_tensor_broadcast() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]);
        let s = Tensor::scalar(3.0);
        assert_eq!((&a * &s).to_vec(), vec![3.0, 6.0]);
        assert_eq!((&s * &a).to_vec(), vec![3.0, 6.0]);
    }

    #[test]
    fn div_values() {
        let a = Tensor::from_slice(&[6.0, 8.0], [2]);
        let b = Tensor::from_slice(&[2.0, 4.0], [2]);
        assert_eq!((&a / &b).to_vec(), vec![3.0, 2.0]);
    }

    #[test]
    fn add_backward_broadcast_reduces() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let b = Tensor::from_slice(&[1.0, 1.0], [2]).requires_grad();
        let out = (&a + &b).sum_all();
        out.backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 4]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0]); // summed over rows
    }

    #[test]
    fn mul_backward_product_rule() {
        let a = Tensor::from_slice(&[2.0, 3.0], [2]).requires_grad();
        let b = Tensor::from_slice(&[5.0, 7.0], [2]).requires_grad();
        (&a * &b).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn sub_backward_negates_rhs() {
        let a = Tensor::from_slice(&[1.0], [1]).requires_grad();
        let b = Tensor::from_slice(&[2.0], [1]).requires_grad();
        (&a - &b).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0]);
        assert_eq!(b.grad().unwrap(), vec![-1.0]);
    }

    #[test]
    fn reuse_of_operand_accumulates() {
        // y = x * x => dy/dx = 2x
        let x = Tensor::from_slice(&[3.0], [1]).requires_grad();
        (&x * &x).sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![6.0]);
    }

    #[test]
    fn maximum_routes_gradient() {
        let a = Tensor::from_slice(&[1.0, 5.0], [2]).requires_grad();
        let b = Tensor::from_slice(&[3.0, 2.0], [2]).requires_grad();
        let m = a.maximum(&b);
        assert_eq!(m.to_vec(), vec![3.0, 5.0]);
        m.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]).requires_grad();
        let y = a.mul_scalar(3.0).add_scalar(1.0);
        assert_eq!(y.to_vec(), vec![4.0, 7.0]);
        y.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 3]);
        let _ = &a + &b;
    }
}
