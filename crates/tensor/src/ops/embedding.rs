//! Embedding lookup: gather rows of a weight matrix by integer id, with
//! scatter-add backward into the weight gradient.

use crate::alloc;
use crate::shape::Shape;
use crate::sharded;
use crate::tensor::Tensor;

impl Tensor {
    /// Looks up `ids` in this `[V, D]` weight matrix, producing `[N, D]`
    /// where `N = ids.len()`.
    ///
    /// Identical math to `index_select0` but kept as a named op because it
    /// is the entry point of every model in the workspace and the hot path
    /// of the sparse backward.
    pub fn embedding(&self, ids: &[usize]) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "embedding weight must be [V, D]");
        let v = self.shape().dim(0);
        let d = self.shape().dim(1);
        let mut out = alloc::zeroed(ids.len() * d);
        {
            let w = self.data();
            for (k, &id) in ids.iter().enumerate() {
                assert!(id < v, "embedding id {id} out of range (vocab {v})");
                out[k * d..(k + 1) * d].copy_from_slice(&w[id * d..(id + 1) * d]);
            }
        }
        let weight = self.clone();
        let ids_owned: Vec<usize> = ids.to_vec();
        Tensor::make_op(
            Shape::new([ids_owned.len(), d]),
            out,
            vec![self.clone()],
            move |out_t| {
                let g_ref = out_t.grad_ref();
                let g = g_ref.as_ref().unwrap();
                let mut gw = alloc::zeroed(weight.numel());
                // Sharded across the worker pool behind MBSSL_SHARD_EMB;
                // bit-identical to the sequential scatter for any pool size.
                sharded::scatter_add(&mut gw, d, &ids_owned, g);
                weight.accumulate_grad_owned(gw);
            },
        )
    }

    /// Embedding lookup reshaped to `[B, L, D]` for a batch of padded
    /// sequences given row-major `ids` of length `B*L`.
    pub fn embedding_seq(&self, ids: &[usize], batch: usize, len: usize) -> Tensor {
        assert_eq!(ids.len(), batch * len, "ids must be batch*len");
        let d = self.shape().dim(1);
        self.embedding(ids).reshape([batch, len, d])
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn embedding_gathers_rows() {
        let w = Tensor::from_vec((0..8).map(|v| v as f32).collect(), [4, 2]);
        let e = w.embedding(&[3, 1]);
        assert_eq!(e.dims(), &[2, 2]);
        assert_eq!(e.to_vec(), vec![6.0, 7.0, 2.0, 3.0]);
    }

    #[test]
    fn embedding_backward_scatter_adds() {
        let w = Tensor::zeros([4, 2]).requires_grad();
        // Row 1 referenced twice: its gradient doubles.
        w.embedding(&[1, 1, 3]).sum_all().backward();
        assert_eq!(
            w.grad().unwrap(),
            vec![0.0, 0.0, 2.0, 2.0, 0.0, 0.0, 1.0, 1.0]
        );
    }

    #[test]
    fn embedding_seq_shape() {
        let w = Tensor::zeros([10, 3]);
        let e = w.embedding_seq(&[0, 1, 2, 3, 4, 5], 2, 3);
        assert_eq!(e.dims(), &[2, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn embedding_oob_panics() {
        Tensor::zeros([2, 2]).embedding(&[5]);
    }
}
