//! Shape-manipulating ops: reshape, concat, narrow, stack, index-select.
//!
//! All of these produce contiguous copies; the engine has no view
//! machinery. Copies are cheap relative to the matmuls around them at the
//! model sizes this engine targets.

use crate::alloc;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Splits `shape` at `axis` into `(outer, axis_len, inner)`.
fn axis_split(shape: &Shape, axis: usize) -> (usize, usize, usize) {
    let dims = shape.dims();
    let outer: usize = dims[..axis].iter().product();
    let axis_len = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    (outer, axis_len, inner)
}

impl Tensor {
    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert!(
            self.shape().reshape_compatible(&shape),
            "cannot reshape {} into {shape}",
            self.shape()
        );
        let src = self.clone();
        Tensor::make_op(shape, self.to_vec(), vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            src.accumulate_grad(g);
        })
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        self.reshape([self.numel()])
    }

    /// Adds a size-1 axis at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        let mut dims = self.shape().dims().to_vec();
        assert!(axis <= dims.len(), "unsqueeze axis out of range");
        dims.insert(axis, 1);
        self.reshape(dims)
    }

    /// Removes a size-1 axis at `axis`.
    pub fn squeeze(&self, axis: usize) -> Tensor {
        let mut dims = self.shape().dims().to_vec();
        assert_eq!(dims[axis], 1, "squeeze axis must have size 1");
        dims.remove(axis);
        self.reshape(dims)
    }

    /// Slice of length `len` starting at `start` along `axis`.
    pub fn narrow(&self, axis: isize, start: usize, len: usize) -> Tensor {
        let axis = self.shape().resolve_axis(axis);
        let (outer, axis_len, inner) = axis_split(self.shape(), axis);
        assert!(
            start + len <= axis_len,
            "narrow range {start}..{} exceeds axis size {axis_len}",
            start + len
        );
        let mut out = alloc::zeroed(outer * len * inner);
        {
            let data = self.data();
            for o in 0..outer {
                let src_base = (o * axis_len + start) * inner;
                let dst_base = o * len * inner;
                out[dst_base..dst_base + len * inner]
                    .copy_from_slice(&data[src_base..src_base + len * inner]);
            }
        }
        let mut dims = self.shape().dims().to_vec();
        dims[axis] = len;
        let src = self.clone();
        Tensor::make_op(Shape::new(dims), out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let mut gx = alloc::zeroed(src.numel());
            for o in 0..outer {
                let dst_base = (o * axis_len + start) * inner;
                let src_base = o * len * inner;
                gx[dst_base..dst_base + len * inner]
                    .copy_from_slice(&g[src_base..src_base + len * inner]);
            }
            src.accumulate_grad_owned(gx);
        })
    }

    /// Selects rows (`axis` 0 blocks) by index, with repetition allowed.
    /// Gradient scatter-adds back into the selected rows.
    pub fn index_select0(&self, indices: &[usize]) -> Tensor {
        assert!(self.shape().rank() >= 1, "index_select0 requires rank >= 1");
        let rows = self.shape().dim(0);
        let inner = self.numel() / rows.max(1);
        let mut out = alloc::zeroed(indices.len() * inner);
        {
            let data = self.data();
            for (k, &idx) in indices.iter().enumerate() {
                assert!(idx < rows, "index {idx} out of bounds for {rows} rows");
                out[k * inner..(k + 1) * inner]
                    .copy_from_slice(&data[idx * inner..(idx + 1) * inner]);
            }
        }
        let mut dims = self.shape().dims().to_vec();
        dims[0] = indices.len();
        let src = self.clone();
        let idx_owned: Vec<usize> = indices.to_vec();
        Tensor::make_op(Shape::new(dims), out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let mut gx = alloc::zeroed(src.numel());
            for (k, &idx) in idx_owned.iter().enumerate() {
                let dst = &mut gx[idx * inner..(idx + 1) * inner];
                let srcg = &g[k * inner..(k + 1) * inner];
                for (d, &s) in dst.iter_mut().zip(srcg.iter()) {
                    *d += s;
                }
            }
            src.accumulate_grad_owned(gx);
        })
    }

    /// Concatenates tensors along `axis`. All other dims must match.
    pub fn concat(tensors: &[&Tensor], axis: isize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let axis = tensors[0].shape().resolve_axis(axis);
        let rank = tensors[0].shape().rank();
        for t in tensors {
            assert_eq!(t.shape().rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != axis {
                    assert_eq!(
                        t.shape().dim(d),
                        tensors[0].shape().dim(d),
                        "concat non-axis dim mismatch"
                    );
                }
            }
        }
        let (outer, _, inner) = axis_split(tensors[0].shape(), axis);
        let axis_lens: Vec<usize> = tensors.iter().map(|t| t.shape().dim(axis)).collect();
        let total_axis: usize = axis_lens.iter().sum();
        let mut out = alloc::zeroed(outer * total_axis * inner);
        {
            let mut offset = 0usize;
            for (t, &alen) in tensors.iter().zip(axis_lens.iter()) {
                let data = t.data();
                for o in 0..outer {
                    let src_base = o * alen * inner;
                    let dst_base = (o * total_axis + offset) * inner;
                    out[dst_base..dst_base + alen * inner]
                        .copy_from_slice(&data[src_base..src_base + alen * inner]);
                }
                offset += alen;
            }
        }
        let mut dims = tensors[0].shape().dims().to_vec();
        dims[axis] = total_axis;
        let parents: Vec<Tensor> = tensors.iter().map(|&t| t.clone()).collect();
        let parents_c = parents.clone();
        Tensor::make_op(Shape::new(dims), out, parents, move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let mut offset = 0usize;
            for (t, &alen) in parents_c.iter().zip(axis_lens.iter()) {
                if t.is_tracked() {
                    let mut gx = alloc::zeroed(t.numel());
                    for o in 0..outer {
                        let src_base = (o * total_axis + offset) * inner;
                        let dst_base = o * alen * inner;
                        gx[dst_base..dst_base + alen * inner]
                            .copy_from_slice(&g[src_base..src_base + alen * inner]);
                    }
                    t.accumulate_grad_owned(gx);
                }
                offset += alen;
            }
        })
    }

    /// Stacks equal-shape tensors along a new leading axis.
    pub fn stack(tensors: &[&Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "stack of zero tensors");
        let unsqueezed: Vec<Tensor> = tensors.iter().map(|t| t.unsqueeze(0)).collect();
        let refs: Vec<&Tensor> = unsqueezed.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Splits into equal chunks along `axis`; inverse of concat.
    pub fn chunk(&self, chunks: usize, axis: isize) -> Vec<Tensor> {
        let resolved = self.shape().resolve_axis(axis);
        let alen = self.shape().dim(resolved);
        assert!(chunks > 0 && alen.is_multiple_of(chunks), "axis {alen} not divisible into {chunks}");
        let step = alen / chunks;
        (0..chunks)
            .map(|i| self.narrow(axis, i * step, step))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn reshape_preserves_data() {
        let x = Tensor::from_vec((0..6).map(|v| v as f32).collect(), [2, 3]);
        let y = x.reshape([3, 2]);
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.to_vec(), x.to_vec());
    }

    #[test]
    fn reshape_backward_passthrough() {
        let x = Tensor::ones([2, 3]).requires_grad();
        x.reshape([6]).mul_scalar(2.0).sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![2.0; 6]);
    }

    #[test]
    fn unsqueeze_squeeze_roundtrip() {
        let x = Tensor::ones([2, 3]);
        let y = x.unsqueeze(1);
        assert_eq!(y.dims(), &[2, 1, 3]);
        assert_eq!(y.squeeze(1).dims(), &[2, 3]);
    }

    #[test]
    fn narrow_middle_axis() {
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), [2, 4, 3]);
        let y = x.narrow(1, 1, 2);
        assert_eq!(y.dims(), &[2, 2, 3]);
        assert_eq!(y.at(&[0, 0, 0]), x.at(&[0, 1, 0]));
        assert_eq!(y.at(&[1, 1, 2]), x.at(&[1, 2, 2]));
    }

    #[test]
    fn narrow_backward_scatter() {
        let x = Tensor::ones([4]).requires_grad();
        x.narrow(0, 1, 2).sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = Tensor::from_slice(&[1.0, 2.0], [1, 2]);
        let b = Tensor::from_slice(&[3.0, 4.0], [1, 2]);
        assert_eq!(Tensor::concat(&[&a, &b], 0).to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(Tensor::concat(&[&a, &b], 1).to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(Tensor::concat(&[&a, &b], 1).dims(), &[1, 4]);
    }

    #[test]
    fn concat_backward_splits() {
        let a = Tensor::ones([2]).requires_grad();
        let b = Tensor::ones([3]).requires_grad();
        let y = Tensor::concat(&[&a, &b], 0);
        y.mul_scalar(3.0).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0; 2]);
        assert_eq!(b.grad().unwrap(), vec![3.0; 3]);
    }

    #[test]
    fn index_select0_gathers_rows() {
        let x = Tensor::from_vec((0..6).map(|v| v as f32).collect(), [3, 2]);
        let y = x.index_select0(&[2, 0, 2]);
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.to_vec(), vec![4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn index_select0_backward_accumulates_repeats() {
        let x = Tensor::ones([3, 2]).requires_grad();
        x.index_select0(&[2, 0, 2]).sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn stack_creates_new_axis() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]);
        let b = Tensor::from_slice(&[3.0, 4.0], [2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn chunk_then_concat_roundtrip() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), [2, 6]);
        let parts = x.chunk(3, 1);
        assert_eq!(parts.len(), 3);
        let refs: Vec<&Tensor> = parts.iter().collect();
        assert_eq!(Tensor::concat(&refs, 1).to_vec(), x.to_vec());
    }
}
