//! Loss functions with fused, numerically stable backward passes.

use crate::alloc;
use crate::kernels;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Mean cross-entropy between row logits `[N, C]` and integer targets.
    ///
    /// Fuses log-softmax + NLL: the backward is the textbook
    /// `(softmax(x) - onehot) / N`, avoiding any large intermediate graph.
    pub fn cross_entropy_logits(&self, targets: &[usize]) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "logits must be [N, C]");
        let n = self.shape().dim(0);
        let c = self.shape().dim(1);
        assert_eq!(targets.len(), n, "one target per row");
        let mut log_probs = self.to_vec();
        kernels::log_softmax_rows(&mut log_probs, c);
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < c, "target {t} out of range for {c} classes");
            loss -= log_probs[r * c + t];
        }
        loss /= n.max(1) as f32;

        let src = self.clone();
        let targets_owned: Vec<usize> = targets.to_vec();
        Tensor::make_op(Shape::scalar(), vec![loss], vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap()[0];
            // softmax = exp(log_probs)
            let mut gx = alloc::zeroed(n * c);
            let scale = g / n.max(1) as f32;
            for r in 0..n {
                let o = r * c;
                for i in 0..c {
                    gx[o + i] = log_probs[o + i].exp() * scale;
                }
                gx[o + targets_owned[r]] -= scale;
            }
            src.accumulate_grad_owned(gx);
        })
    }

    /// Mean squared error against a constant target tensor.
    pub fn mse_loss(&self, target: &Tensor) -> Tensor {
        assert_eq!(self.shape(), target.shape(), "mse shapes must match");
        self.sub(target).square().mean_all()
    }

    /// Mean binary cross-entropy with logits against 0/1 labels.
    ///
    /// Stable formulation `max(x,0) - x*y + ln(1 + e^{-|x|})`.
    pub fn bce_with_logits(&self, labels: &[f32]) -> Tensor {
        assert_eq!(labels.len(), self.numel(), "one label per logit");
        let x = self.data();
        let n = x.len();
        let mut loss = 0.0f32;
        for (&xi, &yi) in x.iter().zip(labels.iter()) {
            loss += xi.max(0.0) - xi * yi + (1.0 + (-xi.abs()).exp()).ln();
        }
        loss /= n.max(1) as f32;
        drop(x);

        let src = self.clone();
        let labels_owned: Vec<f32> = labels.to_vec();
        Tensor::make_op(Shape::scalar(), vec![loss], vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap()[0];
            let x = src.data();
            let scale = g / x.len().max(1) as f32;
            let mut gx = alloc::buffer(x.len());
            gx.extend(x.iter().zip(labels_owned.iter()).map(|(&xi, &yi)| {
                let sig = 1.0 / (1.0 + (-xi).exp());
                (sig - yi) * scale
            }));
            drop(x);
            src.accumulate_grad_owned(gx);
        })
    }

    /// Mean BPR (Bayesian personalized ranking) loss:
    /// `-mean(ln sigmoid(pos - neg))` over paired score tensors.
    pub fn bpr_loss(&self, neg: &Tensor) -> Tensor {
        assert_eq!(self.shape(), neg.shape(), "bpr shapes must match");
        // -ln σ(d) = softplus(-d); use the composed stable ops.
        self.sub(neg)
            .neg()
            .softplus()
            .mean_all()
    }

    /// Numerically stable softplus `ln(1 + e^x)`.
    pub fn softplus(&self) -> Tensor {
        let mut out = alloc::copy_of(&self.data());
        kernels::map_inplace(&mut out, |x| x.max(0.0) + (1.0 + (-x.abs()).exp()).ln());
        let src = self.clone();
        Tensor::make_op(self.shape().clone(), out, vec![self.clone()], move |out_t| {
            let g_ref = out_t.grad_ref();
            let g = g_ref.as_ref().unwrap();
            let x = src.data();
            let mut gx = alloc::buffer(x.len());
            gx.extend(x.iter().zip(g.iter()).map(|(&xi, &gi)| gi / (1.0 + (-xi).exp())));
            drop(x);
            src.accumulate_grad_owned(gx);
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_slice(&[20.0, 0.0, 0.0], [1, 3]);
        let loss = logits.cross_entropy_logits(&[0]);
        assert!(loss.item() < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros([2, 4]);
        let loss = logits.cross_entropy_logits(&[0, 3]);
        assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_backward_softmax_minus_onehot() {
        let logits = Tensor::zeros([1, 2]).requires_grad();
        logits.cross_entropy_logits(&[1]).backward();
        let g = logits.grad().unwrap();
        assert!((g[0] - 0.5).abs() < 1e-5);
        assert!((g[1] + 0.5).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_rows_sum_zero() {
        let logits =
            Tensor::from_slice(&[0.5, -1.0, 2.0, 0.1, 0.2, 0.3], [2, 3]).requires_grad();
        logits.cross_entropy_logits(&[2, 0]).backward();
        let g = logits.grad().unwrap();
        for row in g.chunks(3) {
            assert!(row.iter().sum::<f32>().abs() < 1e-5);
        }
    }

    #[test]
    fn mse_zero_when_equal() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]);
        assert_eq!(a.mse_loss(&a).item(), 0.0);
    }

    #[test]
    fn mse_grad() {
        let a = Tensor::from_slice(&[3.0], [1]).requires_grad();
        let t = Tensor::from_slice(&[1.0], [1]);
        a.mse_loss(&t).backward();
        // d/da (a - t)^2 = 2(a - t) = 4
        assert!((a.grad().unwrap()[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn bce_known_value() {
        let x = Tensor::from_slice(&[0.0], [1]);
        // σ(0)=0.5 → loss = -ln 0.5
        let loss = x.bce_with_logits(&[1.0]);
        assert!((loss.item() - 0.5f32.ln().abs()).abs() < 1e-5);
    }

    #[test]
    fn bce_stable_for_large_logits() {
        let x = Tensor::from_slice(&[50.0, -50.0], [2]).requires_grad();
        let loss = x.bce_with_logits(&[1.0, 0.0]);
        assert!(loss.item().is_finite());
        assert!(loss.item() < 1e-5);
        loss.backward();
        assert!(x.grad().unwrap().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn softplus_matches_ln1p_exp() {
        let x = Tensor::from_slice(&[-2.0, 0.0, 3.0], [3]);
        let y = x.softplus().to_vec();
        for (xi, yi) in [-2.0f32, 0.0, 3.0].iter().zip(y.iter()) {
            assert!((yi - (1.0 + xi.exp()).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn bpr_prefers_positive() {
        let pos = Tensor::from_slice(&[5.0], [1]);
        let neg = Tensor::from_slice(&[-5.0], [1]);
        assert!(pos.bpr_loss(&neg).item() < 0.01);
        assert!(neg.bpr_loss(&pos).item() > 5.0);
    }
}
