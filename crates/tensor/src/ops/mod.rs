//! Differentiable tensor operations.
//!
//! Each submodule defines forward kernels plus backward closures recorded on
//! the autograd tape. Every op here is covered by a numeric gradient check
//! in `tests/gradcheck.rs` of this crate.

mod binary;
mod dropout;
mod embedding;
mod loss;
mod matmul;
mod norm;
mod reduce;
mod shape_ops;
mod softmax;
mod unary;

pub use dropout::dropout_mask;

use crate::shape::Shape;

/// Reduces a gradient of `out_shape` down to `src_shape` by summing over the
/// axes that were broadcast, returning a buffer of `src_shape.numel()`.
///
/// This is the universal backward rule for broadcasting: every output
/// element that read a given source element contributes its gradient to it.
/// Binary ops inline the equivalent logic for speed; this standalone helper
/// is kept as the reference implementation their tests compare against.
#[allow(dead_code)]
pub(crate) fn reduce_grad_to_shape(grad: &[f32], out_shape: &Shape, src_shape: &Shape) -> Vec<f32> {
    if out_shape == src_shape {
        return grad.to_vec();
    }
    let mut reduced = vec![0.0f32; src_shape.numel()];
    let strides = crate::shape::broadcast_strides(src_shape, out_shape);
    let zero = vec![0usize; out_shape.rank()];
    crate::shape::for_each_broadcast(out_shape, &strides, &zero, |o, s, _| {
        reduced[s] += grad[o];
    });
    reduced
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_grad_identity() {
        let s = Shape::new([2, 2]);
        let g = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(reduce_grad_to_shape(&g, &s, &s), g);
    }

    #[test]
    fn reduce_grad_to_scalar() {
        let out = Shape::new([2, 2]);
        let src = Shape::scalar();
        let g = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(reduce_grad_to_shape(&g, &out, &src), vec![10.0]);
    }

    #[test]
    fn reduce_grad_trailing_bias() {
        let out = Shape::new([2, 3]);
        let src = Shape::new([3]);
        let g = vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        assert_eq!(reduce_grad_to_shape(&g, &out, &src), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn reduce_grad_middle_axis() {
        let out = Shape::new([2, 2, 2]);
        let src = Shape::new([2, 1, 2]);
        let g: Vec<f32> = (1..=8).map(|x| x as f32).collect();
        // Sum over axis 1: [[1+3, 2+4]], [[5+7, 6+8]]
        assert_eq!(
            reduce_grad_to_shape(&g, &out, &src),
            vec![4.0, 6.0, 12.0, 14.0]
        );
    }
}
