//! Persistent worker pool shared by all compute kernels.
//!
//! The previous design spawned OS threads per GEMM call via
//! `std::thread::scope`, paying thread creation cost (tens of microseconds)
//! on every op. This pool spawns its workers once, on first use, and
//! broadcasts jobs to them through a `Mutex`/`Condvar` pair; work inside a
//! job is claimed chunk-by-chunk from an atomic counter so uneven chunks
//! load-balance automatically.
//!
//! Sizing: `MBSSL_THREADS` (if set, ≥1) overrides
//! `std::thread::available_parallelism()`. A size of 1 disables the pool —
//! every `run` executes inline on the caller.
//!
//! Nesting: jobs executed by a pool thread (or by the caller while it
//! participates in a job) run nested `run` calls inline on the current
//! thread. Outer-level parallelism (e.g. parallel evaluation) therefore
//! subsumes kernel-level parallelism without deadlock or oversubscription.
//!
//! Determinism: the pool only distributes *which thread* computes a chunk;
//! every chunk's arithmetic is identical to the sequential code, and no
//! kernel in this crate reduces across chunks in claim order, so results are
//! bit-identical for any pool size.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use mbssl_telemetry as telemetry;

/// Occupancy counters (always on — one relaxed add per job, negligible
/// next to a broadcast): jobs that went through the broadcast path, jobs
/// that ran inline instead (pool of one, single chunk, nesting, contended
/// submission), and total chunks distributed by broadcast jobs. Published
/// to telemetry flushes as `pool.*` gauges via [`telemetry_collector`].
static JOBS_PARALLEL: AtomicU64 = AtomicU64::new(0);
static JOBS_INLINE: AtomicU64 = AtomicU64::new(0);
static CHUNKS_DISTRIBUTED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool occupancy counters: `(jobs broadcast, jobs run
/// inline, chunks distributed)`, cumulative since process start. The same
/// numbers the `pool.*` telemetry gauges publish, exposed directly so the
/// run ledger can record them without a telemetry drain.
pub fn stats() -> (u64, u64, u64) {
    (
        JOBS_PARALLEL.load(Ordering::Relaxed),
        JOBS_INLINE.load(Ordering::Relaxed),
        CHUNKS_DISTRIBUTED.load(Ordering::Relaxed),
    )
}

/// Gauge snapshot of the pool occupancy counters for `mbssl-telemetry`.
fn telemetry_collector() -> Vec<(&'static str, u64)> {
    vec![
        ("pool.jobs", JOBS_PARALLEL.load(Ordering::Relaxed)),
        ("pool.jobs_inline", JOBS_INLINE.load(Ordering::Relaxed)),
        ("pool.chunks", CHUNKS_DISTRIBUTED.load(Ordering::Relaxed)),
        ("pool.threads", global().size as u64),
    ]
}

thread_local! {
    /// True while the current thread is executing chunks of a pool job.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// A broadcast job: type-erased closure plus its chunk count.
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    chunks: usize,
}

struct State {
    /// Bumped once per job; workers block until it moves past what they saw.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current job.
    active: usize,
}

struct Inner {
    state: Mutex<State>,
    job_ready: Condvar,
    job_done: Condvar,
    next_chunk: AtomicUsize,
    panicked: AtomicBool,
}

/// The persistent worker pool: spawned once, jobs broadcast to all workers
/// (see module docs). Use the process-wide instance via [`global`] /
/// [`parallel_for`] rather than constructing one per call site.
pub struct ThreadPool {
    inner: Arc<Inner>,
    /// Total workers including the submitting caller.
    size: usize,
    /// Serializes job submission; a contended caller falls back to inline.
    submit: Mutex<()>,
}

fn configured_size() -> usize {
    if let Ok(v) = std::env::var("MBSSL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide pool, created on first use.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        telemetry::register_collector(telemetry_collector);
        ThreadPool::new(configured_size())
    })
}

/// Number of threads (callers + workers) the global pool uses.
pub fn threads() -> usize {
    global().size
}

/// Runs `f(i)` for every `i in 0..chunks`, distributing chunks across the
/// global pool. Blocks until all chunks are done. See [`ThreadPool::run`].
pub fn parallel_for(chunks: usize, f: impl Fn(usize) + Sync) {
    global().run(chunks, &f);
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and runs `f(chunk_index, chunk)` for each across the
/// global pool.
pub fn parallel_chunks_mut(
    data: &mut [f32],
    chunk_len: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if data.is_empty() || chunk_len == 0 {
        return;
    }
    let total = data.len();
    let chunks = total.div_ceil(chunk_len);
    // Chunks are disjoint [i*chunk_len, i*chunk_len+len) windows, so handing
    // each claimed index its own slice view of `data` cannot alias.
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(chunks, move |i| {
        // Bind the wrapper itself: edition-2021 disjoint capture would
        // otherwise capture the bare `*mut f32` field, which is not `Sync`.
        let base = base;
        let start = i * chunk_len;
        let len = chunk_len.min(total - start);
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
        f(i, chunk);
    });
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// Safety: only used to carve disjoint subslices, one per chunk index.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl ThreadPool {
    fn new(size: usize) -> ThreadPool {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            next_chunk: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        // The caller participates in every job, so spawn size-1 workers.
        for _ in 1..size {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("mbssl-pool".into())
                .spawn(move || worker_loop(&inner))
                .expect("failed to spawn pool worker");
        }
        ThreadPool {
            inner,
            size,
            submit: Mutex::new(()),
        }
    }

    /// Total threads participating in jobs (workers + the submitting
    /// caller).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f(i)` for every `i in 0..chunks` across the pool, blocking
    /// until all chunks complete. Falls back to an inline sequential loop
    /// when the pool has one thread, when called from inside another pool
    /// job (nesting), or when another thread is mid-submission.
    pub fn run(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if self.size <= 1 || chunks == 1 || IN_POOL_JOB.with(|c| c.get()) {
            JOBS_INLINE.fetch_add(1, Ordering::Relaxed);
            for i in 0..chunks {
                f(i);
            }
            return;
        }
        let Ok(_guard) = self.submit.try_lock() else {
            JOBS_INLINE.fetch_add(1, Ordering::Relaxed);
            for i in 0..chunks {
                f(i);
            }
            return;
        };
        JOBS_PARALLEL.fetch_add(1, Ordering::Relaxed);
        CHUNKS_DISTRIBUTED.fetch_add(chunks as u64, Ordering::Relaxed);
        let _sp = telemetry::span("pool.job");

        // Safety: workers only dereference the job closure between the
        // broadcast below and the `active == 0` handshake at the end of this
        // function, during which the caller's frame (and thus `f`'s
        // borrows) is pinned.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };

        self.inner.panicked.store(false, Ordering::Relaxed);
        self.inner.next_chunk.store(0, Ordering::Relaxed);
        {
            let mut st = self.inner.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(Job {
                f: f_static,
                chunks,
            });
            st.active = self.size - 1;
            self.inner.job_ready.notify_all();
        }

        // The caller claims chunks alongside the workers.
        IN_POOL_JOB.with(|c| c.set(true));
        run_chunks(&self.inner, f_static, chunks);
        IN_POOL_JOB.with(|c| c.set(false));

        let mut st = self.inner.state.lock().unwrap();
        while st.active > 0 {
            st = self.inner.job_done.wait(st).unwrap();
        }
        st.job = None;
        drop(st);

        if self.inner.panicked.load(Ordering::Relaxed) {
            panic!("mbssl-pool: a worker panicked while executing a parallel job");
        }
    }
}

/// Claims and executes chunks until the job's counter is exhausted.
fn run_chunks(inner: &Inner, f: &(dyn Fn(usize) + Sync), chunks: usize) {
    loop {
        let i = inner.next_chunk.fetch_add(1, Ordering::Relaxed);
        if i >= chunks {
            break;
        }
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            inner.panicked.store(true, Ordering::Relaxed);
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            while st.epoch == seen_epoch || st.job.is_none() {
                st = inner.job_ready.wait(st).unwrap();
            }
            seen_epoch = st.epoch;
            st.job.unwrap()
        };
        IN_POOL_JOB.with(|c| c.set(true));
        run_chunks(inner, job.f, job.chunks);
        IN_POOL_JOB.with(|c| c.set(false));
        let mut st = inner.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            inner.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_chunk_exactly_once() {
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunked_writes_fill_buffer() {
        let mut data = vec![0.0f32; 10_007];
        parallel_chunks_mut(&mut data, 97, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 97 + j) as f32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn nested_runs_execute_inline() {
        let count = AtomicUsize::new(0);
        parallel_for(8, |_| {
            // Nested job: must run inline without deadlocking the pool.
            parallel_for(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn sequential_results_match_parallel() {
        let n = 4096;
        let mut par = vec![0.0f32; n];
        parallel_chunks_mut(&mut par, 61, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                let i = ci * 61 + j;
                *v = (i as f32).sin() * 0.5 + (i as f32).cos();
            }
        });
        let seq: Vec<f32> = (0..n)
            .map(|i| (i as f32).sin() * 0.5 + (i as f32).cos())
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn back_to_back_jobs_reuse_workers() {
        for round in 0..50 {
            let total = AtomicUsize::new(0);
            parallel_for(round % 7 + 2, |i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
            let chunks = round % 7 + 2;
            assert_eq!(total.load(Ordering::Relaxed), chunks * (chunks + 1) / 2);
        }
    }
}
