//! Reverse-mode automatic differentiation.
//!
//! The tape is implicit: every op output stores its parents and a backward
//! closure (see [`crate::tensor`]). `backward` walks the graph once in
//! reverse topological order so each node's gradient is complete before the
//! node distributes it to its parents — this is what makes gradient
//! accumulation correct for nodes consumed by several downstream ops.

use std::cell::Cell;
use std::collections::HashSet;

use crate::tensor::Tensor;

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Whether op outputs currently record autograd history.
#[inline]
pub fn is_grad_enabled() -> bool {
    GRAD_ENABLED.with(|c| c.get())
}

/// Runs `f` with gradient recording disabled (evaluation / inference mode).
/// Restores the previous mode afterwards, even on panic.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            GRAD_ENABLED.with(|c| c.set(self.0));
        }
    }
    let prev = GRAD_ENABLED.with(|c| c.replace(false));
    let _guard = Guard(prev);
    f()
}

/// Reverse topological order of the subgraph reachable from `root`,
/// restricted to tracked nodes. Iterative DFS (training graphs for long
/// sequences can be thousands of nodes deep through a GRU).
fn topo_order(root: &Tensor) -> Vec<Tensor> {
    let mut order: Vec<Tensor> = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    // Stack frames: (node, next-parent-index-to-visit).
    let mut stack: Vec<(Tensor, usize)> = vec![(root.clone(), 0)];
    visited.insert(root.id());
    while let Some((node, pi)) = stack.pop() {
        let parents = node.parents();
        if pi < parents.len() {
            let parent = parents[pi].clone();
            stack.push((node, pi + 1));
            if parent.is_tracked() && !visited.contains(&parent.id()) {
                visited.insert(parent.id());
                stack.push((parent, 0));
            }
        } else {
            order.push(node);
        }
    }
    order
}

/// Runs the backward pass from `root` seeded with `seed`.
pub(crate) fn backward(root: &Tensor, seed: Vec<f32>) {
    if !root.is_tracked() {
        return;
    }
    root.seed_grad(seed);
    let order = topo_order(root);
    // `order` is post-order (parents before children); reverse for the
    // backward sweep so consumers run before producers.
    for node in order.iter().rev() {
        node.run_backward();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_grad_disables_and_restores() {
        assert!(is_grad_enabled());
        no_grad(|| {
            assert!(!is_grad_enabled());
            no_grad(|| assert!(!is_grad_enabled()));
            assert!(!is_grad_enabled());
        });
        assert!(is_grad_enabled());
    }

    #[test]
    fn no_grad_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            no_grad(|| panic!("boom"));
        });
        assert!(result.is_err());
        assert!(is_grad_enabled());
    }

    #[test]
    fn backward_on_untracked_is_noop() {
        let t = Tensor::scalar(1.0);
        t.backward(); // must not panic
        assert!(t.grad().is_none());
    }
}
