//! Parameter checkpointing.
//!
//! A checkpoint is a versioned binary file:
//! ```text
//! magic "MBSL" | u32 version | u32 n_entries
//! per entry: u32 name_len | name bytes | u32 rank | u64 dims.. | f32 data..
//! ```
//! All integers little-endian. The format intentionally stores names, so a
//! checkpoint can be loaded into a freshly constructed model by matching
//! the [`crate::nn::ParamMap`] names — no positional coupling.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::nn::ParamMap;
use crate::shape::Shape;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"MBSL";
const VERSION: u32 = 1;

/// Errors arising from checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying read/write failure.
    Io(io::Error),
    /// File does not start with the `MBSL` magic bytes.
    BadMagic,
    /// File uses a format version this build cannot read.
    BadVersion(u32),
    /// Structurally invalid file (truncation, bad counts, non-UTF-8 names).
    Corrupt(String),
    /// Checkpoint lacks a parameter the model requires.
    MissingParam(String),
    /// Stored tensor shape disagrees with the model's parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape the model declares.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        found: Vec<usize>,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not an mbssl checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::MissingParam(name) => {
                write!(f, "checkpoint has no entry for parameter {name}")
            }
            CheckpointError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "parameter {name} shape mismatch: model {expected:?}, checkpoint {found:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes every parameter in `params` to `writer`.
pub fn save_params<W: Write>(params: &ParamMap, writer: &mut W) -> Result<(), CheckpointError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(params.len() as u32).to_le_bytes())?;
    for (name, tensor) in params.iter() {
        let name_bytes = name.as_bytes();
        writer.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        writer.write_all(name_bytes)?;
        let dims = tensor.dims();
        writer.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            writer.write_all(&(d as u64).to_le_bytes())?;
        }
        let data = tensor.data();
        let mut buf = Vec::with_capacity(data.len() * 4);
        for &v in data.iter() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Saves to a file path.
pub fn save_params_to_file(params: &ParamMap, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    save_params(params, &mut file)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, CheckpointError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Reads all entries of a checkpoint into a name → tensor map.
pub fn read_checkpoint<R: Read>(reader: &mut R) -> Result<HashMap<String, Tensor>, CheckpointError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u32(reader)?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let n = read_u32(reader)? as usize;
    let mut entries = HashMap::with_capacity(n);
    for _ in 0..n {
        let name_len = read_u32(reader)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible name length {name_len}"
            )));
        }
        let mut name_buf = vec![0u8; name_len];
        reader.read_exact(&mut name_buf)?;
        let name = String::from_utf8(name_buf)
            .map_err(|_| CheckpointError::Corrupt("non-utf8 name".into()))?;
        let rank = read_u32(reader)? as usize;
        if rank > 16 {
            return Err(CheckpointError::Corrupt(format!("implausible rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(reader)? as usize);
        }
        let shape = Shape::new(dims);
        let numel = shape.numel();
        let mut data = vec![0.0f32; numel];
        let mut buf = vec![0u8; numel * 4];
        reader.read_exact(&mut buf)?;
        for (i, chunk) in buf.chunks_exact(4).enumerate() {
            data[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        entries.insert(name, Tensor::from_vec(data, shape));
    }
    Ok(entries)
}

/// Loads checkpoint values into an existing parameter map, in place.
/// Every model parameter must be present with a matching shape.
pub fn load_params<R: Read>(params: &ParamMap, reader: &mut R) -> Result<(), CheckpointError> {
    let entries = read_checkpoint(reader)?;
    for (name, tensor) in params.iter() {
        let loaded = entries
            .get(name)
            .ok_or_else(|| CheckpointError::MissingParam(name.to_string()))?;
        if loaded.dims() != tensor.dims() {
            return Err(CheckpointError::ShapeMismatch {
                name: name.to_string(),
                expected: tensor.dims().to_vec(),
                found: loaded.dims().to_vec(),
            });
        }
        tensor.data_mut().copy_from_slice(&loaded.data());
    }
    Ok(())
}

/// Loads from a file path.
pub fn load_params_from_file(params: &ParamMap, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    load_params(params, &mut file)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> ParamMap {
        let mut map = ParamMap::new();
        map.insert("w", Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad());
        map.insert("b", Tensor::from_slice(&[-1.0, 0.5], [2]).requires_grad());
        map
    }

    #[test]
    fn roundtrip_preserves_values() {
        let params = sample_params();
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();

        let mut fresh = ParamMap::new();
        fresh.insert("w", Tensor::zeros([2, 2]).requires_grad());
        fresh.insert("b", Tensor::zeros([2]).requires_grad());
        load_params(&fresh, &mut buf.as_slice()).unwrap();
        assert_eq!(fresh.get("w").unwrap().to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(fresh.get("b").unwrap().to_vec(), vec![-1.0, 0.5]);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = read_checkpoint(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn missing_param_rejected() {
        let params = sample_params();
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();

        let mut other = ParamMap::new();
        other.insert("unknown", Tensor::zeros([1]));
        let err = load_params(&other, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::MissingParam(_)));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let params = sample_params();
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();

        let mut other = ParamMap::new();
        other.insert("w", Tensor::zeros([4]));
        other.insert("b", Tensor::zeros([2]));
        let err = load_params(&other, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }));
    }

    #[test]
    fn truncated_file_is_corrupt_or_io() {
        let params = sample_params();
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let fresh = sample_params();
        assert!(load_params(&fresh, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mbssl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.bin");
        let params = sample_params();
        save_params_to_file(&params, &path).unwrap();
        let fresh = sample_params();
        fresh.get("w").unwrap().data_mut().fill(0.0);
        load_params_from_file(&fresh, &path).unwrap();
        assert_eq!(fresh.get("w").unwrap().to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        std::fs::remove_file(&path).ok();
    }
}
