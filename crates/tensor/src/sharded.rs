//! Sharded scatter-add for the embedding-gradient hot path.
//!
//! The embedding backward owns the largest gradient buffer in the system —
//! `[V, D]` over the whole catalog — and at substrate scale (DESIGN.md §16)
//! V reaches the tens of thousands while each batch touches a few thousand
//! rows. The reference implementation walks the batch ids sequentially and
//! scatter-adds into the dense buffer on one thread.
//!
//! This module splits the row space `0..V` into `pool::threads()` contiguous
//! shards, each guarded by its own `Mutex`, and scatter-adds all shards in
//! parallel on the worker pool: shard `s` scans the full id list and applies
//! only the updates whose destination row it owns. Scanning ids `S` times
//! costs `S·N` index compares but removes every write conflict without
//! atomics — and, critically, preserves **per-destination add order**: all
//! updates to a given row live in exactly one shard and are applied in
//! original id order there, so the result is bit-for-bit identical to the
//! sequential reference for any shard count (f32 addition is order-
//! sensitive; per-element order is what matters, and it never changes).
//!
//! Today each shard is visited by exactly one pool chunk, so the per-shard
//! locks are uncontended (one uncontended lock per shard per backward).
//! They are kept deliberately: the lock is the shard's write contract, the
//! thing that makes hogwild-style concurrent writers (incremental serving
//! updates, ROADMAP item 5a) a local change instead of a redesign.
//!
//! Escape hatch: `MBSSL_SHARD_EMB=off` (or `0` / `none`) pins the
//! sequential reference, mirroring `MBSSL_FUSED` / `MBSSL_ALLOC`. Parity is
//! proptest-pinned in `tests/shard_parity.rs` at pool sizes 1/2/default.

use std::sync::{Mutex, OnceLock};

use crate::pool;

/// Whether the sharded scatter-add is active. Defaults to on;
/// `MBSSL_SHARD_EMB=off` (or `0` / `none`) routes embedding backwards
/// through the sequential reference. Read once and cached.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("MBSSL_SHARD_EMB").as_deref(),
            Ok("off") | Ok("0") | Ok("none")
        )
    })
}

/// Minimum id-list length before sharding pays for the extra id scans.
/// Below this the dispatcher uses the reference loop. Purely a scheduling
/// threshold — results are bit-identical either way.
pub const MIN_IDS: usize = 256;

/// Sequential reference: for each `k`, adds `grad[k*d..][..d]` into row
/// `ids[k]` of the `[V, D]` buffer `gw`, in id order.
pub fn scatter_add_reference(gw: &mut [f32], d: usize, ids: &[usize], grad: &[f32]) {
    debug_assert_eq!(grad.len(), ids.len() * d);
    for (k, &id) in ids.iter().enumerate() {
        let dst = &mut gw[id * d..(id + 1) * d];
        let src = &grad[k * d..(k + 1) * d];
        for (dv, &sv) in dst.iter_mut().zip(src.iter()) {
            *dv += sv;
        }
    }
}

/// Sharded scatter-add: row space split into per-`Mutex` contiguous shards,
/// one pool chunk per shard, each applying only its own rows' updates (in
/// id order). Bit-for-bit identical to [`scatter_add_reference`] for any
/// pool size — see the module docs for the ordering argument.
pub fn scatter_add_sharded(gw: &mut [f32], d: usize, ids: &[usize], grad: &[f32]) {
    let rows = if d == 0 { 0 } else { gw.len() / d };
    let shards = pool::threads().min(rows).max(1);
    scatter_add_sharded_with(gw, d, ids, grad, shards);
}

/// [`scatter_add_sharded`] with an explicit shard count (the public entry
/// derives it from the pool size). With `rows_per_shard =
/// rows.div_ceil(shards)`, the last shards can own an *empty* row range —
/// e.g. `rows = 50, shards = 16` gives 4 rows per shard, which covers the
/// row space by shard 13 — so both bounds are clamped to `rows`; trailing
/// shards degenerate to empty slices and scan no ids. Exposed so parity
/// tests can pin shard counts independent of `MBSSL_THREADS`.
pub fn scatter_add_sharded_with(
    gw: &mut [f32],
    d: usize,
    ids: &[usize],
    grad: &[f32],
    shards: usize,
) {
    debug_assert_eq!(grad.len(), ids.len() * d);
    debug_assert!(shards >= 1);
    if d == 0 || ids.is_empty() {
        return;
    }
    let rows = gw.len() / d;
    let rows_per_shard = rows.div_ceil(shards);
    let mut guarded: Vec<Mutex<&mut [f32]>> = Vec::with_capacity(shards);
    let mut rest: &mut [f32] = gw;
    for s in 0..shards {
        let lo = (s * rows_per_shard).min(rows);
        let hi = ((s + 1) * rows_per_shard).min(rows);
        let (head, tail) = rest.split_at_mut((hi - lo) * d);
        guarded.push(Mutex::new(head));
        rest = tail;
    }
    pool::parallel_for(shards, |s| {
        let lo = (s * rows_per_shard).min(rows);
        let hi = ((s + 1) * rows_per_shard).min(rows);
        let mut shard = guarded[s].lock().unwrap();
        for (k, &id) in ids.iter().enumerate() {
            if id >= lo && id < hi {
                let dst = &mut shard[(id - lo) * d..(id - lo + 1) * d];
                let src = &grad[k * d..(k + 1) * d];
                for (dv, &sv) in dst.iter_mut().zip(src.iter()) {
                    *dv += sv;
                }
            }
        }
    });
}

/// Dispatch used by the embedding backward: the sharded path when enabled,
/// the pool has parallelism, and the batch is large enough to amortize the
/// per-shard id scans; the sequential reference otherwise.
pub fn scatter_add(gw: &mut [f32], d: usize, ids: &[usize], grad: &[f32]) {
    let rows = if d == 0 { 0 } else { gw.len() / d };
    if enabled() && pool::threads() > 1 && ids.len() >= MIN_IDS && rows >= 2 * pool::threads() {
        scatter_add_sharded(gw, d, ids, grad);
    } else {
        scatter_add_reference(gw, d, ids, grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_matches_reference_bitwise() {
        let v = 37;
        let d = 5;
        let ids: Vec<usize> = (0..400).map(|k| (k * 7 + 3) % v).collect();
        let grad: Vec<f32> = (0..ids.len() * d)
            .map(|i| ((i as f32) * 0.37).sin() * 1.7)
            .collect();
        let mut a = vec![0.0f32; v * d];
        let mut b = vec![0.0f32; v * d];
        scatter_add_reference(&mut a, d, &ids, &grad);
        scatter_add_sharded(&mut b, d, &ids, &grad);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shard_count_exceeding_row_coverage_is_safe_and_bitwise() {
        // REVIEW.md repro: rows = 50, shards = 16 → rows_per_shard = 4
        // covers the row space by shard 13, so shards 13..16 own empty
        // ranges; unclamped bounds underflowed in split_at_mut. Also pin
        // shard counts above sqrt(rows) and the shards == rows edge.
        for (rows, shards) in [(50usize, 16usize), (37, 16), (5, 4), (3, 3), (1, 1)] {
            let d = 5;
            let ids: Vec<usize> = (0..400).map(|k| (k * 7 + 3) % rows).collect();
            let grad: Vec<f32> = (0..ids.len() * d)
                .map(|i| ((i as f32) * 0.37).sin() * 1.7)
                .collect();
            let mut a = vec![0.0f32; rows * d];
            let mut b = vec![0.0f32; rows * d];
            scatter_add_reference(&mut a, d, &ids, &grad);
            scatter_add_sharded_with(&mut b, d, &ids, &grad, shards);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "rows={rows} shards={shards}"
            );
        }
    }

    #[test]
    fn empty_and_degenerate_inputs_are_noops() {
        let mut gw = vec![0.0f32; 12];
        scatter_add_sharded(&mut gw, 3, &[], &[]);
        scatter_add(&mut gw, 3, &[], &[]);
        assert!(gw.iter().all(|&x| x == 0.0));
    }
}
