//! The [`Tensor`] type: dense, contiguous, row-major f32 storage with an
//! optional autograd tape.
//!
//! A tensor is a cheaply clonable handle (`Arc`) to a graph node. Leaf
//! nodes hold parameters or inputs; interior nodes additionally record
//! their parents and a backward closure. Graphs are acyclic by construction
//! (operations only ever create new outputs), so plain `Arc` cannot leak.
//!
//! Tensors are `Send + Sync`: buffers sit behind `RwLock`s, so read-only
//! forward passes over shared parameters (e.g. parallel evaluation in
//! `mbssl-core`) can run from many threads at once. Each training step
//! still builds and consumes one tape on one thread — the locks make
//! concurrent *reads* safe and cheap, not concurrent graph mutation —
//! while the heavy kernels underneath ([`crate::kernels`]) parallelize
//! across the worker pool ([`crate::pool`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::alloc;
use crate::autograd;
use crate::shape::Shape;

/// Process-wide id source: ids must be unique across threads because
/// `autograd::topo_order` keys visited nodes by id.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Backward closure: receives the output node, reads its gradient, and
/// accumulates into the parents it captured. `Send + Sync` so tensors
/// (and thus whole recorded graphs) can cross thread boundaries.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) + Send + Sync>;

pub(crate) struct Inner {
    id: u64,
    shape: Shape,
    data: RwLock<Vec<f32>>,
    grad: RwLock<Option<Vec<f32>>>,
    requires_grad: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Return this node's storage to the recycling allocator. A training
        // step drops its whole tape here once the loss is consumed, so this
        // is the path by which op outputs and gradient buffers come back
        // for the next step.
        if let Ok(data) = self.data.get_mut() {
            alloc::recycle(std::mem::take(data));
        }
        if let Ok(grad) = self.grad.get_mut() {
            if let Some(g) = grad.take() {
                alloc::recycle(g);
            }
        }
    }
}

/// A dense f32 tensor participating in a dynamic autograd graph.
#[derive(Clone)]
pub struct Tensor {
    inner: Arc<Inner>,
}

impl Tensor {
    // ---------------------------------------------------------------
    // Construction
    // ---------------------------------------------------------------

    /// Creates a leaf tensor from raw data.
    ///
    /// # Panics
    /// Panics when `data.len() != shape.numel()`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor {
            inner: Arc::new(Inner {
                id: next_id(),
                shape,
                data: RwLock::new(data),
                grad: RwLock::new(None),
                requires_grad: false,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Creates a leaf tensor from a slice.
    pub fn from_slice(data: &[f32], shape: impl Into<Shape>) -> Tensor {
        Tensor::from_vec(alloc::copy_of(data), shape)
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        Tensor::from_vec(alloc::zeroed(n), shape)
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        Tensor::from_vec(alloc::filled(n, value), shape)
    }

    /// Rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::from_vec(vec![value], Shape::scalar())
    }

    /// Marks this leaf as a trainable parameter. Must be called before the
    /// tensor is used in any operation.
    ///
    /// # Panics
    /// Panics when called on a non-leaf (derived) tensor.
    pub fn requires_grad(self) -> Tensor {
        assert!(
            self.inner.parents.is_empty() && self.inner.backward.is_none(),
            "requires_grad() must be applied to leaf tensors"
        );
        // The Arc is fresh from a constructor in the intended usage, but be
        // defensive: rebuild if shared.
        match Arc::try_unwrap(self.inner) {
            Ok(mut inner) => {
                inner.requires_grad = true;
                Tensor {
                    inner: Arc::new(inner),
                }
            }
            Err(arc) => Tensor {
                inner: Arc::new(Inner {
                    id: arc.id,
                    shape: arc.shape.clone(),
                    data: RwLock::new(alloc::copy_of(&arc.data.read().unwrap())),
                    grad: RwLock::new(None),
                    requires_grad: true,
                    parents: Vec::new(),
                    backward: None,
                }),
            },
        }
    }

    /// Internal constructor for op outputs: records parents and the
    /// backward closure only when grad mode is on and some parent is
    /// tracked.
    pub(crate) fn make_op(
        shape: Shape,
        data: Vec<f32>,
        parents: Vec<Tensor>,
        backward: impl Fn(&Tensor) + Send + Sync + 'static,
    ) -> Tensor {
        assert_eq!(data.len(), shape.numel(), "op produced wrong element count");
        let track = autograd::is_grad_enabled() && parents.iter().any(|p| p.is_tracked());
        Tensor {
            inner: Arc::new(Inner {
                id: next_id(),
                shape,
                data: RwLock::new(data),
                grad: RwLock::new(None),
                requires_grad: track,
                parents: if track { parents } else { Vec::new() },
                backward: if track { Some(Box::new(backward)) } else { None },
            }),
        }
    }

    // ---------------------------------------------------------------
    // Introspection
    // ---------------------------------------------------------------

    /// Unique node id (stable for the life of the tensor).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    /// Dimension sizes, shorthand for `shape().dims()`.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.inner.shape.dims()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.inner.shape.numel()
    }

    /// Whether this node participates in gradient computation (either a
    /// parameter leaf or derived from one under grad mode).
    #[inline]
    pub fn is_tracked(&self) -> bool {
        self.inner.requires_grad
    }

    /// Whether this is a leaf node (no recorded parents).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.inner.backward.is_none()
    }

    // ---------------------------------------------------------------
    // Data access
    // ---------------------------------------------------------------

    /// Immutable view of the underlying buffer. Concurrent readers (e.g.
    /// parallel evaluation threads sharing parameters) do not block each
    /// other.
    pub fn data(&self) -> RwLockReadGuard<'_, Vec<f32>> {
        self.inner.data.read().unwrap()
    }

    /// Mutable view of the underlying buffer. Intended for optimizers and
    /// initialization; mutating an interior node invalidates its tape.
    pub fn data_mut(&self) -> RwLockWriteGuard<'_, Vec<f32>> {
        self.inner.data.write().unwrap()
    }

    /// Copies the buffer out (into recycled storage when available).
    pub fn to_vec(&self) -> Vec<f32> {
        alloc::copy_of(&self.inner.data.read().unwrap())
    }

    /// Consumes this handle and returns the owned storage when the tensor
    /// is untracked and uniquely owned — the in-place fast path for
    /// elementwise chains under `no_grad`. Returns the handle unchanged
    /// when it is tracked or shared (the caller falls back to the
    /// allocating path). Sound because the only handle to the buffer is
    /// the one being consumed: no other owner can observe the mutation.
    pub(crate) fn try_take_data(self) -> Result<(Shape, Vec<f32>), Tensor> {
        if self.inner.requires_grad {
            return Err(self);
        }
        match Arc::try_unwrap(self.inner) {
            Ok(mut inner) => {
                let data = std::mem::take(inner.data.get_mut().unwrap());
                Ok((inner.shape.clone(), data))
            }
            Err(arc) => Err(Tensor { inner: arc }),
        }
    }

    /// Extracts the single element of a scalar (or one-element) tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f32 {
        let data = self.inner.data.read().unwrap();
        assert_eq!(data.len(), 1, "item() requires a single-element tensor");
        data[0]
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        let off = self.inner.shape.ravel(index);
        self.inner.data.read().unwrap()[off]
    }

    /// A new leaf tensor with a copy of this tensor's data and no history
    /// (stop-gradient).
    pub fn detach(&self) -> Tensor {
        Tensor::from_vec(self.to_vec(), self.inner.shape.clone())
    }

    // ---------------------------------------------------------------
    // Gradients
    // ---------------------------------------------------------------

    /// Clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.inner.grad.read().unwrap().clone()
    }

    /// Borrow of the accumulated gradient.
    pub(crate) fn grad_ref(&self) -> RwLockReadGuard<'_, Option<Vec<f32>>> {
        self.inner.grad.read().unwrap()
    }

    /// Clears the gradient buffer (recycling its storage).
    pub fn zero_grad(&self) {
        if let Some(g) = self.inner.grad.write().unwrap().take() {
            alloc::recycle(g);
        }
    }

    /// Adds `delta` into this tensor's gradient buffer (allocating it on
    /// first use). No-op for untracked tensors.
    pub fn accumulate_grad(&self, delta: &[f32]) {
        if !self.inner.requires_grad {
            return;
        }
        debug_assert_eq!(delta.len(), self.numel(), "gradient shape mismatch");
        let mut grad = self.inner.grad.write().unwrap();
        match grad.as_mut() {
            Some(g) => crate::kernels::axpy(1.0, delta, g),
            None => *grad = Some(alloc::copy_of(delta)),
        }
    }

    /// Like [`Tensor::accumulate_grad`] but takes ownership of `delta`:
    /// on first accumulation the buffer is adopted outright (no copy),
    /// otherwise it is added in and recycled. Untracked tensors recycle the
    /// buffer immediately.
    pub fn accumulate_grad_owned(&self, delta: Vec<f32>) {
        if !self.inner.requires_grad {
            alloc::recycle(delta);
            return;
        }
        debug_assert_eq!(delta.len(), self.numel(), "gradient shape mismatch");
        let mut grad = self.inner.grad.write().unwrap();
        match grad.as_mut() {
            Some(g) => {
                crate::kernels::axpy(1.0, &delta, g);
                drop(grad);
                alloc::recycle(delta);
            }
            None => *grad = Some(delta),
        }
    }

    /// Multiplies the accumulated gradient in place. No-op when no gradient
    /// is present. Used by gradient clipping so it need not rebuild the
    /// buffer.
    pub fn scale_grad(&self, scale: f32) {
        if let Some(g) = self.inner.grad.write().unwrap().as_mut() {
            for v in g.iter_mut() {
                *v *= scale;
            }
        }
    }

    /// Seeds this tensor's gradient with `seed` (used by `backward`).
    pub(crate) fn seed_grad(&self, seed: Vec<f32>) {
        if let Some(old) = self.inner.grad.write().unwrap().replace(seed) {
            alloc::recycle(old);
        }
    }

    /// Runs reverse-mode differentiation from this (scalar) tensor,
    /// accumulating gradients into every tracked ancestor.
    ///
    /// # Panics
    /// Panics when the tensor is not a scalar; use
    /// [`Tensor::backward_with`] to seed arbitrary shapes.
    pub fn backward(&self) {
        assert_eq!(
            self.numel(),
            1,
            "backward() requires a scalar loss; got shape {}",
            self.shape()
        );
        autograd::backward(self, vec![1.0]);
    }

    /// Runs reverse-mode differentiation with an explicit output gradient.
    pub fn backward_with(&self, seed: Vec<f32>) {
        assert_eq!(seed.len(), self.numel(), "seed gradient shape mismatch");
        autograd::backward(self, seed);
    }

    pub(crate) fn parents(&self) -> &[Tensor] {
        &self.inner.parents
    }

    pub(crate) fn run_backward(&self) {
        if let Some(f) = &self.inner.backward {
            f(self);
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.inner.data.read().unwrap();
        let preview: Vec<f32> = data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(id={}, shape={}, grad={}, data≈{:?}{})",
            self.inner.id,
            self.inner.shape,
            self.inner.requires_grad,
            preview,
            if data.len() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.numel(), 4);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_len_mismatch_panics() {
        Tensor::from_vec(vec![1.0], [2, 2]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros([3]).to_vec(), vec![0.0; 3]);
        assert_eq!(Tensor::ones([2]).to_vec(), vec![1.0; 2]);
        assert_eq!(Tensor::full([2], 7.0).to_vec(), vec![7.0; 2]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "single-element")]
    fn item_rejects_vectors() {
        Tensor::ones([2]).item();
    }

    #[test]
    fn requires_grad_marks_leaf() {
        let t = Tensor::zeros([2]).requires_grad();
        assert!(t.is_tracked());
        assert!(t.is_leaf());
    }

    #[test]
    fn detach_drops_tracking() {
        let t = Tensor::zeros([2]).requires_grad();
        let d = t.detach();
        assert!(!d.is_tracked());
        assert_eq!(d.to_vec(), t.to_vec());
    }

    #[test]
    fn accumulate_grad_adds() {
        let t = Tensor::zeros([2]).requires_grad();
        t.accumulate_grad(&[1.0, 2.0]);
        t.accumulate_grad(&[0.5, 0.5]);
        assert_eq!(t.grad().unwrap(), vec![1.5, 2.5]);
        t.zero_grad();
        assert!(t.grad().is_none());
    }

    #[test]
    fn accumulate_grad_ignored_for_untracked() {
        let t = Tensor::zeros([2]);
        t.accumulate_grad(&[1.0, 1.0]);
        assert!(t.grad().is_none());
    }

    #[test]
    fn ids_are_unique() {
        let a = Tensor::zeros([1]);
        let b = Tensor::zeros([1]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn tensors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }

    #[test]
    fn ids_stay_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| (0..256).map(|_| Tensor::zeros([1]).id()).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4 * 256);
    }
}
