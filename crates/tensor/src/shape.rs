//! Shape algebra: dimension bookkeeping, stride math, and NumPy-style
//! broadcasting resolution.
//!
//! All tensors in this crate are dense, contiguous, and row-major; a
//! [`Shape`] is therefore just the list of dimension sizes, with strides
//! derived on demand. Keeping shapes as a standalone value type (instead of
//! burying them inside the tensor) lets the data pipeline and the
//! hypergraph crate do shape arithmetic without touching tensor storage.

use std::fmt;

/// The shape of a dense row-major tensor.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes. A zero-sized dimension is
    /// allowed (producing an empty tensor); an empty list denotes a scalar.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (in elements). A scalar has no strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.0.len()];
        let mut acc = 1usize;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Returns true when this shape can be reshaped into `other`
    /// (i.e. identical element counts).
    pub fn reshape_compatible(&self, other: &Shape) -> bool {
        self.numel() == other.numel()
    }

    /// Interprets this shape as a matrix `[rows, cols]` by flattening all
    /// leading dimensions into `rows`. A rank-1 shape `[n]` becomes
    /// `(1, n)`; a scalar becomes `(1, 1)`.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.0.len() {
            0 => (1, 1),
            1 => (1, self.0[0]),
            _ => {
                let cols = *self.0.last().unwrap();
                (self.numel() / cols.max(1), cols)
            }
        }
    }

    /// Resolves a possibly negative axis (Python-style) into an absolute
    /// one.
    ///
    /// # Panics
    /// Panics when the axis is out of range.
    pub fn resolve_axis(&self, axis: isize) -> usize {
        let rank = self.rank() as isize;
        let resolved = if axis < 0 { axis + rank } else { axis };
        assert!(
            (0..rank).contains(&resolved),
            "axis {axis} out of range for shape {self}"
        );
        resolved as usize
    }

    /// NumPy-style broadcast of two shapes.
    ///
    /// Shapes are right-aligned; each pair of dimensions must be equal or
    /// one of them must be 1. Returns `None` when incompatible.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for i in 0..rank {
            let a = dim_from_right(&self.0, i);
            let b = dim_from_right(&other.0, i);
            let idx = rank - 1 - i;
            dims[idx] = match (a, b) {
                (x, y) if x == y => x,
                (1, y) => y,
                (x, 1) => x,
                _ => return None,
            };
        }
        Some(Shape(dims))
    }

    /// Converts a flat row-major offset into a multi-dimensional index.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.rank()];
        for (i, &d) in self.0.iter().enumerate().rev() {
            if d == 0 {
                continue;
            }
            idx[i] = offset % d;
            offset /= d;
        }
        idx
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Panics
    /// Panics when `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn ravel(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut offset = 0usize;
        for (i, (&x, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(x < d, "index {x} out of bounds for axis {i} (size {d})");
            offset = offset * d + x;
        }
        offset
    }

    /// The shape with `axis` removed (used by reductions without keepdim).
    pub fn squeeze_axis(&self, axis: usize) -> Shape {
        let mut dims = self.0.clone();
        dims.remove(axis);
        Shape(dims)
    }

    /// The shape with `axis` set to 1 (used by reductions with keepdim).
    pub fn keepdim_axis(&self, axis: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[axis] = 1;
        Shape(dims)
    }
}

#[inline]
fn dim_from_right(dims: &[usize], from_right: usize) -> usize {
    if from_right < dims.len() {
        dims[dims.len() - 1 - from_right]
    } else {
        1
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Plan for evaluating a broadcast binary operation.
///
/// Precomputes, for every output element, the flat offsets into the two
/// operands. The fast paths (`SameShape`, `ScalarRhs`, `ScalarLhs`,
/// `TrailingRhs`) avoid per-element index arithmetic entirely.
pub enum BroadcastPlan {
    /// Both operands already have the output shape.
    SameShape,
    /// Right operand is a single element.
    ScalarRhs,
    /// Left operand is a single element.
    ScalarLhs,
    /// Right operand's shape equals the trailing dimensions of the output
    /// (e.g. adding a `[D]` bias to a `[B, L, D]` activation): the rhs is
    /// tiled `repeat` times over blocks of `block` elements.
    TrailingRhs {
        /// Elements per tiled block (the rhs's element count).
        block: usize,
    },
    /// Fully general case: per-element strides for both operands.
    General {
        /// Broadcast output shape.
        out_shape: Shape,
        /// Per-axis element strides into the lhs (0 on broadcast axes).
        lhs_strides: Vec<usize>,
        /// Per-axis element strides into the rhs (0 on broadcast axes).
        rhs_strides: Vec<usize>,
    },
}

impl BroadcastPlan {
    /// Builds a plan for `lhs op rhs` with the given (already broadcast)
    /// output shape.
    pub fn build(lhs: &Shape, rhs: &Shape, out: &Shape) -> BroadcastPlan {
        if lhs == rhs {
            return BroadcastPlan::SameShape;
        }
        if rhs.numel() == 1 {
            return BroadcastPlan::ScalarRhs;
        }
        if lhs.numel() == 1 {
            return BroadcastPlan::ScalarLhs;
        }
        // Trailing-suffix fast path: rhs dims equal the trailing dims of out
        // and lhs has the full output shape.
        if lhs == out {
            let od = out.dims();
            let rd = rhs.dims();
            if rd.len() <= od.len() && od[od.len() - rd.len()..] == *rd {
                return BroadcastPlan::TrailingRhs { block: rhs.numel() };
            }
        }
        BroadcastPlan::General {
            out_shape: out.clone(),
            lhs_strides: broadcast_strides(lhs, out),
            rhs_strides: broadcast_strides(rhs, out),
        }
    }
}

/// Strides of `src` viewed as broadcast to `out`: broadcast axes get stride
/// zero so the same element is reused along them.
pub fn broadcast_strides(src: &Shape, out: &Shape) -> Vec<usize> {
    let src_strides = src.strides();
    let rank = out.rank();
    let offset = rank - src.rank();
    let mut strides = vec![0usize; rank];
    for i in 0..src.rank() {
        strides[offset + i] = if src.dims()[i] == 1 { 0 } else { src_strides[i] };
    }
    strides
}

/// Iterates `f(out_idx, lhs_idx, rhs_idx)` over all output elements of a
/// general broadcast. Used by the slow path of binary ops and by gradient
/// reduction tests.
pub fn for_each_broadcast(
    out_shape: &Shape,
    lhs_strides: &[usize],
    rhs_strides: &[usize],
    mut f: impl FnMut(usize, usize, usize),
) {
    let rank = out_shape.rank();
    let dims = out_shape.dims();
    let numel = out_shape.numel();
    let mut idx = vec![0usize; rank];
    let mut lhs_off = 0usize;
    let mut rhs_off = 0usize;
    for out_off in 0..numel {
        f(out_off, lhs_off, rhs_off);
        // Odometer increment, maintaining both operand offsets.
        for axis in (0..rank).rev() {
            idx[axis] += 1;
            lhs_off += lhs_strides[axis];
            rhs_off += rhs_strides[axis];
            if idx[axis] < dims[axis] {
                break;
            }
            lhs_off -= lhs_strides[axis] * dims[axis];
            rhs_off -= rhs_strides[axis] * dims[axis];
            idx[axis] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new([5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn ravel_unravel_roundtrip() {
        let s = Shape::new([3, 4, 5]);
        for off in 0..s.numel() {
            let idx = s.unravel(off);
            assert_eq!(s.ravel(&idx), off);
        }
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::new([2, 3]);
        assert_eq!(a.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_trailing() {
        let a = Shape::new([2, 3, 4]);
        let b = Shape::new([4]);
        assert_eq!(a.broadcast(&b).unwrap(), a);
        assert_eq!(b.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_ones_expand() {
        let a = Shape::new([2, 1, 4]);
        let b = Shape::new([1, 3, 1]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new([2, 3, 4]));
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new([2, 3]);
        let b = Shape::new([4, 3]);
        assert!(a.broadcast(&b).is_none());
    }

    #[test]
    fn broadcast_with_scalar() {
        let a = Shape::new([2, 3]);
        assert_eq!(a.broadcast(&Shape::scalar()).unwrap(), a);
    }

    #[test]
    fn resolve_axis_negative() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.resolve_axis(-1), 2);
        assert_eq!(s.resolve_axis(0), 0);
        assert_eq!(s.resolve_axis(-3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resolve_axis_out_of_range() {
        Shape::new([2]).resolve_axis(3);
    }

    #[test]
    fn as_matrix_flattens_leading() {
        assert_eq!(Shape::new([2, 3, 4]).as_matrix(), (6, 4));
        assert_eq!(Shape::new([7]).as_matrix(), (1, 7));
        assert_eq!(Shape::scalar().as_matrix(), (1, 1));
    }

    #[test]
    fn squeeze_and_keepdim() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.squeeze_axis(1), Shape::new([2, 4]));
        assert_eq!(s.keepdim_axis(1), Shape::new([2, 1, 4]));
    }

    #[test]
    fn broadcast_strides_zero_on_expanded() {
        let src = Shape::new([1, 3]);
        let out = Shape::new([2, 3]);
        assert_eq!(broadcast_strides(&src, &out), vec![0, 1]);
    }

    #[test]
    fn general_broadcast_iteration_matches_manual() {
        let lhs = Shape::new([2, 1]);
        let rhs = Shape::new([1, 3]);
        let out = lhs.broadcast(&rhs).unwrap();
        let ls = broadcast_strides(&lhs, &out);
        let rs = broadcast_strides(&rhs, &out);
        let mut triples = Vec::new();
        for_each_broadcast(&out, &ls, &rs, |o, l, r| triples.push((o, l, r)));
        assert_eq!(
            triples,
            vec![(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 1, 0), (4, 1, 1), (5, 1, 2)]
        );
    }

    #[test]
    fn plan_fast_paths() {
        let a = Shape::new([2, 3]);
        let b = Shape::new([3]);
        let out = a.broadcast(&b).unwrap();
        assert!(matches!(
            BroadcastPlan::build(&a, &a, &a),
            BroadcastPlan::SameShape
        ));
        assert!(matches!(
            BroadcastPlan::build(&a, &Shape::scalar(), &a),
            BroadcastPlan::ScalarRhs
        ));
        assert!(matches!(
            BroadcastPlan::build(&Shape::scalar(), &a, &a),
            BroadcastPlan::ScalarLhs
        ));
        assert!(matches!(
            BroadcastPlan::build(&a, &b, &out),
            BroadcastPlan::TrailingRhs { block: 3 }
        ));
    }
}
