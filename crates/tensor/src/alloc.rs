//! Buffer-recycling allocator for `f32` tensor storage.
//!
//! A training step builds and tears down thousands of short-lived `Vec<f32>`
//! buffers — op outputs, gradients, GEMM pack panels. Sizes repeat exactly
//! from step to step, so instead of round-tripping every buffer through the
//! system allocator (for the large ones: `mmap`/`munmap` plus a page fault
//! per 4 KiB on first touch, every single step), freed buffers park on
//! size-classed free lists and are handed back out on the next request.
//!
//! Design:
//! - **Size classes**: capacities are rounded up to powers of two between
//!   `MIN_CLASS_LOG2` and `MAX_CLASS_LOG2` elements. Requests outside that
//!   range bypass recycling entirely.
//! - **Thread-local fast path**: each thread keeps a small per-class stack
//!   (`LOCAL_CAP` buffers); take/put are plain `RefCell` pushes/pops.
//! - **Shared overflow**: when a local stack is full or empty, buffers
//!   overflow to / refill from a global per-class `Mutex<Vec<_>>` (capped at
//!   `SHARED_CAP`), so producer/consumer thread pairs (e.g. the batch
//!   prefetcher and the training thread) still recycle across threads.
//! - **Escape hatch**: `MBSSL_ALLOC=off` (checked once per process) disables
//!   recycling; every call degrades to plain `Vec` allocation, which is the
//!   seed behavior. Useful to rule the allocator out when debugging.
//!
//! Handing out recycled storage never changes values: [`zeroed`] returns all
//! zeros exactly like `vec![0.0; n]`, and [`copy_of`]/[`buffer`] only expose
//! elements the caller writes. Counters ([`stats`]) track hits, misses, and
//! bytes reused so benches can report the hit rate.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Smallest recycled capacity, in elements (2^6 = 64 floats = 256 B).
/// Smaller requests are cheap enough for the system allocator.
const MIN_CLASS_LOG2: u32 = 6;
/// Largest recycled capacity, in elements (2^26 = 64 Mi floats = 256 MiB).
const MAX_CLASS_LOG2: u32 = 26;
const NUM_CLASSES: usize = (MAX_CLASS_LOG2 - MIN_CLASS_LOG2 + 1) as usize;

/// Per-thread, per-class buffer stack depth.
const LOCAL_CAP: usize = 16;
/// Global overflow list depth per class.
const SHARED_CAP: usize = 64;

/// Recycling counters, readable via [`stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Requests served from a free list.
    pub hits: u64,
    /// Requests that fell through to the system allocator.
    pub misses: u64,
    /// Buffers accepted back onto a free list.
    pub recycled: u64,
    /// Bytes of storage handed out from free lists (capacity-based).
    pub bytes_reused: u64,
}

impl AllocStats {
    /// Hit rate in percent over all class-eligible requests.
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 * 100.0 / total as f64
        }
    }
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static BYTES_REUSED: AtomicU64 = AtomicU64::new(0);

/// Whether recycling is active (i.e. `MBSSL_ALLOC` is not `off`/`0`).
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        // Piggyback on the one-time init: publish the recycling counters to
        // every telemetry flush without touching the per-request fast path.
        mbssl_telemetry::register_collector(telemetry_collector);
        !matches!(
            std::env::var("MBSSL_ALLOC").as_deref(),
            Ok("off") | Ok("0") | Ok("none")
        )
    })
}

/// Gauge snapshot of [`stats`] for `mbssl-telemetry` (labels `alloc.*`),
/// bridging the allocator's always-on counters into traces.
fn telemetry_collector() -> Vec<(&'static str, u64)> {
    let s = stats();
    vec![
        ("alloc.hits", s.hits),
        ("alloc.misses", s.misses),
        ("alloc.recycled", s.recycled),
        ("alloc.bytes_reused", s.bytes_reused),
    ]
}

/// Snapshot of the recycling counters.
pub fn stats() -> AllocStats {
    AllocStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        bytes_reused: BYTES_REUSED.load(Ordering::Relaxed),
    }
}

/// Resets the recycling counters (free lists are left intact).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLED.store(0, Ordering::Relaxed);
    BYTES_REUSED.store(0, Ordering::Relaxed);
}

/// Size-class index for a request of `n` elements, or `None` when the
/// request should bypass recycling.
#[inline]
fn class_of(n: usize) -> Option<usize> {
    if n == 0 || n > (1usize << MAX_CLASS_LOG2) {
        return None;
    }
    let log2 = n.next_power_of_two().trailing_zeros().max(MIN_CLASS_LOG2);
    Some((log2 - MIN_CLASS_LOG2) as usize)
}

/// Exact capacity of a size class.
#[inline]
fn class_capacity(class: usize) -> usize {
    1usize << (class as u32 + MIN_CLASS_LOG2)
}

thread_local! {
    static LOCAL: RefCell<Vec<Vec<Vec<f32>>>> =
        RefCell::new((0..NUM_CLASSES).map(|_| Vec::new()).collect());
}

fn shared() -> &'static Vec<Mutex<Vec<Vec<f32>>>> {
    static SHARED: OnceLock<Vec<Mutex<Vec<Vec<f32>>>>> = OnceLock::new();
    SHARED.get_or_init(|| (0..NUM_CLASSES).map(|_| Mutex::new(Vec::new())).collect())
}

/// Pops a buffer of class `class` from the local stack, refilling from the
/// shared overflow on a local miss.
fn pop_class(class: usize) -> Option<Vec<f32>> {
    let local = LOCAL.with(|l| l.borrow_mut()[class].pop());
    if local.is_some() {
        return local;
    }
    shared()[class].lock().ok().and_then(|mut list| list.pop())
}

/// An empty `Vec<f32>` with capacity at least `n`, recycled when possible.
///
/// The returned vector has `len() == 0`; the caller fills it (`resize`,
/// `extend`, `extend_from_slice`). Capacity is the request's size class, so
/// a later [`recycle`] returns it to the same class.
pub fn buffer(n: usize) -> Vec<f32> {
    if !enabled() {
        return Vec::with_capacity(n);
    }
    let Some(class) = class_of(n) else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return Vec::with_capacity(n);
    };
    if let Some(mut v) = pop_class(class) {
        HITS.fetch_add(1, Ordering::Relaxed);
        BYTES_REUSED.fetch_add((v.capacity() * 4) as u64, Ordering::Relaxed);
        v.clear();
        return v;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    Vec::with_capacity(class_capacity(class))
}

/// `vec![0.0; n]`, but recycled: length `n`, every element `0.0`.
pub fn zeroed(n: usize) -> Vec<f32> {
    let mut v = buffer(n);
    v.resize(n, 0.0);
    v
}

/// `vec![value; n]`, but recycled.
pub fn filled(n: usize, value: f32) -> Vec<f32> {
    let mut v = buffer(n);
    v.resize(n, value);
    v
}

/// `src.to_vec()`, but recycled.
pub fn copy_of(src: &[f32]) -> Vec<f32> {
    let mut v = buffer(src.len());
    v.extend_from_slice(src);
    v
}

/// Returns a buffer to its size-class free list. Buffers whose capacity is
/// not an exact class size (or recycling disabled) are simply dropped.
pub fn recycle(v: Vec<f32>) {
    if !enabled() {
        return;
    }
    let cap = v.capacity();
    let Some(class) = class_of(cap) else { return };
    if class_capacity(class) != cap {
        // Not one of ours (e.g. a caller-built Vec with odd capacity):
        // parking it would shrink the class's effective capacity.
        return;
    }
    let overflow = LOCAL.with(|l| {
        let mut local = l.borrow_mut();
        if local[class].len() < LOCAL_CAP {
            local[class].push(v);
            None
        } else {
            Some(v)
        }
    });
    if let Some(v) = overflow {
        if let Ok(mut list) = shared()[class].lock() {
            if list.len() < SHARED_CAP {
                list.push(v);
            } else {
                return; // both lists full: drop
            }
        } else {
            return;
        }
    }
    RECYCLED.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_matches_vec_macro() {
        for n in [1usize, 63, 64, 65, 1000, 4096] {
            assert_eq!(zeroed(n), vec![0.0f32; n]);
        }
    }

    #[test]
    fn copy_of_matches_to_vec() {
        let src: Vec<f32> = (0..300).map(|i| i as f32 * 0.5 - 3.0).collect();
        assert_eq!(copy_of(&src), src);
    }

    #[test]
    fn filled_matches_vec_macro() {
        assert_eq!(filled(130, 2.5), vec![2.5f32; 130]);
    }

    #[test]
    fn recycled_buffer_comes_back_zeroed() {
        // Dirty a buffer, recycle it, and check the next request of the
        // same class sees only zeros.
        let mut v = zeroed(1000);
        for x in v.iter_mut() {
            *x = f32::NAN;
        }
        recycle(v);
        let v2 = zeroed(900); // same 1024-element class
        assert!(v2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_of(0), None);
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(64), Some(0));
        assert_eq!(class_of(65), Some(1));
        assert_eq!(class_of(1 << 26), Some(NUM_CLASSES - 1));
        assert_eq!(class_of((1 << 26) + 1), None);
    }

    #[test]
    fn stats_track_hits() {
        if !enabled() {
            return; // MBSSL_ALLOC=off: nothing to track
        }
        let before = stats();
        let v = zeroed(5000);
        recycle(v);
        let _v2 = zeroed(5000);
        let after = stats();
        assert!(after.recycled > before.recycled);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn oversized_requests_bypass() {
        // Requests above MAX_CLASS never panic and still produce valid
        // buffers; they just skip the free lists.
        let n = (1usize << 26) + 7;
        let v = buffer(n);
        assert!(v.capacity() >= n);
        recycle(v); // dropped, not parked
    }
}
