//! Fused transformer-block ops with hand-written backwards.
//!
//! At MBSSL scale the encoder's cost is dominated by graph overhead:
//! unfused attention materializes the `[B*H, L, L]` scores, mask, softmax,
//! dropout and context matmul as five autograd nodes with five intermediate
//! buffers, and the FFN / residual sublayers do the same on a smaller scale.
//! Each op here collapses such a chain into a single node that (a) saves for
//! backward only what the gradient genuinely needs and (b) reproduces the
//! unfused composition **bit-for-bit**: identical per-element accumulation
//! order in the forward pass, identical RNG draw order for dropout, and
//! gradients exactly equal to the unfused autograd at any worker-pool size.
//! That contract is pinned by `tests/fused_parity.rs`.
//!
//! The nn-module call sites gate on [`enabled`] (`MBSSL_FUSED=off` escape
//! hatch, mirroring `MBSSL_ALLOC`), keeping the unfused composition alive as
//! the reference implementation.

use std::sync::OnceLock;

use mbssl_telemetry as telemetry;

use crate::alloc;
use crate::autograd;
use crate::kernels;
use crate::pool;
use crate::shape::{broadcast_strides, Shape};
use crate::tensor::Tensor;

/// Whether fused call sites are active. Defaults to on; `MBSSL_FUSED=off`
/// (or `0` / `none`) routes the nn modules through the unfused reference
/// composition instead. Read once and cached for the process lifetime.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("MBSSL_FUSED").as_deref(),
            Ok("off") | Ok("0") | Ok("none")
        )
    })
}

/// Minimum total score elements (`B*H · Lq · Lk`) before sdpa spreads its
/// independent `[B*H]` slices across the worker pool. Purely a scheduling
/// knob: per-slice math is unchanged, so results are identical either way.
const PAR_SDPA_THRESHOLD: usize = 1 << 14;

/// Raw-pointer wrapper so disjoint slice windows of one output buffer can be
/// written from pool workers (same pattern as `kernels.rs`).
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// View of `len` elements starting at `offset`.
    ///
    /// Safety: callers must hand out non-overlapping windows within the
    /// allocation and keep it alive for the borrow. (Going through a method
    /// also keeps closures capturing the `Sync` wrapper rather than the raw
    /// field.)
    #[allow(clippy::mut_from_ref)]
    unsafe fn window(&self, offset: usize, len: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi), same constant as ops/unary.rs

/// GELU forward, identical expression to `Tensor::gelu`.
#[inline]
fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

/// GELU backward, identical expression to `Tensor::gelu` (recovers
/// `t = tanh(inner)` from the stored forward output away from `x = 0`).
#[inline]
fn gelu_bwd(x: f32, y: f32, g: f32) -> f32 {
    let t = if x.abs() > 1e-3 {
        2.0 * y / x - 1.0
    } else {
        (GELU_C * (x + 0.044715 * x * x * x)).tanh()
    };
    let dt = 1.0 - t * t;
    let dinner = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
    g * (0.5 * (1.0 + t) + 0.5 * x * dt * dinner)
}

impl Tensor {
    /// Scaled dot-product attention as one autograd node:
    /// `softmax(mask(q·kᵀ · scale)) [⊙ dropout] · v`, per `[B*H]` slice.
    ///
    /// `self`/q is `[B*H, Lq, Dh]`; `k`/`v` are `[B*H, Lk, Dh]`. `mask`
    /// (broadcastable to `[B*H, Lq, Lk]`, nonzero = masked, constant — no
    /// gradient) fills scores with `-1e9` before the softmax, exactly like
    /// `masked_fill`. `dropout_mask` is a precomputed keep/scale mask of
    /// `B*H·Lq·Lk` elements (see `ops::dropout_mask`) applied to the
    /// probabilities; the caller draws it so the RNG stream matches the
    /// unfused `Mode::dropout` call. Only the softmax output (plus the two
    /// masks) is saved for backward; dq/dk/dv come out of one pass per slice
    /// through the recycling allocator, with no graph nodes in between.
    pub fn sdpa(
        &self,
        k: &Tensor,
        v: &Tensor,
        mask: Option<&Tensor>,
        scale: f32,
        dropout_mask: Option<Vec<f32>>,
    ) -> Tensor {
        let q_dims = self.dims();
        assert_eq!(q_dims.len(), 3, "sdpa expects [B*H, Lq, Dh] inputs");
        let (bh, lq, dh) = (q_dims[0], q_dims[1], q_dims[2]);
        let lk = k.dims()[1];
        assert_eq!(k.dims(), &[bh, lk, dh], "k must be [B*H, Lk, Dh]");
        assert_eq!(v.dims(), &[bh, lk, dh], "v must be [B*H, Lk, Dh]");
        let score_shape = Shape::new([bh, lq, lk]);
        if let Some(dm) = dropout_mask.as_ref() {
            assert_eq!(dm.len(), score_shape.numel(), "dropout mask length mismatch");
        }
        // Mask strides viewed as broadcast to the score shape (same
        // compatibility check and element mapping as `masked_fill`).
        let mask_info = mask.map(|m| {
            let bshape = score_shape.broadcast(m.shape()).unwrap_or_else(|| {
                panic!("mask {} incompatible with scores {}", m.shape(), score_shape)
            });
            assert_eq!(bshape, score_shape, "mask must broadcast to the score shape");
            let ms = broadcast_strides(m.shape(), &score_shape);
            (m.clone(), [ms[0], ms[1], ms[2]])
        });

        let mut sp = telemetry::span("kernel.sdpa");
        sp.add_bytes(4 * (3 * bh * lk * dh + bh * lq * lk) as u64);
        let tracked = autograd::is_grad_enabled()
            && (self.is_tracked() || k.is_tracked() || v.is_tracked());
        let mut out = alloc::zeroed(bh * lq * dh);
        // Softmax probabilities: kept whole when backward will need them,
        // otherwise a recycled per-slice scratch.
        let mut probs = if tracked {
            alloc::zeroed(bh * lq * lk)
        } else {
            Vec::new()
        };
        {
            let q_data = self.data();
            let k_data = k.data();
            let v_data = v.data();
            let mask_guard = mask_info.as_ref().map(|(m, ms)| (m.data(), *ms));
            let mask_sl: Option<(&[f32], [usize; 3])> =
                mask_guard.as_ref().map(|(g, ms)| (&g[..], *ms));
            let dmask = dropout_mask.as_deref();
            let out_ptr = SendPtr(out.as_mut_ptr());
            let probs_ptr = SendPtr(probs.as_mut_ptr());
            let slice_fwd = |s: usize| {
                let q_s = &q_data[s * lq * dh..(s + 1) * lq * dh];
                let k_s = &k_data[s * lk * dh..(s + 1) * lk * dh];
                let v_s = &v_data[s * lk * dh..(s + 1) * lk * dh];
                let mut scratch = if tracked { Vec::new() } else { alloc::zeroed(lq * lk) };
                // Safety: windows at distinct `s` are disjoint.
                let scores: &mut [f32] = if tracked {
                    unsafe { probs_ptr.window(s * lq * lk, lq * lk) }
                } else {
                    &mut scratch
                };
                // kᵀ must be materialized: `gemm_nt`'s dot-chain accumulation
                // differs bitwise from the `gemm_nn(q, kᵀ)` the unfused bmm
                // runs, so the same kernel (and kᵀ layout) is kept here.
                let mut kt = alloc::zeroed(lk * dh);
                kernels::transpose(k_s, &mut kt, lk, dh);
                kernels::gemm_nn(q_s, &kt, scores, lq, dh, lk);
                for x in scores.iter_mut() {
                    *x *= scale;
                }
                if let Some((m, ms)) = &mask_sl {
                    for i in 0..lq {
                        for j in 0..lk {
                            if m[s * ms[0] + i * ms[1] + j * ms[2]] != 0.0 {
                                scores[i * lk + j] = -1e9;
                            }
                        }
                    }
                }
                kernels::softmax_rows(scores, lk);
                let ctx: &mut [f32] = unsafe { out_ptr.window(s * lq * dh, lq * dh) };
                if let Some(dm) = dmask {
                    let dm_s = &dm[s * lq * lk..(s + 1) * lq * lk];
                    let mut ad = alloc::buffer(lq * lk);
                    ad.extend(scores.iter().zip(dm_s.iter()).map(|(&p, &m)| p * m));
                    kernels::gemm_nn(&ad, v_s, ctx, lq, lk, dh);
                    alloc::recycle(ad);
                } else {
                    kernels::gemm_nn(scores, v_s, ctx, lq, lk, dh);
                }
                alloc::recycle(kt);
                if !tracked {
                    alloc::recycle(scratch);
                }
            };
            if pool::threads() > 1 && bh > 1 && bh * lq * lk >= PAR_SDPA_THRESHOLD {
                pool::parallel_for(bh, |s| slice_fwd(s));
            } else {
                for s in 0..bh {
                    slice_fwd(s);
                }
            }
        }

        let q_c = self.clone();
        let k_c = k.clone();
        let v_c = v.clone();
        Tensor::make_op(
            Shape::new([bh, lq, dh]),
            out,
            vec![self.clone(), k.clone(), v.clone()],
            move |out_t| {
                let _sp = telemetry::span("kernel.sdpa_bwd");
                let g_guard = out_t.grad_ref();
                let g = g_guard.as_ref().unwrap();
                let q_tracked = q_c.is_tracked();
                let k_tracked = k_c.is_tracked();
                let v_tracked = v_c.is_tracked();
                let need_score_grad = q_tracked || k_tracked;
                let mut dq = if q_tracked { alloc::zeroed(bh * lq * dh) } else { Vec::new() };
                let mut dk = if k_tracked { alloc::zeroed(bh * lk * dh) } else { Vec::new() };
                let mut dv = if v_tracked { alloc::zeroed(bh * lk * dh) } else { Vec::new() };
                {
                    let q_data = q_c.data();
                    let k_data = k_c.data();
                    let v_data = v_c.data();
                    let mask_guard = mask_info.as_ref().map(|(m, ms)| (m.data(), *ms));
                    let mask_sl: Option<(&[f32], [usize; 3])> =
                        mask_guard.as_ref().map(|(gd, ms)| (&gd[..], *ms));
                    let dmask = dropout_mask.as_deref();
                    let probs_sl = &probs[..];
                    let g_sl = &g[..];
                    let dq_ptr = SendPtr(dq.as_mut_ptr());
                    let dk_ptr = SendPtr(dk.as_mut_ptr());
                    let dv_ptr = SendPtr(dv.as_mut_ptr());
                    let slice_bwd = |s: usize| {
                        let p_s = &probs_sl[s * lq * lk..(s + 1) * lq * lk];
                        let g_s = &g_sl[s * lq * dh..(s + 1) * lq * dh];
                        let dm_s = dmask.map(|dm| &dm[s * lq * lk..(s + 1) * lq * lk]);
                        if v_tracked {
                            // dv += adᵀ·g, ad = probs ⊙ dropout (recomputed —
                            // the product is cheaper than keeping it).
                            let dv_s: &mut [f32] =
                                unsafe { dv_ptr.window(s * lk * dh, lk * dh) };
                            if let Some(dm) = dm_s {
                                let mut ad = alloc::buffer(lq * lk);
                                ad.extend(p_s.iter().zip(dm.iter()).map(|(&p, &m)| p * m));
                                kernels::gemm_tn(&ad, g_s, dv_s, lk, lq, dh);
                                alloc::recycle(ad);
                            } else {
                                kernels::gemm_tn(p_s, g_s, dv_s, lk, lq, dh);
                            }
                        }
                        if need_score_grad {
                            // Walk the unfused chain backwards: context matmul,
                            // dropout, softmax, mask, scale — in place in `ds`.
                            let v_s = &v_data[s * lk * dh..(s + 1) * lk * dh];
                            let mut ds = alloc::zeroed(lq * lk);
                            kernels::gemm_nt(g_s, v_s, &mut ds, lq, dh, lk);
                            if let Some(dm) = dm_s {
                                for (d, &m) in ds.iter_mut().zip(dm.iter()) {
                                    *d *= m;
                                }
                            }
                            // Softmax backward with the scale folded into the
                            // write: `(p·(g−dot))·scale` is the same two
                            // multiplies, in the same order, as the separate
                            // mul_scalar backward pass.
                            for r in 0..lq {
                                let o = r * lk;
                                let mut dot = 0.0f32;
                                for i in 0..lk {
                                    dot += ds[o + i] * p_s[o + i];
                                }
                                for i in 0..lk {
                                    ds[o + i] = p_s[o + i] * (ds[o + i] - dot) * scale;
                                }
                            }
                            if let Some((m, ms)) = &mask_sl {
                                for i in 0..lq {
                                    for j in 0..lk {
                                        if m[s * ms[0] + i * ms[1] + j * ms[2]] != 0.0 {
                                            ds[i * lk + j] = 0.0;
                                        }
                                    }
                                }
                            }
                            if q_tracked {
                                let k_s = &k_data[s * lk * dh..(s + 1) * lk * dh];
                                let mut kt = alloc::zeroed(lk * dh);
                                kernels::transpose(k_s, &mut kt, lk, dh);
                                let dq_s: &mut [f32] =
                                    unsafe { dq_ptr.window(s * lq * dh, lq * dh) };
                                kernels::gemm_nt(&ds, &kt, dq_s, lq, lk, dh);
                                alloc::recycle(kt);
                            }
                            if k_tracked {
                                let q_s = &q_data[s * lq * dh..(s + 1) * lq * dh];
                                let mut dkt = alloc::zeroed(dh * lk);
                                kernels::gemm_tn(q_s, &ds, &mut dkt, dh, lq, lk);
                                let dk_s: &mut [f32] =
                                    unsafe { dk_ptr.window(s * lk * dh, lk * dh) };
                                kernels::transpose(&dkt, dk_s, dh, lk);
                                alloc::recycle(dkt);
                            }
                            alloc::recycle(ds);
                        }
                    };
                    if pool::threads() > 1 && bh > 1 && bh * lq * lk >= PAR_SDPA_THRESHOLD {
                        pool::parallel_for(bh, |s| slice_bwd(s));
                    } else {
                        for s in 0..bh {
                            slice_bwd(s);
                        }
                    }
                }
                // Each projection receives exactly one contribution from this
                // subgraph, in the unfused reverse-topo order (v, q, k).
                if v_tracked {
                    v_c.accumulate_grad_owned(dv);
                }
                if q_tracked {
                    q_c.accumulate_grad_owned(dq);
                }
                if k_tracked {
                    k_c.accumulate_grad_owned(dk);
                }
            },
        )
    }

    /// Fused `gelu(x + bias)` — the FFN's first Linear epilogue — as one node.
    ///
    /// `bias` is `[H]` and broadcasts over rows of `self` exactly like the
    /// unfused trailing-axis `add`; forward values and both gradients match
    /// `x.add(bias).gelu()` bit-for-bit. Backward computes the GELU input
    /// gradient once, row-sums it into the bias gradient (ascending rows,
    /// the unfused accumulation order), and hands the buffer itself to `x`.
    pub fn bias_gelu(&self, bias: &Tensor) -> Tensor {
        let h = bias.numel();
        assert_eq!(bias.shape().rank(), 1, "bias must be rank 1");
        assert_eq!(
            self.dims().last().copied(),
            Some(h),
            "bias length must match the trailing axis"
        );
        let n = self.numel();
        let mut sp = telemetry::span("kernel.bias_gelu");
        sp.add_bytes(4 * n as u64);
        let mut out = alloc::zeroed(n);
        {
            let x = self.data();
            let b = bias.data();
            let write = |offset: usize, chunk: &mut [f32]| {
                let mut j = offset % h;
                for (idx, o) in chunk.iter_mut().enumerate() {
                    *o = gelu_fwd(x[offset + idx] + b[j]);
                    j += 1;
                    if j == h {
                        j = 0;
                    }
                }
            };
            if kernels::map_splits(n) {
                let chunk_len = n.div_ceil((pool::threads() * 4).max(1));
                pool::parallel_chunks_mut(&mut out, chunk_len, |ci, chunk| {
                    write(ci * chunk_len, chunk)
                });
            } else {
                write(0, &mut out);
            }
        }
        let x_c = self.clone();
        let b_c = bias.clone();
        Tensor::make_op(
            self.shape().clone(),
            out,
            vec![self.clone(), bias.clone()],
            move |out_t| {
                let g_guard = out_t.grad_ref();
                let g = g_guard.as_ref().unwrap();
                let y = out_t.data();
                let mut gg;
                {
                    let x = x_c.data();
                    let b = b_c.data();
                    gg = alloc::buffer(x.len());
                    for (ci, chunk) in x.chunks(h).enumerate() {
                        let o = ci * h;
                        gg.extend(
                            chunk
                                .iter()
                                .enumerate()
                                .map(|(j, &xv)| gelu_bwd(xv + b[j], y[o + j], g[o + j])),
                        );
                    }
                }
                drop(y);
                let gb = if b_c.is_tracked() {
                    let mut gb = alloc::zeroed(h);
                    for chunk in gg.chunks(h) {
                        for (gb_v, &gv) in gb.iter_mut().zip(chunk.iter()) {
                            *gb_v += gv;
                        }
                    }
                    Some(gb)
                } else {
                    None
                };
                // lhs before rhs, like the unfused binary op.
                x_c.accumulate_grad_owned(gg);
                if let Some(gb) = gb {
                    b_c.accumulate_grad_owned(gb);
                }
            },
        )
    }

    /// Fused `layer_norm(self + other)` — a pre-LN residual sublayer — as one
    /// node over parents `[self, other, gamma, beta]`.
    ///
    /// Values and all four gradients match
    /// `self.add(other).layer_norm(gamma, beta, eps)` bit-for-bit. The
    /// elementwise sum is recycled right after the forward: layernorm's
    /// backward only needs `xhat` and `inv_std`, and the residual parents
    /// each receive an identical copy of the layernorm input gradient (the
    /// unfused add is pass-through).
    pub fn residual_layer_norm(
        &self,
        other: &Tensor,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> Tensor {
        assert_eq!(self.dims(), other.dims(), "residual shapes must match");
        let d = *self
            .shape()
            .dims()
            .last()
            .expect("residual_layer_norm requires rank >= 1");
        assert_eq!(gamma.dims(), &[d], "gamma must be [D]");
        assert_eq!(beta.dims(), &[d], "beta must be [D]");
        let rows = self.numel() / d.max(1);
        let n = self.numel();
        let mut sp = telemetry::span("kernel.residual_layer_norm");
        sp.add_bytes(4 * n as u64);
        let mut sum = alloc::zeroed(n);
        let mut out = alloc::zeroed(n);
        let mut xhat = alloc::zeroed(n);
        let mut inv_std = alloc::zeroed(rows);
        {
            let a = self.data();
            let b = other.data();
            kernels::zip_map_into(&a, &b, &mut sum, |x, y| x + y);
            let g = gamma.data();
            let bt = beta.data();
            kernels::layernorm_forward_rows(&sum, &g, &bt, &mut out, &mut xhat, &mut inv_std, d, eps);
        }
        alloc::recycle(sum);
        let a_c = self.clone();
        let b_c = other.clone();
        let gamma_c = gamma.clone();
        let beta_c = beta.clone();
        Tensor::make_op(
            self.shape().clone(),
            out,
            vec![self.clone(), other.clone(), gamma.clone(), beta.clone()],
            move |out_t| {
                let g_guard = out_t.grad_ref();
                let gy = g_guard.as_ref().unwrap();
                let gamma_data = gamma_c.data();
                let a_tracked = a_c.is_tracked();
                let b_tracked = b_c.is_tracked();
                let gx = if a_tracked || b_tracked {
                    let mut gx = alloc::zeroed(a_c.numel());
                    kernels::layernorm_backward_input_rows(
                        gy,
                        &gamma_data,
                        &xhat,
                        &inv_std,
                        &mut gx,
                        d,
                    );
                    gx.iter().for_each(|v| debug_assert!(v.is_finite()));
                    Some(gx)
                } else {
                    None
                };
                if gamma_c.is_tracked() {
                    let mut gg = alloc::zeroed(d);
                    for r in 0..rows {
                        let o = r * d;
                        for i in 0..d {
                            gg[i] += gy[o + i] * xhat[o + i];
                        }
                    }
                    gamma_c.accumulate_grad_owned(gg);
                }
                if beta_c.is_tracked() {
                    let mut gb = alloc::zeroed(d);
                    for r in 0..rows {
                        let o = r * d;
                        for i in 0..d {
                            gb[i] += gy[o + i];
                        }
                    }
                    beta_c.accumulate_grad_owned(gb);
                }
                if let Some(gx) = gx {
                    if a_tracked && b_tracked {
                        a_c.accumulate_grad_owned(alloc::copy_of(&gx));
                        b_c.accumulate_grad_owned(gx);
                    } else if a_tracked {
                        a_c.accumulate_grad_owned(gx);
                    } else {
                        b_c.accumulate_grad_owned(gx);
                    }
                }
            },
        )
    }

    /// Fused three-way residual sum `(self + b) + c` as one node.
    ///
    /// Forward keeps the unfused left-to-right association per element;
    /// backward hands each parent an identical copy of the output gradient,
    /// matching `self.add(b).add(c)` bit-for-bit.
    pub fn add3(&self, b: &Tensor, c: &Tensor) -> Tensor {
        assert_eq!(self.dims(), b.dims(), "add3 shapes must match");
        assert_eq!(self.dims(), c.dims(), "add3 shapes must match");
        let n = self.numel();
        let mut sp = telemetry::span("kernel.add3");
        sp.add_bytes(4 * n as u64);
        let mut out = alloc::zeroed(n);
        {
            let a_d = self.data();
            let b_d = b.data();
            let c_d = c.data();
            let write = |offset: usize, chunk: &mut [f32]| {
                for (idx, o) in chunk.iter_mut().enumerate() {
                    let i = offset + idx;
                    *o = (a_d[i] + b_d[i]) + c_d[i];
                }
            };
            if kernels::map_splits(n) {
                let chunk_len = n.div_ceil((pool::threads() * 4).max(1));
                pool::parallel_chunks_mut(&mut out, chunk_len, |ci, chunk| {
                    write(ci * chunk_len, chunk)
                });
            } else {
                write(0, &mut out);
            }
        }
        let a_c = self.clone();
        let b_c = b.clone();
        let c_c = c.clone();
        Tensor::make_op(
            self.shape().clone(),
            out,
            vec![self.clone(), b.clone(), c.clone()],
            move |out_t| {
                let g_guard = out_t.grad_ref();
                let g = g_guard.as_ref().unwrap();
                for t in [&a_c, &b_c, &c_c] {
                    if t.is_tracked() {
                        t.accumulate_grad_owned(alloc::copy_of(g));
                    }
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_defaults_on() {
        // The test binary never sets MBSSL_FUSED except in dedicated CI runs,
        // where this test still documents the tri-state contract.
        match std::env::var("MBSSL_FUSED").as_deref() {
            Ok("off") | Ok("0") | Ok("none") => assert!(!enabled()),
            _ => assert!(enabled()),
        }
    }

    #[test]
    fn sdpa_uniform_attention_averages_values() {
        // Equal scores => uniform probabilities => context rows are the mean
        // of the value rows.
        let q = Tensor::zeros([1, 2, 3]);
        let k = Tensor::zeros([1, 2, 3]);
        let v = Tensor::from_slice(&[1.0, 2.0, 3.0, 5.0, 6.0, 7.0], [1, 2, 3]);
        let out = q.sdpa(&k, &v, None, 0.5, None).to_vec();
        for (i, want) in [3.0f32, 4.0, 5.0, 3.0, 4.0, 5.0].iter().enumerate() {
            assert!((out[i] - want).abs() < 1e-5, "out[{i}] = {}", out[i]);
        }
    }

    #[test]
    fn sdpa_masked_row_ignores_masked_keys() {
        let q = Tensor::zeros([1, 1, 2]);
        let k = Tensor::zeros([1, 2, 2]);
        let v = Tensor::from_slice(&[10.0, 20.0, -4.0, -8.0], [1, 2, 2]);
        let mask = Tensor::from_slice(&[0.0, 1.0], [1, 1, 2]);
        let out = q.sdpa(&k, &v, Some(&mask), 1.0, None).to_vec();
        assert!((out[0] - 10.0).abs() < 1e-4);
        assert!((out[1] - 20.0).abs() < 1e-4);
    }

    #[test]
    fn bias_gelu_matches_known_gelu_values() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 0.0], [1, 3]);
        let b = Tensor::from_slice(&[1.0, 1.0, -1.0], [3]);
        let y = x.bias_gelu(&b).to_vec();
        assert!(y[0].abs() < 1e-6);
        assert!((y[1] - 0.8412).abs() < 1e-3);
        assert!((y[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn residual_layer_norm_normalizes_sum() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0], [1, 4]);
        let b = Tensor::from_slice(&[0.5, 1.0, 1.5, 2.0], [1, 4]);
        let gamma = Tensor::ones([4]);
        let beta = Tensor::zeros([4]);
        let y = a.residual_layer_norm(&b, &gamma, &beta, 1e-5).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn add3_values_and_grads() {
        let a = Tensor::from_slice(&[1.0, 2.0], [2]).requires_grad();
        let b = Tensor::from_slice(&[10.0, 20.0], [2]).requires_grad();
        let c = Tensor::from_slice(&[100.0, 200.0], [2]).requires_grad();
        let y = a.add3(&b, &c);
        assert_eq!(y.to_vec(), vec![111.0, 222.0]);
        y.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 1.0]);
        assert_eq!(c.grad().unwrap(), vec![1.0, 1.0]);
    }
}
