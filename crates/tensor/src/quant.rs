//! Quantized embedding storage for the inference-time catalog scorer.
//!
//! The final ranking step of serving is a dot product between a handful of
//! f32 interest vectors and every row of the item-embedding table. At that
//! shape the table's memory traffic dominates, so the inference engine can
//! hold a compressed copy: **i8 with one scale per row** (4× smaller) or
//! **bf16** (2× smaller, ~3 decimal digits). Quantization changes scores,
//! so unlike the SIMD/fusion switches it is **opt-in**: `MBSSL_QUANT`
//! defaults to off and the engine stays bit-for-bit with the f32 reference
//! unless it is set. Accuracy is guarded by an HR@K/NDCG@K drift gate
//! (tolerance `MBSSL_QUANT_TOL`) rather than bit-equality.
//!
//! ## i8 scheme
//!
//! Per row `r`: `scale_r = max_abs(row) / 127`, `q = round(w / scale_r)`
//! (clamped to ±127; an all-zero row stores `scale_r = 0`). Decode is
//! `q * scale_r`, so the absolute error per element is bounded by
//! `scale_r / 2` — pinned by `tests/quant_roundtrip.rs`. Dots accumulate
//! `(q as f32) * x` in f32 and apply the row scale once at the end.
//!
//! ## bf16 scheme
//!
//! Each f32 is truncated to its top 16 bits with round-to-nearest-even —
//! the standard bfloat16 conversion. Decode shifts back with zeroed
//! mantissa tail; dots run in f32 on the decoded values.

use std::sync::OnceLock;

/// Which compressed representation (if any) the engine's catalog scorer
/// should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantMode {
    /// No quantization: score against the f32 table (bit-exact path).
    Off,
    /// i8 rows with a per-row scale.
    I8,
    /// bf16 (truncated f32) rows.
    Bf16,
}

/// Ambient mode from `MBSSL_QUANT`: unset/`off`/`0`/`none` → [`QuantMode::Off`]
/// (the default — quantization is opt-in because it changes scores),
/// `on`/`1`/`i8`/`int8` → [`QuantMode::I8`], `bf16` → [`QuantMode::Bf16`].
/// Unrecognized values fall back to off. Read once per process.
pub fn mode() -> QuantMode {
    static MODE: OnceLock<QuantMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("MBSSL_QUANT").as_deref() {
        Ok("on") | Ok("1") | Ok("i8") | Ok("int8") => QuantMode::I8,
        Ok("bf16") => QuantMode::Bf16,
        _ => QuantMode::Off,
    })
}

/// Allowed absolute HR@K / NDCG@K drift of the quantized scorer vs the f32
/// scorer, from `MBSSL_QUANT_TOL` (default `0.02`). Consumed by the drift
/// gate in `mbssl-core`'s inference tests.
pub fn drift_tol() -> f64 {
    static TOL: OnceLock<f64> = OnceLock::new();
    *TOL.get_or_init(|| {
        std::env::var("MBSSL_QUANT_TOL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.02)
    })
}

/// An f32 row-major matrix quantized to i8 with one scale per row.
pub struct QuantizedRows {
    data: Vec<i8>,
    scales: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl QuantizedRows {
    /// Quantizes row-major `w` (`rows × cols`).
    pub fn quantize(w: &[f32], rows: usize, cols: usize) -> QuantizedRows {
        assert_eq!(w.len(), rows * cols, "quantize shape mismatch");
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if max_abs == 0.0 {
                continue; // scale 0, all-zero codes
            }
            let scale = max_abs / 127.0;
            scales[r] = scale;
            for (q, &v) in data[r * cols..(r + 1) * cols].iter_mut().zip(row.iter()) {
                *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedRows {
            data,
            scales,
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The scale of row `r` (`max_abs / 127`; `0` for an all-zero row).
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Decodes row `r` into `out` (`out.len() == cols`).
    pub fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols);
        let scale = self.scales[r];
        for (o, &q) in out.iter_mut().zip(self.data[r * self.cols..].iter()) {
            *o = q as f32 * scale;
        }
    }

    /// `dot(decode(row r), x)`: accumulates `(q as f32) * x_i` in f32 and
    /// applies the row scale once at the end.
    pub fn dot(&self, r: usize, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.cols);
        let row = &self.data[r * self.cols..(r + 1) * self.cols];
        let mut acc = 0.0f32;
        for (&q, &xv) in row.iter().zip(x.iter()) {
            acc += q as f32 * xv;
        }
        acc * self.scales[r]
    }
}

/// Converts one f32 to bf16 bits with round-to-nearest-even.
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Preserve a quiet NaN pattern rather than rounding into infinity.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round_bit = (bits >> 16) & 1;
    (((bits + 0x7FFF + round_bit) >> 16) & 0xFFFF) as u16
}

/// Expands bf16 bits back to f32 (exact: the mantissa tail is zero).
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// An f32 row-major matrix stored as bf16.
pub struct Bf16Rows {
    data: Vec<u16>,
    rows: usize,
    cols: usize,
}

impl Bf16Rows {
    /// Converts row-major `w` (`rows × cols`) to bf16.
    pub fn convert(w: &[f32], rows: usize, cols: usize) -> Bf16Rows {
        assert_eq!(w.len(), rows * cols, "convert shape mismatch");
        Bf16Rows {
            data: w.iter().map(|&v| f32_to_bf16(v)).collect(),
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `dot(decode(row r), x)` in f32.
    pub fn dot(&self, r: usize, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.cols);
        let row = &self.data[r * self.cols..(r + 1) * self.cols];
        let mut acc = 0.0f32;
        for (&q, &xv) in row.iter().zip(x.iter()) {
            acc += bf16_to_f32(q) * xv;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i8_roundtrip_error_bounded_by_half_scale() {
        let w: Vec<f32> = (0..64).map(|i| ((i * 37 % 17) as f32 - 8.0) * 0.3).collect();
        let q = QuantizedRows::quantize(&w, 4, 16);
        let mut row = vec![0.0f32; 16];
        for r in 0..4 {
            q.decode_row_into(r, &mut row);
            let bound = q.scale(r) / 2.0 + 1e-7;
            for (j, (&orig, &dec)) in w[r * 16..(r + 1) * 16].iter().zip(row.iter()).enumerate() {
                assert!(
                    (orig - dec).abs() <= bound,
                    "row {r} col {j}: |{orig} - {dec}| > {bound}"
                );
            }
        }
    }

    #[test]
    fn zero_row_stays_zero() {
        let q = QuantizedRows::quantize(&[0.0; 8], 2, 4);
        assert_eq!(q.scale(0), 0.0);
        assert_eq!(q.dot(0, &[1.0, 2.0, 3.0, 4.0]), 0.0);
    }

    #[test]
    fn bf16_roundtrip_exact_for_representable_values() {
        for v in [0.0f32, 1.0, -2.5, 0.15625, 1024.0] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)), v);
        }
    }

    #[test]
    fn bf16_relative_error_small() {
        for i in 1..200 {
            let v = i as f32 * 0.137 - 13.0;
            let d = bf16_to_f32(f32_to_bf16(v));
            assert!((v - d).abs() <= v.abs() * 0.005 + 1e-6, "{v} -> {d}");
        }
    }
}
