//! `mbssl-tensor` — a compact, self-contained deep-learning substrate.
//!
//! This crate exists because the Rust DL ecosystem does not (yet) offer a
//! stable, dependency-light engine for the model class the `mbssl`
//! workspace reproduces. It provides:
//!
//! - dense row-major f32 [`Tensor`]s with NumPy-style broadcasting
//!   ([`shape`]),
//! - reverse-mode autodiff with a dynamic tape ([`autograd`]),
//! - threaded CPU kernels ([`kernels`]) backed by a persistent worker
//!   pool ([`pool`]),
//! - fused transformer-block ops ([`fused`]): one-pass SDPA attention,
//!   bias+GELU and residual+layernorm with hand-written backwards,
//! - an NN layer library ([`nn`]): linear, embedding, layer-norm,
//!   multi-head attention, transformer blocks, GRU,
//! - optimizers and LR schedules ([`optim`]),
//! - seeded initializers ([`init`]) and binary checkpointing
//!   ([`serialize`]).
//!
//! # Quick example
//! ```
//! use mbssl_tensor::Tensor;
//!
//! let w = Tensor::from_slice(&[1.0, 2.0], [2, 1]).requires_grad();
//! let x = Tensor::from_slice(&[3.0, 4.0], [1, 2]);
//! let loss = x.matmul(&w).sum_all(); // 3·1 + 4·2 = 11
//! loss.backward();
//! assert_eq!(loss.item(), 11.0);
//! assert_eq!(w.grad().unwrap(), vec![3.0, 4.0]);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod autograd;
pub mod fused;
pub mod init;
pub mod kernels;
pub mod nn;
mod ops;
pub mod optim;
pub mod pool;
pub mod quant;
pub mod serialize;
pub mod shape;
pub mod sharded;
pub mod simd;
pub mod tensor;

pub use autograd::no_grad;
pub use ops::dropout_mask;
pub use shape::Shape;
pub use tensor::Tensor;

/// Re-export of the workspace telemetry crate, so tensor-layer callers can
/// open spans and read traces without adding a direct dependency.
pub use mbssl_telemetry as telemetry;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// End-to-end: a tiny MLP learns XOR, proving the full
    /// forward/backward/optimizer loop works.
    #[test]
    fn mlp_learns_xor() {
        let mut rng = StdRng::seed_from_u64(17);
        let l1 = nn::Linear::new(2, 8, &mut rng);
        let l2 = nn::Linear::new(8, 1, &mut rng);
        let mut params = nn::ParamMap::new();
        use nn::Module;
        l1.collect_params("l1", &mut params);
        l2.collect_params("l2", &mut params);
        let mut opt = optim::Adam::new(params.tensors(), 0.05);

        let x = Tensor::from_slice(&[0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], [4, 2]);
        let labels = [0.0f32, 1.0, 1.0, 0.0];

        let mut final_loss = f32::INFINITY;
        for _ in 0..400 {
            use optim::Optimizer;
            opt.zero_grad();
            let logits = l2.forward(&l1.forward(&x).tanh()).flatten();
            let loss = logits.bce_with_logits(&labels);
            final_loss = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(final_loss < 0.1, "XOR loss did not converge: {final_loss}");

        // Check predictions.
        let logits = no_grad(|| l2.forward(&l1.forward(&x).tanh()).flatten());
        let preds: Vec<f32> = logits.to_vec().iter().map(|&v| if v > 0.0 { 1.0 } else { 0.0 }).collect();
        assert_eq!(preds, labels);
    }

    /// A longer chain through many op types keeps gradients finite and the
    /// graph intact.
    #[test]
    fn deep_chain_stays_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::normal([4, 8], 0.0, 1.0, &mut rng).requires_grad();
        let mut y = x.clone();
        for _ in 0..10 {
            y = y.tanh().mul_scalar(1.1).add_scalar(0.01);
        }
        let loss = y.square().mean_all();
        loss.backward();
        assert!(loss.item().is_finite());
        assert!(x.grad().unwrap().iter().all(|g| g.is_finite()));
    }

    /// no_grad forward passes record no history (memory-safety of the tape
    /// aside, this is the eval-speed contract).
    #[test]
    fn no_grad_produces_untracked_outputs() {
        let w = Tensor::ones([2, 2]).requires_grad();
        let x = Tensor::ones([1, 2]);
        let y = no_grad(|| x.matmul(&w));
        assert!(!y.is_tracked());
        assert!(y.is_leaf());
    }
}
