//! Parity gates for the graph-free inference engine (DESIGN.md §13).
//!
//! The contract under test:
//! - the compiled f32 engine scores **bit-for-bit identically** to the
//!   autograd model's `score_batch`, across both backbones, both interest
//!   extractors, and varied batch shapes;
//! - `evaluate` / `recommend_top_n` (which route through the engine by
//!   default) return exactly what the `_reference` paths return;
//! - [`Mbmissl::prepare_inference`] honors the `MBSSL_INFER` gate;
//! - the quantized catalog scorers (i8, bf16) keep HR@5/10 and NDCG@5/10
//!   within `MBSSL_QUANT_TOL` of the f32 engine.

use std::collections::HashSet;

use mbssl_core::{
    evaluate, evaluate_reference, recommend_top_n, recommend_top_n_reference, BehaviorSchema,
    EncoderKind, ExtractorKind, InferenceModel, Mbmissl, ModelConfig, SequentialRecommender,
};
use mbssl_data::preprocess::{leave_one_out, SplitConfig};
use mbssl_data::sampler::EvalCandidates;
use mbssl_data::synthetic::SyntheticConfig;
use mbssl_data::{Dataset, ItemId};
use mbssl_metrics::RankingMetrics;
use mbssl_tensor::quant::{self, QuantMode};

fn tiny_model(encoder: EncoderKind, extractor: ExtractorKind) -> (Mbmissl, Dataset) {
    let g = SyntheticConfig::taobao_like(31).scaled(0.05).generate();
    let schema = BehaviorSchema::new(g.dataset.behaviors.clone(), g.dataset.target_behavior);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        num_layers: 2,
        ffn_hidden: 32,
        num_interests: 2,
        extractor_hidden: 16,
        max_seq_len: 20,
        dropout: 0.1,
        encoder,
        extractor,
        ..ModelConfig::default()
    };
    (Mbmissl::new(g.dataset.num_items, schema, config), g.dataset)
}

const VARIANTS: [(EncoderKind, ExtractorKind); 4] = [
    (EncoderKind::Hypergraph, ExtractorKind::SelfAttentive),
    (EncoderKind::Hypergraph, ExtractorKind::DynamicRouting),
    (EncoderKind::Transformer, ExtractorKind::SelfAttentive),
    (EncoderKind::Transformer, ExtractorKind::DynamicRouting),
];

#[test]
fn engine_scores_bit_identical_to_autograd_model() {
    for (encoder, extractor) in VARIANTS {
        let (model, dataset) = tiny_model(encoder, extractor);
        let engine = InferenceModel::compile_with_mode(&model, QuantMode::Off);
        // Varied batch sizes (incl. 1) and candidate-list lengths; long
        // histories exercise the max_seq_len truncation.
        for (batch, c) in [(1usize, 1usize), (1, 10), (3, 7), (8, 25)] {
            let histories: Vec<_> = dataset.sequences.iter().take(batch).collect();
            let cands: Vec<Vec<ItemId>> = (0..batch)
                .map(|b| (1..=c as ItemId).map(|i| (i + b as ItemId) % 40 + 1).collect())
                .collect();
            let cand_refs: Vec<&[ItemId]> = cands.iter().map(|l| l.as_slice()).collect();
            let reference = model.score_batch(&histories, &cand_refs);
            let got = engine.score_batch(&histories, &cand_refs);
            assert_eq!(
                reference, got,
                "score drift for {encoder:?}/{extractor:?} batch={batch} c={c}"
            );
        }
    }
}

#[test]
fn engine_evaluate_matches_reference_exactly() {
    for (encoder, extractor) in VARIANTS {
        let (model, dataset) = tiny_model(encoder, extractor);
        let split = leave_one_out(
            &dataset,
            &SplitConfig {
                max_seq_len: 20,
                ..Default::default()
            },
        );
        let sampler = mbssl_data::sampler::NegativeSampler::from_dataset(&dataset);
        let instances = &split.test[..split.test.len().min(24)];
        let cands = EvalCandidates::build(instances, &sampler, 20, 9);
        // `evaluate` routes through prepare_inference (engine on by
        // default); the reference forces the autograd path.
        let via_engine = evaluate(&model, instances, &cands, 7);
        let reference = evaluate_reference(&model, instances, &cands, 7);
        assert_eq!(
            via_engine.ranks, reference.ranks,
            "evaluate drift for {encoder:?}/{extractor:?}"
        );
    }
}

#[test]
fn engine_top_n_matches_chunked_reference_exactly() {
    for (encoder, extractor) in VARIANTS {
        let (model, dataset) = tiny_model(encoder, extractor);
        let history = &dataset.sequences[0];
        let exclude: HashSet<ItemId> = history.items.iter().copied().collect();
        let n = 10;
        let via_engine = recommend_top_n(&model, history, dataset.num_items, n, &exclude, 64);
        let reference =
            recommend_top_n_reference(&model, history, dataset.num_items, n, &exclude, 64);
        // Bit-identical scores AND identical tie-breaking.
        assert_eq!(
            via_engine, reference,
            "top-n drift for {encoder:?}/{extractor:?}"
        );
    }
}

#[test]
fn prepare_inference_honors_env_gate() {
    let (model, _) = tiny_model(EncoderKind::Transformer, ExtractorKind::SelfAttentive);
    let compiled = model.prepare_inference();
    // The gate is process-cached, so assert consistency with it rather
    // than mutating the environment: CI runs this suite under both
    // MBSSL_INFER=off and the default to cover both branches.
    assert_eq!(
        compiled.is_some(),
        mbssl_core::infer::enabled(),
        "prepare_inference disagrees with the MBSSL_INFER gate"
    );
}

/// Full-catalog ranking metrics for one engine: rank of each test target
/// in the engine's catalog ordering (history items excluded).
fn catalog_metrics(engine: &InferenceModel, dataset: &Dataset) -> RankingMetrics {
    let split = leave_one_out(
        dataset,
        &SplitConfig {
            max_seq_len: 20,
            ..Default::default()
        },
    );
    let instances = &split.test[..split.test.len().min(32)];
    let mut ranks = Vec::new();
    for inst in instances {
        let exclude: HashSet<ItemId> = inst
            .history
            .items
            .iter()
            .copied()
            .filter(|&i| i != inst.target)
            .collect();
        let recs = engine
            .recommend_catalog(&inst.history, dataset.num_items, dataset.num_items, &exclude)
            .expect("engine always has a catalog path");
        let rank = recs
            .iter()
            .position(|r| r.item == inst.target)
            .expect("target must appear in the full catalog ranking");
        ranks.push(rank);
    }
    RankingMetrics::from_ranks(&ranks)
}

#[test]
fn quantized_catalog_ranking_stays_within_drift_tolerance() {
    let tol = quant::drift_tol();
    for (encoder, extractor) in [
        (EncoderKind::Hypergraph, ExtractorKind::SelfAttentive),
        (EncoderKind::Transformer, ExtractorKind::DynamicRouting),
    ] {
        let (model, dataset) = tiny_model(encoder, extractor);
        let f32_engine = InferenceModel::compile_with_mode(&model, QuantMode::Off);
        let base = catalog_metrics(&f32_engine, &dataset);
        for qmode in [QuantMode::I8, QuantMode::Bf16] {
            let q_engine = InferenceModel::compile_with_mode(&model, qmode);
            let q = catalog_metrics(&q_engine, &dataset);
            for (metric, a, b) in [
                ("HR@5", base.hr5, q.hr5),
                ("HR@10", base.hr10, q.hr10),
                ("NDCG@5", base.ndcg5, q.ndcg5),
                ("NDCG@10", base.ndcg10, q.ndcg10),
            ] {
                assert!(
                    (a - b).abs() <= tol,
                    "{qmode:?} {metric} drift {:.4} exceeds tol {tol} \
                     for {encoder:?}/{extractor:?} (f32 {a:.4} vs quant {b:.4})",
                    (a - b).abs()
                );
            }
        }
    }
}
