//! Property-based tests on the SSL objectives' mathematical invariants.

use mbssl_core::ssl::{alignment_loss, augmentation_loss, disentanglement_loss, info_nce};
use mbssl_tensor::Tensor;
use proptest::prelude::*;

fn matrix(n: usize, d: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, n * d..=n * d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// InfoNCE is a cross-entropy: always non-negative and finite.
    #[test]
    fn info_nce_non_negative(data in matrix(4, 3), pos in matrix(4, 3), t in 0.05f32..1.0) {
        let a = Tensor::from_vec(data, [4, 3]);
        let p = Tensor::from_vec(pos, [4, 3]);
        let loss = info_nce(&a, &p, t, &[1.0; 4]).item();
        prop_assert!(loss.is_finite());
        prop_assert!(loss >= -1e-5, "negative InfoNCE: {loss}");
    }

    /// Perfect self-alignment is (near-)optimal: loss(a, a) ≤ loss(a, b).
    #[test]
    fn info_nce_self_alignment_is_best(data in matrix(4, 3), other in matrix(4, 3), t in 0.05f32..0.5) {
        let a = Tensor::from_vec(data, [4, 3]);
        let b = Tensor::from_vec(other, [4, 3]);
        let self_loss = info_nce(&a, &a, t, &[1.0; 4]).item();
        let cross_loss = info_nce(&a, &b, t, &[1.0; 4]).item();
        prop_assert!(self_loss <= cross_loss + 1e-3,
            "self {self_loss} worse than cross {cross_loss}");
    }

    /// All-invalid rows always produce exactly zero.
    #[test]
    fn info_nce_zero_when_all_invalid(data in matrix(3, 2), pos in matrix(3, 2)) {
        let a = Tensor::from_vec(data, [3, 2]);
        let p = Tensor::from_vec(pos, [3, 2]);
        prop_assert_eq!(info_nce(&a, &p, 0.2, &[0.0; 3]).item(), 0.0);
    }

    /// Alignment loss is finite and non-negative for arbitrary interest
    /// sets, and exactly zero when every user is masked out.
    #[test]
    fn alignment_loss_bounds(aux in matrix(6, 4), tgt in matrix(6, 4)) {
        let a = Tensor::from_vec(aux, [2, 3, 4]);
        let t = Tensor::from_vec(tgt, [2, 3, 4]);
        let loss = alignment_loss(&a, &t, 0.2, &[1.0, 1.0]).item();
        prop_assert!(loss.is_finite() && loss >= -1e-5);
        prop_assert_eq!(alignment_loss(&a, &t, 0.2, &[0.0, 0.0]).item(), 0.0);
    }

    /// Augmentation loss is symmetric in its two views.
    #[test]
    fn augmentation_loss_symmetric(v1 in matrix(4, 3), v2 in matrix(4, 3)) {
        let a = Tensor::from_vec(v1, [4, 3]);
        let b = Tensor::from_vec(v2, [4, 3]);
        let ab = augmentation_loss(&a, &b, 0.2).item();
        let ba = augmentation_loss(&b, &a, 0.2).item();
        prop_assert!((ab - ba).abs() < 1e-4, "{ab} vs {ba}");
    }

    /// Disentanglement is a mean of squared cosines: within [0, 1].
    #[test]
    fn disentanglement_in_unit_interval(z in matrix(6, 4)) {
        // Shift away from zero vectors to keep cosines well-defined.
        let shifted: Vec<f32> = z.iter().map(|v| v + 0.05).collect();
        let t = Tensor::from_vec(shifted, [2, 3, 4]);
        let loss = disentanglement_loss(&t).item();
        prop_assert!((-1e-5..=1.0 + 1e-5).contains(&(loss as f64)), "loss {loss}");
    }

    /// Lower temperature sharpens InfoNCE: misaligned pairs get punished
    /// at least as hard (checked on orthogonal anchors).
    #[test]
    fn temperature_monotonicity_on_shifted_positives(seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 4;
        let d = 8;
        let data: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = Tensor::from_vec(data.clone(), [n, d]);
        // Positives = anchors shifted by one row (fully misaligned).
        let mut shifted = data[d..].to_vec();
        shifted.extend_from_slice(&data[..d]);
        let p = Tensor::from_vec(shifted, [n, d]);
        let sharp = info_nce(&a, &p, 0.1, &[1.0; 4]).item();
        let soft = info_nce(&a, &p, 1.0, &[1.0; 4]).item();
        prop_assert!(sharp >= soft - 1e-4, "sharp {sharp} < soft {soft}");
    }
}
