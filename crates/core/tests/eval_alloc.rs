//! Pins the evaluator's buffer-reuse contract: `evaluate` rents exactly
//! ONE pooled scoring buffer per call — the shared flat score matrix —
//! regardless of how many scoring chunks the batch size induces. Before
//! the flat-buffer evaluator, every chunk materialized its own
//! `Vec<Vec<f32>>`, so allocation traffic scaled with `n / batch_size`.
//!
//! This lives in its own integration-test binary (own process) because the
//! allocator counters are process-global and would race with unrelated
//! tests in a shared harness.

use mbssl_core::{evaluate, SequentialRecommender};
use mbssl_data::preprocess::EvalInstance;
use mbssl_data::sampler::EvalCandidates;
use mbssl_data::{Behavior, ItemId, Sequence};
use mbssl_tensor::alloc;

/// Non-tensor scorer: contributes zero pooled allocations itself, so every
/// counted request is the evaluator's own.
struct ByIdScorer;
impl SequentialRecommender for ByIdScorer {
    fn name(&self) -> String {
        "by-id".into()
    }
    fn score_batch(&self, _h: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        candidates
            .iter()
            .map(|l| l.iter().map(|&i| i as f32).collect())
            .collect()
    }
}

fn demo(n: usize) -> (Vec<EvalInstance>, EvalCandidates) {
    let mut instances = Vec::new();
    let mut lists = Vec::new();
    for u in 0..n {
        let mut h = Sequence::new();
        h.push(u as u32 % 7 + 1, Behavior::Click);
        instances.push(EvalInstance {
            user: u as u32,
            history: h,
            target: 5,
        });
        lists.push(vec![5, 6, 7, 8]);
    }
    (instances, EvalCandidates { lists })
}

#[test]
fn evaluate_rents_one_buffer_regardless_of_chunk_count() {
    if !alloc::enabled() {
        // MBSSL_ALLOC=off: nothing is counted; the contract is untestable.
        return;
    }
    let (instances, cands) = demo(64);
    // Warm-up so the pool holds a buffer of the right size class and the
    // measured calls are steady-state.
    evaluate(&ByIdScorer, &instances, &cands, 8);

    let requests_during = |batch_size: usize| {
        let before = alloc::stats();
        evaluate(&ByIdScorer, &instances, &cands, batch_size);
        let after = alloc::stats();
        (after.hits + after.misses) - (before.hits + before.misses)
    };
    let many_chunks = requests_during(1); // 64 scoring chunks
    let one_chunk = requests_during(64); // 1 scoring chunk
    assert_eq!(
        many_chunks, one_chunk,
        "per-chunk allocations crept back into evaluate"
    );
    assert_eq!(many_chunks, 1, "expected exactly the flat score buffer");
}
