//! Telemetry regression tests: tracing must never change training results,
//! and a JSONL trace of a real training run must be parseable and cover
//! every instrumented layer (trainer, evaluator, kernels, allocator, pool).
//!
//! The trace mode is process-global, so every test that touches it holds
//! `MODE_LOCK` and restores `TraceMode::Off` before releasing it.

use std::sync::Mutex;

use mbssl_core::{
    BehaviorSchema, Mbmissl, ModelConfig, TrainConfig, TrainableRecommender, Trainer,
};
use mbssl_data::preprocess::{leave_one_out, SplitConfig};
use mbssl_data::sampler::NegativeSampler;
use mbssl_data::synthetic::SyntheticConfig;
use mbssl_telemetry as telemetry;
use serde::value::Value;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Trains a small MBMISSL for 2 epochs on synthetic data under the given
/// trace mode; returns the final parameters and per-epoch loss history.
fn train_once(mode: telemetry::TraceMode) -> (Vec<Vec<f32>>, Vec<f32>) {
    train_once_in(mode, None)
}

/// Like [`train_once`] but additionally writing a run-ledger directory.
fn train_once_in(
    mode: telemetry::TraceMode,
    run_dir: Option<String>,
) -> (Vec<Vec<f32>>, Vec<f32>) {
    telemetry::set_mode(mode);
    let g = SyntheticConfig::taobao_like(77).scaled(0.05).generate();
    let split = leave_one_out(&g.dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&g.dataset);
    let schema = BehaviorSchema::new(g.dataset.behaviors.clone(), g.dataset.target_behavior);
    let model = Mbmissl::new(
        g.dataset.num_items,
        schema,
        ModelConfig {
            dim: 16,
            heads: 2,
            num_layers: 1,
            ffn_hidden: 32,
            num_interests: 2,
            extractor_hidden: 16,
            seed: 9,
            ..ModelConfig::default()
        },
    );
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 64,
        num_negatives: 8,
        seed: 9,
        verbose: false,
        run_dir,
        ..TrainConfig::default()
    });
    let report = trainer.fit(&model, &split, &sampler);
    let params = model.params().iter().map(|p| p.to_vec()).collect();
    let losses = report.history.iter().map(|e| e.train_loss).collect();
    (params, losses)
}

fn obj_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, val)| val),
        _ => None,
    }
}

fn as_str<'a>(v: &'a Value) -> Option<&'a str> {
    match v {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn as_num(v: &Value) -> Option<f64> {
    match v {
        Value::Num(n) => Some(*n),
        _ => None,
    }
}

/// The tentpole contract in one test: training with `MBSSL_TRACE=off` and
/// with a JSONL trace attached produces bit-for-bit identical parameters
/// and losses, and the trace itself is valid JSONL covering at least 8
/// distinct span labels across all instrumented layers.
#[test]
fn jsonl_trace_is_valid_and_does_not_perturb_training() {
    let _guard = MODE_LOCK.lock().unwrap();
    let trace_path = std::env::temp_dir().join(format!(
        "mbssl_trace_test_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&trace_path);

    let (params_off, losses_off) = train_once(telemetry::TraceMode::Off);
    let (params_on, losses_on) = train_once(telemetry::TraceMode::Jsonl(
        trace_path.to_string_lossy().into_owned(),
    ));
    // Write out everything the traced run accumulated, then disarm.
    telemetry::flush_section("train");
    telemetry::set_mode(telemetry::TraceMode::Off);

    // 1. Determinism: telemetry must not touch the RNG streams or change
    //    accumulation order anywhere in the training path.
    assert_eq!(losses_off, losses_on, "loss history diverged under tracing");
    assert_eq!(params_off.len(), params_on.len());
    for (i, (a, b)) in params_off.iter().zip(params_on.iter()).enumerate() {
        assert_eq!(a, b, "parameter tensor {i} diverged under tracing");
    }

    // 2. Trace validity: every line parses as a JSON object with a known
    //    record kind and well-formed fields.
    let text = std::fs::read_to_string(&trace_path).expect("trace file missing");
    let _ = std::fs::remove_file(&trace_path);
    let mut span_labels = Vec::new();
    let mut span_edges: Vec<(String, String, f64)> = Vec::new(); // (parent, label, total_ns)
    let mut gauge_labels = Vec::new();
    let mut saw_meta = false;
    for (lineno, line) in text.lines().enumerate() {
        let rec: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON: {e}\n{line}", lineno + 1));
        let kind = obj_get(&rec, "kind").and_then(as_str).expect("record without kind");
        match kind {
            "meta" => {
                saw_meta = true;
                assert!(obj_get(&rec, "git_rev").is_some(), "meta lacks git_rev");
                assert!(
                    obj_get(&rec, "cores").and_then(as_num).unwrap_or(0.0) >= 1.0,
                    "meta lacks a plausible core count"
                );
                let env = obj_get(&rec, "env").expect("meta lacks env stamp");
                for key in ["MBSSL_THREADS", "MBSSL_ALLOC", "MBSSL_FUSED", "MBSSL_TRACE"] {
                    assert!(obj_get(env, key).is_some(), "env stamp lacks {key}");
                }
            }
            "span" => {
                let label = obj_get(&rec, "label").and_then(as_str).expect("span without label");
                let count = obj_get(&rec, "count").and_then(as_num).expect("span without count");
                let total = obj_get(&rec, "total_ns").and_then(as_num).unwrap();
                let min = obj_get(&rec, "min_ns").and_then(as_num).unwrap();
                let max = obj_get(&rec, "max_ns").and_then(as_num).unwrap();
                assert!(obj_get(&rec, "bytes").is_some(), "span {label} lacks bytes");
                assert!(count >= 1.0, "span {label} with zero count");
                assert!(min <= max && max <= total.max(max), "span {label} ns ordering");
                let parent = obj_get(&rec, "parent")
                    .and_then(as_str)
                    .unwrap_or_else(|| panic!("span {label} lacks a parent field"));
                span_edges.push((parent.to_string(), label.to_string(), total));
                span_labels.push(label.to_string());
            }
            "counter" | "gauge" => {
                let label = obj_get(&rec, "label").and_then(as_str).expect("record without label");
                assert!(obj_get(&rec, "value").is_some(), "{kind} {label} lacks value");
                if kind == "gauge" {
                    gauge_labels.push(label.to_string());
                }
            }
            "progress" => {
                assert!(obj_get(&rec, "message").is_some(), "progress without message");
            }
            other => panic!("unknown record kind {other:?}"),
        }
    }
    assert!(saw_meta, "trace has no meta record");

    // 3. Coverage: ≥8 distinct span labels, spanning every layer the issue
    //    names — trainer, evaluation, kernels — plus allocator and pool
    //    state bridged in as gauges.
    span_labels.sort();
    span_labels.dedup();
    assert!(
        span_labels.len() >= 8,
        "expected ≥8 distinct span labels, got {}: {span_labels:?}",
        span_labels.len()
    );
    for prefix in ["trainer.", "eval.", "kernel."] {
        assert!(
            span_labels.iter().any(|l| l.starts_with(prefix)),
            "no {prefix}* span in trace: {span_labels:?}"
        );
    }
    assert!(
        span_labels.iter().any(|l| l == "trainer.train_step"),
        "trainer.train_step missing: {span_labels:?}"
    );
    for prefix in ["alloc.", "pool."] {
        assert!(
            gauge_labels.iter().any(|l| l.starts_with(prefix)),
            "no {prefix}* gauge in trace: {gauge_labels:?}"
        );
    }

    // 4. Hierarchy: spans carry their recording parent. The training step
    //    must be an edge under the epoch span, and kernels must appear as
    //    children of the step — not as roots.
    assert!(
        span_edges
            .iter()
            .any(|(p, l, _)| p == "trainer.epoch" && l == "trainer.train_step"),
        "trainer.train_step not recorded under trainer.epoch: {span_edges:?}"
    );
    assert!(
        span_edges
            .iter()
            .any(|(p, l, _)| p == "trainer.train_step" && l.starts_with("kernel.")),
        "no kernel.* edge under trainer.train_step: {span_edges:?}"
    );

    // 5. Self-time identity: children are strictly nested inside their
    //    parent's guard, so summed child time can exceed the label's own
    //    total only by clock jitter. `self = total − child` must be a
    //    meaningful (≥0 within 1%) quantity for the hot training span.
    let label_total = |label: &str| -> f64 {
        span_edges.iter().filter(|(_, l, _)| l == label).map(|(_, _, t)| t).sum()
    };
    let child_total = |label: &str| -> f64 {
        span_edges.iter().filter(|(p, _, _)| p == label).map(|(_, _, t)| t).sum()
    };
    for label in ["trainer.train_step", "trainer.epoch"] {
        let total = label_total(label);
        let child = child_total(label);
        assert!(total > 0.0, "{label} has zero total time");
        assert!(
            child <= total * 1.01,
            "{label}: child time {child} exceeds total {total} by more than 1% — \
             self-time (total − child) would be nonsense"
        );
    }
}

/// Training with the run ledger active is bit-for-bit identical to
/// training without it, and the run directory it leaves behind is complete
/// and parseable.
#[test]
fn run_ledger_does_not_perturb_training_and_roundtrips() {
    let _guard = MODE_LOCK.lock().unwrap();
    let run_dir = std::env::temp_dir().join(format!(
        "mbssl_ledger_run_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&run_dir);

    let (params_off, losses_off) = train_once(telemetry::TraceMode::Off);
    let (params_led, losses_led) = train_once_in(
        telemetry::TraceMode::Off,
        Some(run_dir.to_string_lossy().into_owned()),
    );
    telemetry::set_mode(telemetry::TraceMode::Off);

    assert_eq!(losses_off, losses_led, "loss history diverged under the run ledger");
    for (i, (a, b)) in params_off.iter().zip(params_led.iter()).enumerate() {
        assert_eq!(a, b, "parameter tensor {i} diverged under the run ledger");
    }

    let run = mbssl_core::read_run_dir(&run_dir).expect("run dir unreadable");
    let _ = std::fs::remove_dir_all(&run_dir);
    assert!(run.manifest.model.contains("MBMISSL"), "{}", run.manifest.model);
    assert_eq!(run.manifest.config.epochs, 2);
    assert!(run.manifest.cores >= 1);
    assert!(run.manifest.num_params > 0);
    assert!(run.manifest.train_instances > 0);
    assert!(run.manifest.val_instances > 0);
    assert_eq!(run.epochs.len(), losses_led.len());
    for (i, epoch) in run.epochs.iter().enumerate() {
        assert_eq!(epoch.epoch, i);
        assert_eq!(epoch.train_loss, losses_led[i] as f64, "epoch {i} loss mismatch");
        assert!(epoch.items_per_sec > 0.0, "epoch {i} has no throughput");
        assert!(epoch.seconds > 0.0);
        assert!(epoch.val_ndcg10.is_some(), "epoch {i} skipped validation");
        assert!(epoch.val_hr5.is_some() && epoch.val_ndcg5.is_some());
    }
    // The report renderer must at least show the run and its curves.
    let rendered = mbssl_core::render_report(&[run]);
    assert!(rendered.contains("NDCG@10"), "{rendered}");
    assert!(rendered.contains("items/s"), "{rendered}");
}

/// `progress` lines must land in the JSONL trace immediately (not at
/// flush), carrying the message verbatim.
#[test]
fn progress_lines_are_recorded_in_jsonl_traces() {
    let _guard = MODE_LOCK.lock().unwrap();
    let trace_path = std::env::temp_dir().join(format!(
        "mbssl_progress_test_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&trace_path);
    telemetry::set_mode(telemetry::TraceMode::Jsonl(
        trace_path.to_string_lossy().into_owned(),
    ));
    telemetry::progress("epoch 0: loss 1.2345");
    telemetry::set_mode(telemetry::TraceMode::Off);

    let text = std::fs::read_to_string(&trace_path).expect("trace file missing");
    let _ = std::fs::remove_file(&trace_path);
    let rec: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
    assert_eq!(obj_get(&rec, "kind").and_then(as_str), Some("progress"));
    assert_eq!(
        obj_get(&rec, "message").and_then(as_str),
        Some("epoch 0: loss 1.2345")
    );
}
