//! Gates for two-stage retrieval (DESIGN.md §14).
//!
//! The contract under test:
//! - a full probe (`nprobe == nlist`) reproduces the exhaustive ranking
//!   **bit-for-bit** — same scores, same item-id tie-breaking — because the
//!   re-ranker reuses the exhaustive per-item arithmetic;
//! - a partial probe returns exactly the exhaustive ranking restricted to
//!   its retrieved candidate set (scores bit-identical per item);
//! - at the default `nlist`/`nprobe`, recall@10 against the exhaustive
//!   top-10 stays ≥ 0.95 on a topic-clustered catalog (the pinned metric);
//! - corrupt, truncated, or version-mismatched index files fail to load
//!   with a clear [`AnnError`] instead of producing a broken index, and a
//!   geometry mismatch is rejected at attach time;
//! - when the probe retrieves fewer rankable candidates than requested,
//!   ranking falls back to the exhaustive path (never a short result);
//! - equal-score items order identically (ascending id) across reference
//!   chunk sizes, the engine's exhaustive path, and the ANN boundary
//!   (property-tested with duplicated embedding rows).
//!
//! Every assertion also holds under ambient `MBSSL_ANN=off` (the probe is
//! skipped and both sides become the exhaustive path), so CI can run this
//! suite under both settings.

use std::collections::HashSet;

use mbssl_core::{
    ann, recommend_top_n_reference, AnnError, BehaviorSchema, EncoderKind, ExtractorKind,
    InferenceModel, IvfIndex, Mbmissl, ModelConfig, SequentialRecommender, TrainableRecommender,
};
use mbssl_data::synthetic::SyntheticConfig;
use mbssl_data::{Dataset, ItemId};
use proptest::prelude::*;

/// The tiny serving model of `infer_parity.rs`: ~400-item taobao-like
/// catalog, dim 16, two interests.
fn tiny_model(encoder: EncoderKind, extractor: ExtractorKind) -> (Mbmissl, Dataset) {
    let g = SyntheticConfig::taobao_like(31).scaled(0.05).generate();
    let schema = BehaviorSchema::new(g.dataset.behaviors.clone(), g.dataset.target_behavior);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        num_layers: 2,
        ffn_hidden: 32,
        num_interests: 2,
        extractor_hidden: 16,
        max_seq_len: 20,
        dropout: 0.1,
        encoder,
        extractor,
        ..ModelConfig::default()
    };
    (Mbmissl::new(g.dataset.num_items, schema, config), g.dataset)
}

/// splitmix64, for deterministic noise without an RNG dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_noise(state: &mut u64) -> f32 {
    (splitmix(state) >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
}

/// Overwrites the model's item-embedding table with topic-clustered rows
/// (topic center + small noise), standing in for the structure training
/// produces. Row 0 (padding) stays zero.
fn clusterize_item_table(model: &Mbmissl, item_topic: &[usize], dim: usize, seed: u64) {
    let params = model.named_params();
    let table = params
        .get("mbmissl.input.item_emb.weight")
        .expect("item table param");
    let mut data = table.data_mut();
    let num_topics = item_topic.iter().filter(|&&t| t != usize::MAX).max().unwrap() + 1;
    let mut state = seed;
    let centers: Vec<f32> = (0..num_topics * dim).map(|_| unit_noise(&mut state)).collect();
    for (item, &topic) in item_topic.iter().enumerate().skip(1) {
        let row = &mut data[item * dim..][..dim];
        for (j, v) in row.iter_mut().enumerate() {
            *v = centers[topic * dim + j] + 0.05 * unit_noise(&mut state);
        }
    }
}

fn index_for(engine: &InferenceModel, nlist: usize, seed: u64) -> IvfIndex {
    engine.build_index_with(nlist, seed)
}

// --- bit parity across the ANN boundary ---------------------------------

#[test]
fn full_probe_matches_exhaustive_bit_for_bit() {
    for (encoder, extractor) in [
        (EncoderKind::Hypergraph, ExtractorKind::SelfAttentive),
        (EncoderKind::Transformer, ExtractorKind::DynamicRouting),
    ] {
        let (model, dataset) = tiny_model(encoder, extractor);
        let exhaustive = InferenceModel::compile(&model);
        let mut probed = InferenceModel::compile(&model);
        let index = index_for(&probed, 16, 7);
        let nlist = index.nlist();
        probed
            .attach_index_with(index, nlist) // full probe
            .expect("geometry matches");
        for user in [0usize, 3, 11] {
            let history = &dataset.sequences[user];
            let exclude: HashSet<ItemId> = history.items.iter().copied().collect();
            let a = exhaustive
                .recommend_catalog(history, dataset.num_items, 10, &exclude)
                .unwrap();
            let b = probed
                .recommend_catalog(history, dataset.num_items, 10, &exclude)
                .unwrap();
            assert_eq!(a, b, "full-probe drift for {encoder:?}/{extractor:?} user {user}");
        }
    }
}

#[test]
fn partial_probe_scores_are_bit_identical_per_item() {
    let (model, dataset) = tiny_model(EncoderKind::Transformer, ExtractorKind::SelfAttentive);
    let exhaustive = InferenceModel::compile(&model);
    let mut probed = InferenceModel::compile(&model);
    let index = index_for(&probed, 24, 5);
    probed.attach_index_with(index, 3).expect("geometry matches");
    let history = &dataset.sequences[1];
    let exclude = HashSet::new();
    // Exhaustive scores for every item, by id.
    let full = exhaustive
        .recommend_catalog(history, dataset.num_items, dataset.num_items, &exclude)
        .unwrap();
    let ann_recs = probed
        .recommend_catalog(history, dataset.num_items, 10, &exclude)
        .unwrap();
    assert_eq!(ann_recs.len(), 10);
    for rec in &ann_recs {
        let reference = full
            .iter()
            .find(|r| r.item == rec.item)
            .expect("every item has an exhaustive score");
        assert_eq!(
            reference.score.to_bits(),
            rec.score.to_bits(),
            "re-ranked score of item {} differs from exhaustive",
            rec.item
        );
    }
    // The ANN result is sorted by the same total order as the exhaustive
    // ranking (score desc, then item id asc).
    for w in ann_recs.windows(2) {
        assert!(
            w[0].score > w[1].score || (w[0].score == w[1].score && w[0].item < w[1].item),
            "ANN ordering violates the RankKey total order"
        );
    }
}

#[test]
fn score_candidates_matches_exhaustive_scores() {
    let (model, dataset) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::DynamicRouting);
    let engine = InferenceModel::compile(&model);
    let history = &dataset.sequences[2];
    let full = engine
        .recommend_catalog(history, dataset.num_items, dataset.num_items, &HashSet::new())
        .unwrap();
    let candidates: Vec<ItemId> = (1..=dataset.num_items as ItemId).step_by(7).collect();
    let scores = engine.score_candidates(history, &candidates);
    assert_eq!(scores.len(), candidates.len());
    for (&id, &s) in candidates.iter().zip(scores.iter()) {
        let reference = full.iter().find(|r| r.item == id).unwrap();
        assert_eq!(reference.score.to_bits(), s.to_bits(), "item {id}");
    }
}

// --- recall gate at the default knobs -----------------------------------

#[test]
fn recall_at_10_meets_gate_at_default_knobs() {
    let g = SyntheticConfig::taobao_like(31).scaled(0.05).generate();
    let dataset = g.dataset;
    let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        num_layers: 2,
        ffn_hidden: 32,
        num_interests: 2,
        extractor_hidden: 16,
        max_seq_len: 20,
        dropout: 0.1,
        encoder: EncoderKind::Transformer,
        extractor: ExtractorKind::SelfAttentive,
        ..ModelConfig::default()
    };
    let model = Mbmissl::new(dataset.num_items, schema, config);
    // A trained item table is topic-clustered; emulate that structure so
    // the gate measures the index, not an untrained random catalog.
    clusterize_item_table(&model, &g.truth.item_topic, 16, 0xC0FFEE);
    let exhaustive = InferenceModel::compile(&model);
    let mut probed = InferenceModel::compile(&model);
    let index = probed.build_index(9);
    let (nlist, nprobe) = (index.nlist(), ann::default_nprobe(index.nlist()));
    assert_eq!(nlist, ann::default_nlist(dataset.num_items));
    probed.attach_index(index).expect("geometry matches");

    let users = 40.min(dataset.sequences.len());
    let mut hits = 0usize;
    let mut total = 0usize;
    for user in 0..users {
        let history = &dataset.sequences[user];
        let exclude: HashSet<ItemId> = history.items.iter().copied().collect();
        let truth = exhaustive
            .recommend_catalog(history, dataset.num_items, 10, &exclude)
            .unwrap();
        let got = probed
            .recommend_catalog(history, dataset.num_items, 10, &exclude)
            .unwrap();
        let got_ids: HashSet<ItemId> = got.iter().map(|r| r.item).collect();
        hits += truth.iter().filter(|r| got_ids.contains(&r.item)).count();
        total += truth.len();
    }
    let recall = hits as f64 / total as f64;
    eprintln!("ann recall@10 = {recall:.4} (nlist={nlist}, nprobe={nprobe}, {users} users)");
    assert!(
        recall >= 0.95,
        "recall@10 {recall:.4} below the 0.95 gate at default nlist={nlist}/nprobe={nprobe}"
    );
}

/// Recall@10 sweep across `nprobe` at the default `nlist` — the source of
/// the EXPERIMENTS.md recall table. Not a gate (the default-knob gate
/// above is); run on demand with `--ignored --nocapture`.
#[test]
#[ignore = "prints the recall-vs-nprobe table; run with --ignored --nocapture"]
fn recall_vs_nprobe_sweep() {
    let g = SyntheticConfig::taobao_like(31).scaled(0.05).generate();
    let dataset = g.dataset;
    let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        num_layers: 2,
        ffn_hidden: 32,
        num_interests: 2,
        extractor_hidden: 16,
        max_seq_len: 20,
        dropout: 0.1,
        encoder: EncoderKind::Transformer,
        extractor: ExtractorKind::SelfAttentive,
        ..ModelConfig::default()
    };
    let num_interests = config.num_interests;
    let model = Mbmissl::new(dataset.num_items, schema, config);
    clusterize_item_table(&model, &g.truth.item_topic, 16, 0xC0FFEE);
    let exhaustive = InferenceModel::compile(&model);
    let nlist = ann::default_nlist(dataset.num_items);
    let users = 40.min(dataset.sequences.len());
    let truths: Vec<Vec<ItemId>> = (0..users)
        .map(|user| {
            let history = &dataset.sequences[user];
            let exclude: HashSet<ItemId> = history.items.iter().copied().collect();
            exhaustive
                .recommend_catalog(history, dataset.num_items, 10, &exclude)
                .unwrap()
                .iter()
                .map(|r| r.item)
                .collect()
        })
        .collect();
    eprintln!("nlist={nlist}, {} items, {users} users", dataset.num_items);
    eprintln!("{:>6} {:>10} {:>14}", "nprobe", "recall@10", "max cand frac");
    for nprobe in [1usize, 2, 3, 4, 5, 8, 12, 20, nlist] {
        let mut probed = InferenceModel::compile(&model);
        let index = probed.build_index(9);
        // Upper bound on the probed fraction of the catalog: K interests ×
        // nprobe lists × the mean list size (dedup only shrinks it).
        let frac = (num_interests as f64 * nprobe as f64 * index.stats().mean_len
            / dataset.num_items as f64)
            .min(1.0);
        probed.attach_index_with(index, nprobe).expect("geometry matches");
        let (mut hits, mut total) = (0usize, 0usize);
        for (user, truth) in truths.iter().enumerate() {
            let history = &dataset.sequences[user];
            let exclude: HashSet<ItemId> = history.items.iter().copied().collect();
            let got = probed
                .recommend_catalog(history, dataset.num_items, 10, &exclude)
                .unwrap();
            let got_ids: HashSet<ItemId> = got.iter().map(|r| r.item).collect();
            hits += truth.iter().filter(|id| got_ids.contains(id)).count();
            total += truth.len();
        }
        eprintln!(
            "{:>6} {:>10.4} {:>14.3}",
            nprobe,
            hits as f64 / total as f64,
            frac
        );
    }
}

// --- serialization failure modes ----------------------------------------

fn saved_index_bytes() -> (Vec<u8>, usize, usize) {
    let (model, dataset) = tiny_model(EncoderKind::Transformer, ExtractorKind::SelfAttentive);
    let engine = InferenceModel::compile(&model);
    let index = engine.build_index_with(8, 3);
    let mut buf = Vec::new();
    index.save(&mut buf).unwrap();
    (buf, dataset.num_items, 16)
}

#[test]
fn corrupt_magic_is_rejected() {
    let (mut buf, _, _) = saved_index_bytes();
    buf[0] = b'X';
    match IvfIndex::load(&mut buf.as_slice()) {
        Err(AnnError::BadMagic) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_rejected_with_the_version() {
    let (mut buf, _, _) = saved_index_bytes();
    buf[8..12].copy_from_slice(&99u32.to_le_bytes());
    match IvfIndex::load(&mut buf.as_slice()) {
        Err(AnnError::BadVersion(99)) => {}
        other => panic!("expected BadVersion(99), got {other:?}"),
    }
}

#[test]
fn truncated_file_is_rejected() {
    let (buf, _, _) = saved_index_bytes();
    // Every truncation point must fail — header, centroids, or lists.
    for cut in [4usize, 11, 40, buf.len() / 2, buf.len() - 1] {
        match IvfIndex::load(&mut &buf[..cut]) {
            Err(AnnError::Io(_)) | Err(AnnError::BadMagic) | Err(AnnError::Corrupt(_)) => {}
            other => panic!("truncation at {cut} bytes not rejected: {other:?}"),
        }
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let (mut buf, _, _) = saved_index_bytes();
    buf.push(0);
    match IvfIndex::load(&mut buf.as_slice()) {
        Err(AnnError::Corrupt(msg)) => assert!(msg.contains("trailing"), "msg: {msg}"),
        other => panic!("expected Corrupt(trailing), got {other:?}"),
    }
}

#[test]
fn out_of_range_item_id_is_rejected() {
    let (buf, num_items, _) = saved_index_bytes();
    let loaded = IvfIndex::load(&mut buf.as_slice()).unwrap();
    // Re-serialize with one id pushed out of range by patching the last
    // 4 bytes (the final id of the final list).
    let mut buf = Vec::new();
    loaded.save(&mut buf).unwrap();
    let n = buf.len();
    buf[n - 4..].copy_from_slice(&((num_items as u32) + 100).to_le_bytes());
    match IvfIndex::load(&mut buf.as_slice()) {
        Err(AnnError::Corrupt(msg)) => assert!(msg.contains("out-of-range"), "msg: {msg}"),
        other => panic!("expected Corrupt(out-of-range), got {other:?}"),
    }
}

#[test]
fn geometry_mismatch_is_rejected_at_attach() {
    let (model, _) = tiny_model(EncoderKind::Transformer, ExtractorKind::SelfAttentive);
    let mut engine = InferenceModel::compile(&model);
    // An index over a different (smaller) catalog with a different dim.
    let foreign_table = vec![0.25f32; (50 + 1) * 8];
    let foreign = IvfIndex::build(&foreign_table, 50, 8, 4, 1);
    match engine.attach_index(foreign) {
        Err(AnnError::Mismatch { .. }) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
    assert!(!engine.has_index(), "failed attach must not leave an index");
}

#[test]
fn load_failure_degrades_to_exhaustive() {
    // The warn-and-degrade contract as a library-level flow: a load error
    // leaves the engine index-free, and ranking still works exhaustively.
    let (model, dataset) = tiny_model(EncoderKind::Transformer, ExtractorKind::SelfAttentive);
    let mut engine = InferenceModel::compile(&model);
    let (mut buf, _, _) = saved_index_bytes();
    buf[0] = b'X';
    if let Ok(index) = IvfIndex::load(&mut buf.as_slice()) {
        engine.attach_index(index).ok();
    }
    assert!(!engine.has_index());
    let history = &dataset.sequences[0];
    let recs = engine
        .recommend_catalog(history, dataset.num_items, 10, &HashSet::new())
        .unwrap();
    assert_eq!(recs.len(), 10);
}

// --- fallback when the probe retrieves too few candidates ----------------

#[test]
fn short_probe_falls_back_to_exhaustive() {
    let (model, dataset) = tiny_model(EncoderKind::Transformer, ExtractorKind::SelfAttentive);
    let exhaustive = InferenceModel::compile(&model);
    let mut probed = InferenceModel::compile(&model);
    let index = index_for(&probed, 16, 7);
    probed.attach_index_with(index, 1).expect("geometry matches");
    let history = &dataset.sequences[4];
    let exclude = HashSet::new();
    // Asking for the full catalog: a 1-list probe cannot cover it, so the
    // engine must fall back and return the complete exhaustive ranking.
    let want = dataset.num_items;
    let a = exhaustive
        .recommend_catalog(history, dataset.num_items, want, &exclude)
        .unwrap();
    let b = probed
        .recommend_catalog(history, dataset.num_items, want, &exclude)
        .unwrap();
    assert_eq!(a.len(), dataset.num_items);
    assert_eq!(a, b, "fallback did not reproduce the exhaustive ranking");
}

// --- deterministic tie-breaking across the boundary ----------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Duplicated embedding rows force exact score ties; the ordering must
    /// be identical (ties broken by ascending item id) across reference
    /// chunk sizes, the engine's exhaustive one-GEMM path, and a full-probe
    /// ANN run — and any partial probe must keep equal-score runs sorted
    /// by id too.
    #[test]
    fn tie_breaking_is_identical_across_paths(
        seed in 0u64..50,
        chunk in prop::sample::select(vec![1usize, 7, 64, 512]),
        user in 0usize..8,
    ) {
        let (model, dataset) = tiny_model(EncoderKind::Transformer, ExtractorKind::SelfAttentive);
        // Collapse the catalog onto 16 distinct embedding rows: every item
        // shares its row with ~25 others, so ties are everywhere.
        {
            let params = model.named_params();
            let table = params.get("mbmissl.input.item_emb.weight").unwrap();
            let mut data = table.data_mut();
            let dim = 16usize;
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
            let distinct: Vec<f32> = (0..16 * dim).map(|_| unit_noise(&mut state)).collect();
            for item in 1..=dataset.num_items {
                let class = (splitmix(&mut state) % 16) as usize;
                data[item * dim..][..dim].copy_from_slice(&distinct[class * dim..][..dim]);
            }
        }
        let engine = InferenceModel::compile(&model);
        let history = &dataset.sequences[user];
        let exclude: HashSet<ItemId> = history.items.iter().copied().collect();
        let n = 25;
        let reference =
            recommend_top_n_reference(&model, history, dataset.num_items, n, &exclude, chunk);
        let via_engine = engine
            .recommend_catalog(history, dataset.num_items, n, &exclude)
            .unwrap();
        prop_assert_eq!(&reference, &via_engine, "exhaustive engine vs chunked reference");

        let mut full_probe = InferenceModel::compile(&model);
        let index = full_probe.build_index_with(8, seed);
        let nlist = index.nlist();
        full_probe.attach_index_with(index, nlist).unwrap();
        let via_full_probe = full_probe
            .recommend_catalog(history, dataset.num_items, n, &exclude)
            .unwrap();
        prop_assert_eq!(&reference, &via_full_probe, "full-probe ANN vs chunked reference");

        let mut partial = InferenceModel::compile(&model);
        let index = partial.build_index_with(8, seed);
        partial.attach_index_with(index, 2).unwrap();
        let via_partial = partial
            .recommend_catalog(history, dataset.num_items, n, &exclude)
            .unwrap();
        for w in via_partial.windows(2) {
            prop_assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].item < w[1].item),
                "partial probe broke the score-desc/id-asc total order"
            );
        }
    }
}
