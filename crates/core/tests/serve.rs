//! Serving-engine gates (DESIGN.md §15).
//!
//! The contract under test:
//! - micro-batched serving is **bit-identical** to sequential
//!   `recommend_top_n`, across both backbones, both extractors, batch
//!   sizes 1/4/16, and genuinely concurrent submitters (which also pins
//!   arena free-list isolation: a cross-request scratch leak would show
//!   up as score drift);
//! - the per-user interest cache serves identical results and is
//!   invalidated by exactly one ingest;
//! - a checkpoint hot-swap redirects new requests to the new engine
//!   (epoch-tagged) without disturbing the session store;
//! - the `MBSSL_ANN_BUDGET_US` policy degrades the probe width (counted)
//!   while responses stay well-formed;
//! - a non-empty re-rank chain composes with retrieval overscan.

use std::collections::HashSet;
use std::sync::Arc;

use mbssl_core::serve::{RerankChain, ServeConfig, Server, SessionStore, Stage};
use mbssl_core::{
    recommend_top_n, BehaviorSchema, EncoderKind, ExtractorKind, InferenceModel, Mbmissl,
    ModelConfig, Recommendation,
};
use mbssl_data::synthetic::SyntheticConfig;
use mbssl_data::{Behavior, Dataset, ItemId, UserId};
use mbssl_tensor::quant::QuantMode;

fn tiny_model(encoder: EncoderKind, extractor: ExtractorKind) -> (Mbmissl, Dataset) {
    tiny_model_seeded(encoder, extractor, None)
}

fn tiny_model_seeded(
    encoder: EncoderKind,
    extractor: ExtractorKind,
    seed: Option<u64>,
) -> (Mbmissl, Dataset) {
    let g = SyntheticConfig::taobao_like(31).scaled(0.05).generate();
    let schema = BehaviorSchema::new(g.dataset.behaviors.clone(), g.dataset.target_behavior);
    let mut config = ModelConfig {
        dim: 16,
        heads: 2,
        num_layers: 2,
        ffn_hidden: 32,
        num_interests: 2,
        extractor_hidden: 16,
        max_seq_len: 20,
        dropout: 0.1,
        encoder,
        extractor,
        ..ModelConfig::default()
    };
    if let Some(seed) = seed {
        config.seed = seed;
    }
    (Mbmissl::new(g.dataset.num_items, schema, config), g.dataset)
}

const VARIANTS: [(EncoderKind, ExtractorKind); 4] = [
    (EncoderKind::Hypergraph, ExtractorKind::SelfAttentive),
    (EncoderKind::Hypergraph, ExtractorKind::DynamicRouting),
    (EncoderKind::Transformer, ExtractorKind::SelfAttentive),
    (EncoderKind::Transformer, ExtractorKind::DynamicRouting),
];

/// The engine `recommend_top_n` itself serves through (same env gates),
/// falling back to a plain f32 compile when `MBSSL_INFER=off` — the
/// engine/reference parity suite pins those two paths bit-identical.
fn serving_engine(model: &Mbmissl) -> InferenceModel {
    if mbssl_core::infer::enabled() {
        InferenceModel::compile(model) // same env-driven quant mode
    } else {
        InferenceModel::compile_with_mode(model, QuantMode::Off)
    }
}

/// Offline baseline: what `mbssl recommend` prints for this user.
fn offline(model: &Mbmissl, dataset: &Dataset, user: UserId, n: usize) -> Vec<Recommendation> {
    let history = &dataset.sequences[user as usize];
    let exclude: HashSet<ItemId> = history.items.iter().copied().collect();
    recommend_top_n(model, history, dataset.num_items, n, &exclude, 64)
}

#[test]
fn batched_serving_is_bit_identical_to_sequential_top_n() {
    let n = 5;
    for (encoder, extractor) in VARIANTS {
        let (model, dataset) = tiny_model(encoder, extractor);
        let users: Vec<UserId> = (0..dataset.sequences.len().min(16) as UserId).collect();
        let expected: Vec<Vec<Recommendation>> =
            users.iter().map(|&u| offline(&model, &dataset, u, n)).collect();
        for max_batch in [1usize, 4, 16] {
            let server = Server::start(
                serving_engine(&model),
                Arc::new(SessionStore::from_dataset(&dataset)),
                RerankChain::empty(),
                ServeConfig {
                    max_batch,
                    wait: std::time::Duration::from_millis(2),
                    workers: 2,
                    cache: false, // every request takes the full forward path
                    ..ServeConfig::default()
                },
            );
            // Concurrent submitters: one thread per user, all in flight at
            // once, so drains genuinely mix users into shared batches.
            let server_ref = &server;
            let replies: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = users
                    .iter()
                    .map(|&u| scope.spawn(move || server_ref.submit(u, n).unwrap()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for ((reply, want), &u) in replies.iter().zip(&expected).zip(&users) {
                assert!(reply.batch_size >= 1 && reply.batch_size <= max_batch);
                assert_eq!(
                    &reply.recs, want,
                    "served drift for {encoder:?}/{extractor:?} user {u} max_batch {max_batch}"
                );
            }
            let stats = server.shutdown();
            assert_eq!(stats.requests, users.len() as u64);
            assert_eq!(stats.batch.count(), stats.batches, "histogram must cover every batch");
            // Batch sizes ≤ 32 land in exact single-integer buckets, so
            // the weighted bucket sum is exactly the request count.
            assert_eq!(
                stats.batch.nonzero_buckets().map(|b| b.lower * b.count).sum::<u64>(),
                stats.requests,
                "histogram weights must cover every request"
            );
            // Every stage histogram covers every replied request
            // (per-batch stages record once per request by contract).
            for stage in Stage::ALL {
                assert_eq!(
                    stats.stage(stage).count(),
                    stats.requests,
                    "stage {} must cover every request",
                    stage.name()
                );
            }
            let total = stats.stage(Stage::Total);
            assert!(total.min() > 0, "end-to-end latency cannot be zero");
            assert!(total.quantile(0.5) <= total.quantile(0.99));
            assert!(total.quantile(0.99) <= total.max());
        }
    }
}

#[test]
fn cache_serves_identical_results_and_ingest_invalidates() {
    let (model, dataset) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::SelfAttentive);
    let n = 5;
    let server = Server::start(
        serving_engine(&model),
        Arc::new(SessionStore::from_dataset(&dataset)),
        RerankChain::empty(),
        ServeConfig {
            max_batch: 4,
            workers: 1,
            ..ServeConfig::default()
        },
    );

    let user: UserId = 0;
    let cold = server.submit(user, n).unwrap();
    assert!(!cold.cache_hit, "first request must encode");
    assert_eq!(cold.recs, offline(&model, &dataset, user, n));

    let warm = server.submit(user, n).unwrap();
    assert!(warm.cache_hit, "second request must reuse the cached encoding");
    assert_eq!(warm.recs, cold.recs, "cache hit must not change results");

    // One ingest invalidates exactly this user's cache, and the next
    // response reflects the grown history bit-for-bit.
    let new_item: ItemId = (dataset.num_items as ItemId).min(3);
    server.ingest(user, new_item, Behavior::Click).unwrap();
    let after = server.submit(user, n).unwrap();
    assert!(!after.cache_hit, "ingest must invalidate the cache");
    let mut history = dataset.sequences[user as usize].clone();
    history.push(new_item, Behavior::Click);
    let exclude: HashSet<ItemId> = history.items.iter().copied().collect();
    assert_eq!(
        after.recs,
        recommend_top_n(&model, &history, dataset.num_items, n, &exclude, 64)
    );

    let stats = server.shutdown();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
}

#[test]
fn hot_swap_redirects_new_requests_to_the_new_engine() {
    let (model_a, dataset) =
        tiny_model_seeded(EncoderKind::Transformer, ExtractorKind::SelfAttentive, Some(42));
    let (model_b, _) =
        tiny_model_seeded(EncoderKind::Transformer, ExtractorKind::SelfAttentive, Some(1234));
    let n = 5;
    let server = Server::start(
        serving_engine(&model_a),
        Arc::new(SessionStore::from_dataset(&dataset)),
        RerankChain::empty(),
        ServeConfig {
            max_batch: 4,
            workers: 1,
            ..ServeConfig::default()
        },
    );

    let user: UserId = 1;
    let before = server.submit(user, n).unwrap();
    assert_eq!(before.epoch, 0);
    assert_eq!(before.recs, offline(&model_a, &dataset, user, n));

    let epoch = server.swap_engine(serving_engine(&model_b));
    assert_eq!(epoch, 1);
    let after = server.submit(user, n).unwrap();
    assert_eq!(after.epoch, 1, "post-swap requests must serve on the new epoch");
    assert!(
        !after.cache_hit,
        "old epoch's cached encoding must not survive the swap"
    );
    assert_eq!(after.recs, offline(&model_b, &dataset, user, n));

    let stats = server.shutdown();
    assert_eq!(stats.swaps, 1);
}

#[test]
fn ann_budget_degrades_probe_width_but_responses_stay_well_formed() {
    if !mbssl_core::ann::enabled() {
        return; // MBSSL_ANN=off: the policy has nothing to degrade
    }
    let (model, dataset) = tiny_model(EncoderKind::Transformer, ExtractorKind::DynamicRouting);
    let mut engine = InferenceModel::compile_with_mode(&model, QuantMode::Off);
    let index = engine.build_index_with(8, 7);
    engine.attach_index_with(index, 4).unwrap();
    let n = 5;
    let server = Server::start(
        engine,
        Arc::new(SessionStore::from_dataset(&dataset)),
        RerankChain::empty(),
        ServeConfig {
            max_batch: 2,
            workers: 1,
            cache: false,          // force the ANN path on every request
            ann_budget_us: Some(0), // any observed latency busts the budget
            ..ServeConfig::default()
        },
    );
    // First request seeds the EWMA; later ones must degrade to nprobe 1.
    let mut saw_degraded = false;
    for round in 0..4 {
        let reply = server.submit(round % 3, n).unwrap();
        assert_eq!(reply.recs.len(), n, "degraded responses still rank n items");
        for pair in reply.recs.windows(2) {
            assert!(
                pair[0].score >= pair[1].score,
                "degraded responses stay sorted"
            );
        }
        saw_degraded |= reply.degraded;
    }
    assert!(saw_degraded, "a zero budget must degrade after the first sample");
    let stats = server.shutdown();
    assert!(stats.ann_degraded > 0, "degradation must be counted");
}

#[test]
fn rerank_chain_composes_with_retrieval_overscan() {
    let (model, dataset) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::DynamicRouting);
    let n = 3;
    // topk:3 after a 4× overscan must reproduce the plain top-3 exactly.
    let server = Server::start(
        serving_engine(&model),
        Arc::new(SessionStore::from_dataset(&dataset)),
        RerankChain::parse("topk:3").unwrap(),
        ServeConfig {
            max_batch: 4,
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let reply = server.submit(2, n).unwrap();
    assert_eq!(reply.recs, offline(&model, &dataset, 2, n));
    server.shutdown();

    // A `seen` stage switches the server from hard-excluding seen items
    // to soft-penalizing them: with an overwhelming penalty every seen
    // item still drops out of the top n.
    let server = Server::start(
        serving_engine(&model),
        Arc::new(SessionStore::from_dataset(&dataset)),
        RerankChain::parse("seen:1000000").unwrap(),
        ServeConfig {
            max_batch: 4,
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let reply = server.submit(2, n).unwrap();
    assert_eq!(reply.recs.len(), n);
    let seen: HashSet<ItemId> = dataset.sequences[2].items.iter().copied().collect();
    for rec in &reply.recs {
        assert!(
            !seen.contains(&rec.item),
            "a crushing seen penalty must push seen items out of the top {n}"
        );
    }
    server.shutdown();
}

/// The observability layer must never change what is served:
/// `MBSSL_TRACE=off` and an instrumented run produce bit-identical
/// recommendations for the same workload (the stage histograms are
/// always on in both, so only the span path differs).
#[test]
fn trace_mode_does_not_change_served_results() {
    let (model, dataset) = tiny_model(EncoderKind::Transformer, ExtractorKind::SelfAttentive);
    let n = 5;
    let users: Vec<UserId> = (0..8 as UserId).collect();
    let run = |mode: mbssl_telemetry::TraceMode| -> Vec<Vec<Recommendation>> {
        mbssl_telemetry::set_mode(mode);
        let server = Server::start(
            serving_engine(&model),
            Arc::new(SessionStore::from_dataset(&dataset)),
            RerankChain::empty(),
            ServeConfig {
                max_batch: 4,
                wait: std::time::Duration::from_millis(2),
                workers: 2,
                cache: false,
                ..ServeConfig::default()
            },
        );
        let server_ref = &server;
        let replies: Vec<Vec<Recommendation>> = std::thread::scope(|scope| {
            let handles: Vec<_> = users
                .iter()
                .map(|&u| scope.spawn(move || server_ref.submit(u, n).unwrap().recs))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        server.shutdown();
        replies
    };
    let off = run(mbssl_telemetry::TraceMode::Off);
    let on = run(mbssl_telemetry::TraceMode::Summary);
    mbssl_telemetry::drain(); // don't leak this test's spans into others
    mbssl_telemetry::set_mode(mbssl_telemetry::TraceMode::Off);
    assert_eq!(off, on, "tracing changed served results");
}

/// `slow_us: Some(0)` marks every request slow: each must append one
/// structured stage-timing record to the tail log, and the metrics
/// snapshot must expose schema-complete JSON and parseable Prometheus
/// text with stage histograms covering every replied request.
#[test]
fn tail_sampling_writes_stage_records_and_snapshot_is_complete() {
    let (model, dataset) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::SelfAttentive);
    let dir = std::env::temp_dir().join(format!("mbssl_tail_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tail_path = dir.join("serve_slow.jsonl");
    let _ = std::fs::remove_file(&tail_path);
    let server = Server::start(
        serving_engine(&model),
        Arc::new(SessionStore::from_dataset(&dataset)),
        RerankChain::empty(),
        ServeConfig {
            max_batch: 4,
            workers: 1,
            slow_us: Some(0), // every request is "slow"
            tail_log: Some(tail_path.clone()),
            ..ServeConfig::default()
        },
    );
    let n = 5;
    for user in 0..6 as UserId {
        server.submit(user, n).unwrap();
    }

    let snap = server.metrics_snapshot();
    assert_eq!(snap.stats.requests, 6);
    let json = snap.to_json();
    for key in ["\"schema\":\"mbssl.serve.metrics/1\"", "\"stages\":{", "\"tail_sampled\":6"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    for stage in Stage::ALL {
        assert_eq!(snap.stats.stage(stage).count(), 6, "stage {} coverage", stage.name());
    }
    let prom = snap.to_prometheus();
    assert!(prom.contains("mbssl_serve_requests_total 6"));
    assert!(prom.contains("mbssl_serve_stage_duration_seconds_count{stage=\"total\"} 6"));

    let stats = server.shutdown();
    assert_eq!(stats.tail_sampled, 6);
    let content = std::fs::read_to_string(&tail_path).expect("tail log written");
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len(), 6, "one tail record per slow request:\n{content}");
    for line in &lines {
        assert!(line.contains("\"kind\":\"serve_slow\""), "{line}");
        assert!(line.contains("\"reason\":\"slow\""), "{line}");
        for stage in Stage::ALL {
            assert!(line.contains(&format!("\"{}_us\":", stage.name())), "{line}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
