//! Multi-behavior input layer and sequence encoder backbones.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_data::sampler::Batch;
use mbssl_data::Behavior;
use mbssl_hypergraph::{build_batch_incidence, HypergraphConfig, HypergraphEncoder};
use mbssl_tensor::nn::{
    join_name, key_padding_mask, Embedding, LayerNorm, Mode, Module, ParamMap, TransformerBlock,
};
use mbssl_tensor::Tensor;

use crate::config::{EncoderKind, ModelConfig};

/// Token embedding stack: item + behavior + position, LayerNorm + dropout.
pub struct InputLayer {
    /// Item embedding table `[num_items+1, D]` (row 0 = padding).
    pub item_emb: Embedding,
    behavior_emb: Embedding,
    pos_emb: Embedding,
    ln: LayerNorm,
    dropout: f32,
    max_seq_len: usize,
}

impl InputLayer {
    /// Builds the embedding stack for a catalog of `num_items`.
    pub fn new(num_items: usize, config: &ModelConfig, rng: &mut StdRng) -> Self {
        InputLayer {
            item_emb: Embedding::new(num_items + 1, config.dim, rng).with_padding_idx(0),
            behavior_emb: Embedding::new(Behavior::VOCAB, config.dim, rng)
                .with_padding_idx(Behavior::PAD_INDEX),
            pos_emb: Embedding::new(config.max_seq_len, config.dim, rng),
            ln: LayerNorm::new(config.dim),
            dropout: config.dropout,
            max_seq_len: config.max_seq_len,
        }
    }

    /// Embeds a padded batch into `[B, L, D]`.
    pub fn forward(&self, batch: &Batch, mode: &mut Mode) -> Tensor {
        let (b, l) = (batch.size, batch.max_len);
        assert!(
            l <= self.max_seq_len,
            "batch length {l} exceeds configured max {}",
            self.max_seq_len
        );
        let item = self.item_emb.forward_seq(&batch.items, b, l);
        let behavior = self.behavior_emb.forward_seq(&batch.behaviors, b, l);
        let positions: Vec<usize> = (0..b * l).map(|i| i % l).collect();
        let pos = self.pos_emb.forward_seq(&positions, b, l);
        if mbssl_tensor::fused::enabled() {
            // `ln(item + behavior + pos)` with the second add and the norm
            // collapsed into one fused node; element order matches the
            // composition below bit-for-bit.
            let s = item.add(&behavior);
            let y = self.ln.residual_forward(&s, &pos);
            mode.dropout(&y, self.dropout)
        } else {
            let x = item.add(&behavior).add(&pos);
            mode.dropout(&self.ln.forward(&x), self.dropout)
        }
    }
}

impl Module for InputLayer {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        self.item_emb.collect_params(&join_name(prefix, "item_emb"), map);
        self.behavior_emb
            .collect_params(&join_name(prefix, "behavior_emb"), map);
        self.pos_emb.collect_params(&join_name(prefix, "pos_emb"), map);
        self.ln.collect_params(&join_name(prefix, "ln"), map);
    }
}

/// The encoder backbone: hypergraph transformer or plain transformer.
pub enum Backbone {
    /// Hypergraph-transformer encoder (the paper's default).
    Hypergraph {
        /// The hypergraph encoder stack.
        encoder: HypergraphEncoder,
        /// Hyperedge-construction options.
        hg_config: HypergraphConfig,
        /// Attention heads per layer.
        heads: usize,
    },
    /// Plain transformer encoder (SASRec-style ablation).
    Transformer {
        /// The transformer blocks, in order.
        blocks: Vec<TransformerBlock>,
        /// Attention heads per layer.
        heads: usize,
    },
}

impl Backbone {
    /// Builds the backbone selected by `config.encoder`.
    pub fn new(config: &ModelConfig, behavior_tags: &[usize], rng: &mut StdRng) -> Self {
        match config.encoder {
            EncoderKind::Hypergraph => Backbone::Hypergraph {
                encoder: HypergraphEncoder::new(
                    config.num_layers,
                    config.dim,
                    config.heads,
                    config.ffn_hidden,
                    config.dropout,
                    Behavior::VOCAB,
                    rng,
                ),
                hg_config: HypergraphConfig {
                    behavior_tags: behavior_tags.to_vec(),
                    window: config.hg_window,
                    max_item_edges: config.hg_max_item_edges,
                },
                heads: config.heads,
            },
            EncoderKind::Transformer => Backbone::Transformer {
                blocks: (0..config.num_layers)
                    .map(|_| {
                        TransformerBlock::new(
                            config.dim,
                            config.heads,
                            config.ffn_hidden,
                            config.dropout,
                            rng,
                        )
                    })
                    .collect(),
                heads: config.heads,
            },
        }
    }

    /// Encodes embedded inputs `[B, L, D]` into contextual states.
    pub fn forward(&self, x: &Tensor, batch: &Batch, mode: &mut Mode) -> Tensor {
        match self {
            Backbone::Hypergraph {
                encoder,
                hg_config,
                ..
            } => {
                let incidence = build_batch_incidence(
                    hg_config,
                    &batch.items,
                    &batch.behaviors,
                    &batch.valid,
                    batch.size,
                    batch.max_len,
                    Behavior::VOCAB,
                );
                encoder.forward(x, &incidence, mode)
            }
            Backbone::Transformer { blocks, heads } => {
                let mask = key_padding_mask(&batch.valid, batch.size, *heads, batch.max_len);
                let mut h = x.clone();
                for block in blocks {
                    h = block.forward(&h, Some(&mask), mode);
                }
                h
            }
        }
    }
}

impl Module for Backbone {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        match self {
            Backbone::Hypergraph { encoder, .. } => {
                encoder.collect_params(&join_name(prefix, "hg"), map)
            }
            Backbone::Transformer { blocks, .. } => {
                for (i, b) in blocks.iter().enumerate() {
                    b.collect_params(&join_name(prefix, &format!("block{i}")), map);
                }
            }
        }
    }
}

/// Deterministic RNG for a model's parameter initialization.
pub fn init_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use mbssl_data::sampler::Batch;
    use mbssl_data::{Behavior, Sequence};

    fn demo_batch() -> Batch {
        let mut s1 = Sequence::new();
        s1.push(1, Behavior::Click);
        s1.push(2, Behavior::Purchase);
        s1.push(3, Behavior::Click);
        let mut s2 = Sequence::new();
        s2.push(4, Behavior::Click);
        Batch::encode_histories(&[&s1, &s2])
    }

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            dim: 16,
            heads: 2,
            num_layers: 1,
            ffn_hidden: 32,
            max_seq_len: 10,
            dropout: 0.0,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn input_layer_shapes_and_padding() {
        let mut rng = init_rng(1);
        let cfg = tiny_config();
        let input = InputLayer::new(10, &cfg, &mut rng);
        let batch = demo_batch();
        let x = input.forward(&batch, &mut Mode::Eval);
        assert_eq!(x.dims(), &[2, 3, 16]);
    }

    #[test]
    fn backbone_hypergraph_runs() {
        let mut rng = init_rng(2);
        let cfg = tiny_config();
        let input = InputLayer::new(10, &cfg, &mut rng);
        let backbone = Backbone::new(&cfg, &[Behavior::Click.index(), Behavior::Purchase.index()], &mut rng);
        let batch = demo_batch();
        let x = input.forward(&batch, &mut Mode::Eval);
        let h = backbone.forward(&x, &batch, &mut Mode::Eval);
        assert_eq!(h.dims(), &[2, 3, 16]);
        assert!(h.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn backbone_transformer_runs() {
        let mut rng = init_rng(3);
        let cfg = ModelConfig {
            encoder: EncoderKind::Transformer,
            ..tiny_config()
        };
        let input = InputLayer::new(10, &cfg, &mut rng);
        let backbone = Backbone::new(&cfg, &[1, 4], &mut rng);
        let batch = demo_batch();
        let h = backbone.forward(&input.forward(&batch, &mut Mode::Eval), &batch, &mut Mode::Eval);
        assert_eq!(h.dims(), &[2, 3, 16]);
    }

    #[test]
    fn params_differ_between_backbones() {
        let mut rng = init_rng(4);
        let cfg = tiny_config();
        let hg = Backbone::new(&cfg, &[1, 4], &mut rng);
        let tf = Backbone::new(
            &ModelConfig {
                encoder: EncoderKind::Transformer,
                ..tiny_config()
            },
            &[1, 4],
            &mut rng,
        );
        // The hypergraph backbone has edge-type embeddings + two attention
        // phases per layer; the transformer has one.
        assert!(hg.param_map("b").len() > tf.param_map("b").len());
    }

    #[test]
    #[should_panic(expected = "exceeds configured max")]
    fn overlong_batch_rejected() {
        let mut rng = init_rng(5);
        let cfg = ModelConfig {
            max_seq_len: 2,
            ..tiny_config()
        };
        let input = InputLayer::new(10, &cfg, &mut rng);
        input.forward(&demo_batch(), &mut Mode::Eval);
    }
}
