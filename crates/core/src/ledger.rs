//! Run ledger: a per-run directory capturing what was trained and how it
//! went, written incrementally so a crashed run still leaves a usable
//! record.
//!
//! Layout of a run directory:
//!
//! ```text
//! <run_dir>/
//!   manifest.json    # config, git revision, cores, MBSSL_* env — one object
//!   metrics.jsonl    # one EpochRecord object per epoch, appended live
//! ```
//!
//! The trainer activates the ledger when [`TrainConfig::run_dir`] is set or
//! the `MBSSL_RUN_DIR` environment variable is non-empty (the config field
//! wins). Ledger writes happen strictly *outside* the training computation
//! — after the epoch's optimizer steps and evaluation — and never touch an
//! RNG, so a run with the ledger on is bit-for-bit identical to one with it
//! off (pinned by `crates/core/tests/telemetry_trace.rs`).
//!
//! IO failures are reported to stderr and disable further writes rather
//! than aborting training: losing the ledger must never lose the model.
//!
//! `mbssl report <run_dir>...` reads these directories back via
//! [`read_run_dir`] and renders epoch curves plus a side-by-side comparison
//! through [`render_report`].

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::config::TrainConfig;

/// Static facts about a run, written once at the start.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunManifest {
    /// Model name as reported by `SequentialRecommender::name`.
    pub model: String,
    /// Git revision of the build (compile-time embed or `MBSSL_GIT_REV`).
    pub git_rev: Option<String>,
    /// Unix timestamp (seconds) when the run started.
    pub unix_time_s: u64,
    /// Available CPU parallelism on the training host.
    pub cores: usize,
    /// Total trainable parameter count.
    pub num_params: usize,
    /// Training instance count.
    pub train_instances: usize,
    /// Validation instance count.
    pub val_instances: usize,
    /// The full training configuration.
    pub config: TrainConfig,
    /// `MBSSL_*` environment variables in effect (sorted by key).
    pub env: BTreeMap<String, String>,
}

impl RunManifest {
    /// Captures the current process environment around the given run facts.
    pub fn capture(
        model: &str,
        num_params: usize,
        train_instances: usize,
        val_instances: usize,
        config: &TrainConfig,
    ) -> RunManifest {
        let env: BTreeMap<String, String> = std::env::vars()
            .filter(|(k, _)| k.starts_with("MBSSL_"))
            .collect();
        RunManifest {
            model: model.to_string(),
            git_rev: mbssl_telemetry::git_rev().map(|s| s.to_string()),
            unix_time_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            num_params,
            train_instances,
            val_instances,
            config: config.clone(),
            env,
        }
    }
}

/// One line of `metrics.jsonl`: everything the trainer knows at the end of
/// an epoch. Validation fields are `None` on epochs where evaluation was
/// skipped (`eval_every > 1`) or no validation split exists.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Validation HR@5, when evaluated.
    pub val_hr5: Option<f64>,
    /// Validation HR@10, when evaluated.
    pub val_hr10: Option<f64>,
    /// Validation NDCG@5, when evaluated.
    pub val_ndcg5: Option<f64>,
    /// Validation NDCG@10, when evaluated.
    pub val_ndcg10: Option<f64>,
    /// Training throughput: instances consumed / epoch wall seconds.
    pub items_per_sec: f64,
    /// Epoch wall time (training + evaluation).
    pub seconds: f64,
    /// Tensor-allocator free-list hit rate at epoch end (cumulative %).
    pub alloc_hit_rate_pct: f64,
    /// Thread-pool jobs broadcast since process start (cumulative).
    pub pool_jobs: u64,
    /// Thread-pool chunks distributed since process start (cumulative).
    pub pool_chunks: u64,
}

/// Incremental writer for a run directory.
///
/// Construction writes `manifest.json` and truncates `metrics.jsonl`;
/// [`append_epoch`](RunLedger::append_epoch) adds one line per call and
/// flushes immediately so partial runs are readable.
pub struct RunLedger {
    dir: PathBuf,
    metrics: fs::File,
}

impl RunLedger {
    /// Creates `dir` (and parents) and writes the manifest.
    pub fn create(dir: &Path, manifest: &RunManifest) -> std::io::Result<RunLedger> {
        fs::create_dir_all(dir)?;
        let pretty = serde_json::to_string_pretty(manifest)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        fs::write(dir.join("manifest.json"), pretty + "\n")?;
        let metrics = fs::File::create(dir.join("metrics.jsonl"))?;
        Ok(RunLedger { dir: dir.to_path_buf(), metrics })
    }

    /// Appends one epoch record and flushes.
    pub fn append_epoch(&mut self, record: &EpochRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        writeln!(self.metrics, "{line}")?;
        self.metrics.flush()
    }

    /// The run directory this ledger writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// The run directory to use for the current fit, if any: the config field
/// when set, else a non-empty `MBSSL_RUN_DIR` environment variable.
pub fn resolve_run_dir(config: &TrainConfig) -> Option<PathBuf> {
    if let Some(dir) = &config.run_dir {
        if !dir.is_empty() {
            return Some(PathBuf::from(dir));
        }
    }
    match std::env::var("MBSSL_RUN_DIR") {
        Ok(dir) if !dir.is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// A run directory read back into memory.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Directory basename, used as the run's display name.
    pub name: String,
    /// The run's manifest (config, dataset, git revision).
    pub manifest: RunManifest,
    /// Per-epoch metric records, in epoch order.
    pub epochs: Vec<EpochRecord>,
}

impl RunRecord {
    /// The epoch with the best validation NDCG@10, if any epoch has one.
    pub fn best_epoch(&self) -> Option<&EpochRecord> {
        self.epochs
            .iter()
            .filter(|e| e.val_ndcg10.is_some())
            .max_by(|a, b| {
                a.val_ndcg10
                    .partial_cmp(&b.val_ndcg10)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Mean training throughput across epochs (instances / second).
    pub fn mean_items_per_sec(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.items_per_sec).sum::<f64>() / self.epochs.len() as f64
    }
}

/// Reads `manifest.json` + `metrics.jsonl` from a run directory.
pub fn read_run_dir(dir: &Path) -> Result<RunRecord, String> {
    let manifest_path = dir.join("manifest.json");
    let manifest_text = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let manifest: RunManifest = serde_json::from_str(&manifest_text)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;

    let metrics_path = dir.join("metrics.jsonl");
    let metrics_text = fs::read_to_string(&metrics_path)
        .map_err(|e| format!("{}: {e}", metrics_path.display()))?;
    let mut epochs = Vec::new();
    for (i, line) in metrics_text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: EpochRecord = serde_json::from_str(line)
            .map_err(|e| format!("{} line {}: {e}", metrics_path.display(), i + 1))?;
        epochs.push(rec);
    }

    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| dir.display().to_string());
    Ok(RunRecord { name, manifest, epochs })
}

const SPARK_TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Unicode sparkline over `values`; `None` entries render as `·`.
/// Public because `mbssl top` reuses it for its QPS strip.
pub fn sparkline(values: &[Option<f64>]) -> String {
    let present: Vec<f64> = values.iter().filter_map(|v| *v).filter(|v| v.is_finite()).collect();
    let (lo, hi) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|v| match v {
            Some(v) if v.is_finite() => {
                if hi <= lo {
                    SPARK_TICKS[3]
                } else {
                    let t = (v - lo) / (hi - lo);
                    SPARK_TICKS[((t * 7.0).round() as usize).min(7)]
                }
            }
            _ => '·',
        })
        .collect()
}

fn fmt_opt(v: Option<f64>, prec: usize) -> String {
    match v {
        Some(v) => format!("{v:.prec$}"),
        None => "-".to_string(),
    }
}

/// One labelled curve line: sparkline plus first → last present values.
fn curve_line(label: &str, values: &[Option<f64>], prec: usize) -> String {
    let first = values.iter().find_map(|v| *v);
    let last = values.iter().rev().find_map(|v| *v);
    format!(
        "  {label:<10} {}  {} → {}",
        sparkline(values),
        fmt_opt(first, prec),
        fmt_opt(last, prec)
    )
}

/// Renders per-run epoch curves followed by a side-by-side comparison
/// table (best-epoch validation metrics, throughput, allocator hit rate).
pub fn render_report(runs: &[RunRecord]) -> String {
    let mut out = String::new();
    for run in runs {
        let m = &run.manifest;
        out.push_str(&format!(
            "run {name}: model={model} epochs={epochs} params={params} cores={cores}{rev}\n",
            name = run.name,
            model = m.model,
            epochs = run.epochs.len(),
            params = m.num_params,
            cores = m.cores,
            rev = match &m.git_rev {
                Some(r) => format!(" rev={}", &r[..r.len().min(12)]),
                None => String::new(),
            },
        ));
        if run.epochs.is_empty() {
            out.push_str("  (no epochs recorded)\n\n");
            continue;
        }
        let loss: Vec<Option<f64>> = run.epochs.iter().map(|e| Some(e.train_loss)).collect();
        let ndcg10: Vec<Option<f64>> = run.epochs.iter().map(|e| e.val_ndcg10).collect();
        let hr10: Vec<Option<f64>> = run.epochs.iter().map(|e| e.val_hr10).collect();
        let ips: Vec<Option<f64>> = run.epochs.iter().map(|e| Some(e.items_per_sec)).collect();
        out.push_str(&curve_line("loss", &loss, 4));
        out.push('\n');
        if ndcg10.iter().any(|v| v.is_some()) {
            out.push_str(&curve_line("ndcg@10", &ndcg10, 4));
            out.push('\n');
            out.push_str(&curve_line("hr@10", &hr10, 4));
            out.push('\n');
        }
        out.push_str(&curve_line("items/s", &ips, 0));
        out.push('\n');
        out.push('\n');
    }

    // Comparison table over best-NDCG@10 epochs.
    let name_w = runs
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("run".len()))
        .max()
        .unwrap_or(3);
    out.push_str(&format!(
        "{:<name_w$}  {:>6}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>10}  {:>9}  {:>10}\n",
        "run", "epochs", "best_ep", "HR@5", "HR@10", "NDCG@5", "NDCG@10", "final_loss", "items/s", "alloc_hit%"
    ));
    for run in runs {
        let best = run.best_epoch();
        let final_loss = run.epochs.last().map(|e| e.train_loss);
        let alloc = run.epochs.last().map(|e| e.alloc_hit_rate_pct);
        out.push_str(&format!(
            "{:<name_w$}  {:>6}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>10}  {:>9.0}  {:>10}\n",
            run.name,
            run.epochs.len(),
            best.map(|e| e.epoch.to_string()).unwrap_or_else(|| "-".into()),
            fmt_opt(best.and_then(|e| e.val_hr5), 4),
            fmt_opt(best.and_then(|e| e.val_hr10), 4),
            fmt_opt(best.and_then(|e| e.val_ndcg5), 4),
            fmt_opt(best.and_then(|e| e.val_ndcg10), 4),
            fmt_opt(final_loss, 4),
            run.mean_items_per_sec(),
            fmt_opt(alloc, 1),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: usize, loss: f64, ndcg10: Option<f64>) -> EpochRecord {
        EpochRecord {
            epoch,
            train_loss: loss,
            val_hr5: ndcg10.map(|n| n + 0.02),
            val_hr10: ndcg10.map(|n| n + 0.05),
            val_ndcg5: ndcg10.map(|n| n - 0.01),
            val_ndcg10: ndcg10,
            items_per_sec: 100.0 + epoch as f64,
            seconds: 1.5,
            alloc_hit_rate_pct: 90.0,
            pool_jobs: 10 * (epoch as u64 + 1),
            pool_chunks: 80 * (epoch as u64 + 1),
        }
    }

    fn manifest() -> RunManifest {
        RunManifest {
            model: "mbmissl".into(),
            git_rev: Some("0123456789abcdef".into()),
            unix_time_s: 1_700_000_000,
            cores: 8,
            num_params: 12345,
            train_instances: 1000,
            val_instances: 100,
            config: TrainConfig::fast_test(),
            env: BTreeMap::from([("MBSSL_THREADS".to_string(), "4".to_string())]),
        }
    }

    #[test]
    fn ledger_roundtrips_through_run_dir() {
        let dir = std::env::temp_dir().join(format!(
            "mbssl-ledger-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mani = manifest();
        let mut ledger = RunLedger::create(&dir, &mani).unwrap();
        ledger.append_epoch(&record(0, 2.5, None)).unwrap();
        ledger.append_epoch(&record(1, 1.8, Some(0.31))).unwrap();
        ledger.append_epoch(&record(2, 1.4, Some(0.38))).unwrap();

        let run = read_run_dir(&dir).unwrap();
        assert_eq!(run.manifest.model, "mbmissl");
        assert_eq!(run.manifest.cores, 8);
        assert_eq!(run.manifest.config.epochs, mani.config.epochs);
        assert_eq!(run.manifest.env["MBSSL_THREADS"], "4");
        assert_eq!(run.epochs.len(), 3);
        assert_eq!(run.epochs[0].epoch, 0);
        assert_eq!(run.epochs[0].val_ndcg10, None);
        assert_eq!(run.epochs[2].val_ndcg10, Some(0.38));
        assert_eq!(run.best_epoch().unwrap().epoch, 2);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resolve_prefers_config_over_env() {
        let cfg = TrainConfig {
            run_dir: Some("/tmp/from-config".into()),
            ..TrainConfig::default()
        };
        assert_eq!(
            resolve_run_dir(&cfg),
            Some(PathBuf::from("/tmp/from-config"))
        );
        let cfg = TrainConfig { run_dir: None, ..TrainConfig::default() };
        // Whatever MBSSL_RUN_DIR holds, an explicit empty config field must
        // not shadow it — and with no env var the result is None. The env
        // half is covered end-to-end by tests/telemetry_trace.rs to avoid
        // set_var races across threads here.
        if std::env::var("MBSSL_RUN_DIR").map_or(true, |v| v.is_empty()) {
            assert_eq!(resolve_run_dir(&cfg), None);
        }
    }

    #[test]
    fn sparkline_maps_extremes_and_gaps() {
        let s = sparkline(&[Some(0.0), None, Some(1.0)]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars, vec!['▁', '·', '█']);
        // Flat series renders mid ticks, not a panic.
        let flat = sparkline(&[Some(2.0), Some(2.0)]);
        assert_eq!(flat.chars().count(), 2);
    }

    #[test]
    fn report_renders_comparison_for_two_runs() {
        let mk = |name: &str, shift: f64| RunRecord {
            name: name.into(),
            manifest: manifest(),
            epochs: vec![
                record(0, 2.5 - shift, Some(0.30 + shift)),
                record(1, 1.9 - shift, Some(0.35 + shift)),
            ],
        };
        let out = render_report(&[mk("base", 0.0), mk("tuned", 0.04)]);
        assert!(out.contains("run base:"), "{out}");
        assert!(out.contains("run tuned:"), "{out}");
        assert!(out.contains("NDCG@10"), "{out}");
        assert!(out.contains("0.3900"), "tuned best ndcg@10 missing:\n{out}");
        assert!(out.contains("ndcg@10"), "{out}");
        // Exactly one header + two data rows in the comparison table.
        let rows: Vec<&str> = out.lines().filter(|l| l.starts_with("base") || l.starts_with("tuned")).collect();
        assert_eq!(rows.len(), 2, "{out}");
    }

    #[test]
    fn empty_run_dir_reports_missing_files() {
        let err = read_run_dir(Path::new("/nonexistent/mbssl-run")).unwrap_err();
        assert!(err.contains("manifest.json"), "{err}");
    }
}
