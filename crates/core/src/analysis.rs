//! Interest-analysis utilities: quantify how well extracted interests
//! recover known latent structure, and export embeddings for external
//! visualization (the t-SNE-style inspection of the paper line's
//! "visualization" research question).

use std::collections::HashMap;

use serde::Serialize;

use mbssl_data::sampler::Batch;
use mbssl_data::Sequence;

use crate::model::Mbmissl;

/// Per-user interest-recovery measurements against ground-truth topics.
#[derive(Clone, Debug, Serialize)]
pub struct InterestRecovery {
    /// Mean (over heads) attention mass on each head's dominant topic.
    pub purity: f64,
    /// Fraction of the user's true topics matched by some head's dominant
    /// topic.
    pub coverage: f64,
    /// Dominant topic per interest head.
    pub head_topics: Vec<usize>,
}

/// Computes interest recovery for one user from the model's attention
/// weights. `item_topic[item_id]` gives each item's latent topic;
/// `user_topics` is the user's true interest set.
pub fn interest_recovery(
    model: &Mbmissl,
    history: &Sequence,
    item_topic: &[usize],
    user_topics: &[usize],
) -> Option<InterestRecovery> {
    if history.len() < 2 {
        return None;
    }
    let (batch, weights) = model.inspect_attention(&[history]);
    let l = batch.max_len;
    let k = weights.len() / l;
    let mut head_topics = Vec::with_capacity(k);
    let mut purities = Vec::with_capacity(k);
    for head in 0..k {
        let mut topic_mass: HashMap<usize, f64> = HashMap::new();
        let mut total = 0.0f64;
        for t in 0..l {
            if batch.valid[t] == 0.0 {
                continue;
            }
            let topic = item_topic[batch.items[t]];
            let w = weights[head * l + t] as f64;
            *topic_mass.entry(topic).or_insert(0.0) += w;
            total += w;
        }
        if total <= 0.0 {
            continue;
        }
        let (&top, &mass) = topic_mass
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        head_topics.push(top);
        purities.push(mass / total);
    }
    if purities.is_empty() {
        return None;
    }
    let purity = purities.iter().sum::<f64>() / purities.len() as f64;
    let hit = user_topics
        .iter()
        .filter(|t| head_topics.contains(t))
        .count();
    let coverage = if user_topics.is_empty() {
        0.0
    } else {
        hit as f64 / user_topics.len() as f64
    };
    Some(InterestRecovery {
        purity,
        coverage,
        head_topics,
    })
}

/// Mean pairwise cosine similarity between a user's K interests
/// (lower = better disentangled). Input: row-major `[K, D]`.
pub fn mean_pairwise_cosine(interests: &[f32], k: usize, d: usize) -> f64 {
    assert_eq!(interests.len(), k * d);
    if k < 2 {
        return 0.0;
    }
    let norm = |row: &[f32]| row.iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();
    let mut total = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            let a = &interests[i * d..(i + 1) * d];
            let b = &interests[j * d..(j + 1) * d];
            let dot: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| x as f64 * y as f64).sum();
            let na = norm(a).max(1e-12);
            let nb = norm(b).max(1e-12);
            total += dot / (na * nb);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Embedding export row for external visualization (t-SNE/UMAP offline).
#[derive(Clone, Debug, Serialize)]
pub struct EmbeddingExport {
    /// User id the vector belongs to.
    pub user: u32,
    /// Interest head index within the user.
    pub head: usize,
    /// The interest embedding.
    pub vector: Vec<f32>,
}

/// Extracts every user's interest vectors as export rows.
pub fn export_interest_embeddings(
    model: &Mbmissl,
    histories: &[(u32, &Sequence)],
) -> Vec<EmbeddingExport> {
    let mut out = Vec::new();
    for &(user, hist) in histories {
        if hist.is_empty() {
            continue;
        }
        let flat = model.extract_interests(&[hist]);
        let k = model.config().num_interests;
        let d = model.config().dim;
        for head in 0..k {
            out.push(EmbeddingExport {
                user,
                head,
                vector: flat[head * d..(head + 1) * d].to_vec(),
            });
        }
    }
    out
}

/// Summary over a population of users.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RecoverySummary {
    /// Mean interest purity across users.
    pub mean_purity: f64,
    /// Mean ground-truth topic coverage across users.
    pub mean_coverage: f64,
    /// Number of users aggregated.
    pub users: usize,
}

/// Aggregates recovery over many users.
pub fn recovery_summary(results: &[InterestRecovery]) -> RecoverySummary {
    if results.is_empty() {
        return RecoverySummary::default();
    }
    RecoverySummary {
        mean_purity: results.iter().map(|r| r.purity).sum::<f64>() / results.len() as f64,
        mean_coverage: results.iter().map(|r| r.coverage).sum::<f64>() / results.len() as f64,
        users: results.len(),
    }
}

/// Convenience: attention-entropy per head (how focused each interest is).
/// Returns `[K]` entropies in nats; lower = more focused.
pub fn attention_entropies(batch: &Batch, weights: &[f32]) -> Vec<f64> {
    let l = batch.max_len;
    let k = weights.len() / l.max(1);
    (0..k)
        .map(|head| {
            let row = &weights[head * l..(head + 1) * l];
            -row.iter()
                .filter(|&&w| w > 1e-12)
                .map(|&w| (w as f64) * (w as f64).ln())
                .sum::<f64>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BehaviorSchema, ModelConfig};
    use mbssl_data::synthetic::SyntheticConfig;
    use mbssl_data::Behavior;

    fn setup() -> (Mbmissl, mbssl_data::synthetic::Generated) {
        let g = SyntheticConfig::taobao_like(91).scaled(0.05).generate();
        let schema = BehaviorSchema::new(g.dataset.behaviors.clone(), g.dataset.target_behavior);
        let config = ModelConfig {
            dim: 16,
            heads: 2,
            num_layers: 1,
            ffn_hidden: 32,
            num_interests: 3,
            extractor_hidden: 16,
            max_seq_len: 30,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        (Mbmissl::new(g.dataset.num_items, schema, config), g)
    }

    #[test]
    fn recovery_fields_in_range() {
        let (model, g) = setup();
        let hist = &g.dataset.sequences[0];
        let r = interest_recovery(
            &model,
            hist,
            &g.truth.item_topic,
            &g.truth.user_interests[0],
        )
        .expect("non-trivial history");
        assert!((0.0..=1.0).contains(&r.purity));
        assert!((0.0..=1.0).contains(&r.coverage));
        assert_eq!(r.head_topics.len(), 3);
    }

    #[test]
    fn trivial_history_returns_none() {
        let (model, g) = setup();
        let mut s = Sequence::new();
        s.push(1, Behavior::Click);
        assert!(interest_recovery(&model, &s, &g.truth.item_topic, &[0]).is_none());
    }

    #[test]
    fn cosine_of_identical_rows_is_one() {
        let rows = vec![1.0, 0.0, 1.0, 0.0]; // two identical [1,0] rows
        assert!((mean_pairwise_cosine(&rows, 2, 2) - 1.0).abs() < 1e-9);
        let ortho = vec![1.0, 0.0, 0.0, 1.0];
        assert!(mean_pairwise_cosine(&ortho, 2, 2).abs() < 1e-9);
        assert_eq!(mean_pairwise_cosine(&[1.0, 2.0], 1, 2), 0.0);
    }

    #[test]
    fn export_shapes() {
        let (model, g) = setup();
        let hists: Vec<(u32, &Sequence)> = (0..4u32)
            .map(|u| (u, &g.dataset.sequences[u as usize]))
            .collect();
        let rows = export_interest_embeddings(&model, &hists);
        assert_eq!(rows.len(), 4 * 3);
        assert!(rows.iter().all(|r| r.vector.len() == 16));
        assert!(rows.iter().all(|r| r.head < 3));
    }

    #[test]
    fn summary_aggregates() {
        let rs = vec![
            InterestRecovery {
                purity: 0.8,
                coverage: 1.0,
                head_topics: vec![],
            },
            InterestRecovery {
                purity: 0.4,
                coverage: 0.5,
                head_topics: vec![],
            },
        ];
        let s = recovery_summary(&rs);
        assert!((s.mean_purity - 0.6).abs() < 1e-12);
        assert!((s.mean_coverage - 0.75).abs() < 1e-12);
        assert_eq!(s.users, 2);
        assert_eq!(recovery_summary(&[]).users, 0);
    }

    #[test]
    fn entropies_lower_for_peaked_attention() {
        let batch = Batch::encode_histories(&[&{
            let mut s = Sequence::new();
            s.push(1, Behavior::Click);
            s.push(2, Behavior::Click);
            s.push(3, Behavior::Click);
            s.push(4, Behavior::Click);
            s
        }]);
        let peaked = vec![0.97, 0.01, 0.01, 0.01];
        let uniform = vec![0.25; 4];
        let mut weights = peaked.clone();
        weights.extend(uniform);
        let ent = attention_entropies(&batch, &weights);
        assert_eq!(ent.len(), 2);
        assert!(ent[0] < ent[1], "peaked head must have lower entropy");
    }
}
