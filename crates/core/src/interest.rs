//! Multi-interest extraction: pooling contextual sequence states into `K`
//! interest vectors, optionally restricted to a behavior-specific subset of
//! positions.

use rand::rngs::StdRng;

use mbssl_tensor::init;
use mbssl_tensor::nn::{join_name, Module, ParamMap};
use mbssl_tensor::Tensor;

use crate::config::{ExtractorKind, ModelConfig};

/// A multi-interest extractor.
pub enum InterestExtractor {
    /// ComiRec-SA: `A = softmax(W2ᵀ tanh(W1 Hᵀ))`, interests `Z = A·H`.
    SelfAttentive {
        /// First projection `[D, Da]`.
        w1: Tensor,
        /// Second projection `[Da, K]`.
        w2: Tensor,
        /// Number of interest heads.
        k: usize,
    },
    /// MIND dynamic routing with squash; routing logits start from a fixed
    /// seeded noise table (symmetry breaking, deterministic at eval).
    DynamicRouting {
        /// Shared capsule transform `[D, D]`.
        transform: Tensor,
        /// Fixed (non-trainable) routing-logit noise `[K, max_len]`.
        routing_init: Tensor,
        /// Number of interest heads.
        k: usize,
        /// Routing iterations.
        iters: usize,
    },
}

impl InterestExtractor {
    /// Builds the extractor selected by `config.extractor`.
    pub fn new(config: &ModelConfig, rng: &mut StdRng) -> Self {
        match config.extractor {
            ExtractorKind::SelfAttentive => InterestExtractor::SelfAttentive {
                w1: init::xavier_uniform(config.dim, config.extractor_hidden, rng).requires_grad(),
                w2: init::xavier_uniform(config.extractor_hidden, config.num_interests, rng)
                    .requires_grad(),
                k: config.num_interests,
            },
            ExtractorKind::DynamicRouting => InterestExtractor::DynamicRouting {
                transform: init::xavier_uniform(config.dim, config.dim, rng).requires_grad(),
                routing_init: init::normal(
                    [config.num_interests, config.max_seq_len],
                    0.0,
                    1.0,
                    rng,
                ),
                k: config.num_interests,
                iters: config.routing_iters,
            },
        }
    }

    /// Number of interest heads `K`.
    pub fn num_interests(&self) -> usize {
        match self {
            InterestExtractor::SelfAttentive { k, .. } => *k,
            InterestExtractor::DynamicRouting { k, .. } => *k,
        }
    }

    /// Pools `h: [B, L, D]` into `[B, K, D]` using only positions where
    /// `allowed[b*L + t] != 0` (row-major `[B, L]`). Rows with no allowed
    /// positions produce uniform attention over everything — callers must
    /// gate such rows via their own validity flags.
    pub fn forward(&self, h: &Tensor, allowed: &[f32]) -> Tensor {
        let (b, l, d) = (h.dims()[0], h.dims()[1], h.dims()[2]);
        assert_eq!(allowed.len(), b * l, "allowed mask shape mismatch");
        match self {
            InterestExtractor::SelfAttentive { w1, w2, k } => {
                // [B, L, K] attention logits.
                let logits = h.matmul(w1).into_tanh().matmul(w2);
                // Mask disallowed positions, softmax over L.
                let blocked: Vec<f32> = allowed.iter().map(|&v| 1.0 - v).collect();
                let blocked_t = Tensor::from_vec(blocked, [b, l, 1]);
                let attn = logits
                    .masked_fill(&blocked_t, -1e9)
                    .permute(&[0, 2, 1]) // [B, K, L]
                    .softmax_lastdim();
                attn.bmm(h) // [B, K, D]
                    .reshape([b, *k, d])
            }
            InterestExtractor::DynamicRouting {
                transform,
                routing_init,
                k,
                iters,
            } => {
                let s = h.matmul(transform); // [B, L, D]
                // Initial routing logits: fixed noise, tiled over batch.
                let init_slice = routing_init.narrow(1, 0, l); // [K, L]
                let mut logits_data = Vec::with_capacity(b * *k * l);
                let init_vec = init_slice.to_vec();
                for _ in 0..b {
                    logits_data.extend_from_slice(&init_vec);
                }
                let mut logits = Tensor::from_vec(logits_data, [b, *k, l]);
                let blocked: Vec<f32> = allowed.iter().map(|&v| 1.0 - v).collect();
                // [B, 1, L] broadcastable over K.
                let blocked_t = Tensor::from_vec(blocked, [b, 1, l]);

                let mut z = Tensor::zeros([b, *k, d]);
                for iter in 0..*iters {
                    let c = logits.masked_fill(&blocked_t, -1e9).softmax_lastdim(); // [B, K, L]
                    let weighted = c.bmm(&s); // [B, K, D]
                    z = squash(&weighted);
                    if iter + 1 < *iters {
                        // logits += <s_l, z_k> ; agreement [B, K, L].
                        let agreement = z.bmm(&s.transpose_last());
                        logits = logits.add(&agreement);
                    }
                }
                z
            }
        }
    }

    /// The attention weights `[B, K, L]` of the self-attentive extractor
    /// (for interest-inspection tooling). Dynamic routing returns its final
    /// routing distribution.
    pub fn attention_weights(&self, h: &Tensor, allowed: &[f32]) -> Tensor {
        let (b, l, _) = (h.dims()[0], h.dims()[1], h.dims()[2]);
        match self {
            InterestExtractor::SelfAttentive { w1, w2, .. } => {
                let logits = h.matmul(w1).into_tanh().matmul(w2);
                let blocked: Vec<f32> = allowed.iter().map(|&v| 1.0 - v).collect();
                let blocked_t = Tensor::from_vec(blocked, [b, l, 1]);
                logits
                    .masked_fill(&blocked_t, -1e9)
                    .permute(&[0, 2, 1])
                    .softmax_lastdim()
            }
            InterestExtractor::DynamicRouting {
                transform,
                routing_init,
                k,
                iters,
            } => {
                // Re-run routing and return the final coupling coefficients.
                let s = h.matmul(transform);
                let init_slice = routing_init.narrow(1, 0, l);
                let mut logits_data = Vec::with_capacity(b * *k * l);
                let init_vec = init_slice.to_vec();
                for _ in 0..b {
                    logits_data.extend_from_slice(&init_vec);
                }
                let mut logits = Tensor::from_vec(logits_data, [b, *k, l]);
                let blocked: Vec<f32> = allowed.iter().map(|&v| 1.0 - v).collect();
                let blocked_t = Tensor::from_vec(blocked, [b, 1, l]);
                for _ in 0..iters.saturating_sub(1) {
                    let c = logits.masked_fill(&blocked_t, -1e9).softmax_lastdim();
                    let z = squash(&c.bmm(&s));
                    logits = logits.add(&z.bmm(&s.transpose_last()));
                }
                logits.masked_fill(&blocked_t, -1e9).softmax_lastdim()
            }
        }
    }
}

/// Capsule squash: `v = (|x|² / (1 + |x|²)) · x / |x|` over the last axis.
fn squash(x: &Tensor) -> Tensor {
    let sq_norm = x.square().sum_axis(-1, true); // [B, K, 1]
    let norm = sq_norm.add_scalar(1e-9).sqrt();
    let scale = sq_norm.div(&sq_norm.add_scalar(1.0)).div(&norm);
    x.mul(&scale)
}

impl Module for InterestExtractor {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        match self {
            InterestExtractor::SelfAttentive { w1, w2, .. } => {
                map.insert(join_name(prefix, "w1"), w1.clone());
                map.insert(join_name(prefix, "w2"), w2.clone());
            }
            InterestExtractor::DynamicRouting { transform, .. } => {
                map.insert(join_name(prefix, "transform"), transform.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::SeedableRng;

    fn config(kind: ExtractorKind) -> ModelConfig {
        ModelConfig {
            dim: 8,
            extractor_hidden: 8,
            num_interests: 3,
            max_seq_len: 10,
            extractor: kind,
            ..ModelConfig::default()
        }
    }

    fn demo_h(b: usize, l: usize, d: usize) -> Tensor {
        Tensor::from_vec(
            (0..b * l * d).map(|i| ((i * 13 % 17) as f32) * 0.1 - 0.8).collect(),
            [b, l, d],
        )
    }

    #[test]
    fn self_attentive_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let ex = InterestExtractor::new(&config(ExtractorKind::SelfAttentive), &mut rng);
        let h = demo_h(2, 5, 8);
        let z = ex.forward(&h, &[1.0; 10]);
        assert_eq!(z.dims(), &[2, 3, 8]);
    }

    #[test]
    fn dynamic_routing_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let ex = InterestExtractor::new(&config(ExtractorKind::DynamicRouting), &mut rng);
        let h = demo_h(2, 5, 8);
        let z = ex.forward(&h, &[1.0; 10]);
        assert_eq!(z.dims(), &[2, 3, 8]);
        assert!(z.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn masked_positions_do_not_influence_interests() {
        let mut rng = StdRng::seed_from_u64(1);
        let ex = InterestExtractor::new(&config(ExtractorKind::SelfAttentive), &mut rng);
        let h1 = demo_h(1, 4, 8);
        // Change the last (masked) position's features.
        let mut data = h1.to_vec();
        for v in &mut data[3 * 8..] {
            *v += 5.0;
        }
        let h2 = Tensor::from_vec(data, [1, 4, 8]);
        let allowed = vec![1.0, 1.0, 1.0, 0.0];
        let z1 = ex.forward(&h1, &allowed).to_vec();
        let z2 = ex.forward(&h2, &allowed).to_vec();
        for (a, b) in z1.iter().zip(z2.iter()) {
            assert!((a - b).abs() < 1e-5, "masked position leaked");
        }
    }

    #[test]
    fn attention_rows_are_distributions_over_allowed() {
        let mut rng = StdRng::seed_from_u64(2);
        let ex = InterestExtractor::new(&config(ExtractorKind::SelfAttentive), &mut rng);
        let h = demo_h(1, 4, 8);
        let allowed = vec![1.0, 0.0, 1.0, 0.0];
        let a = ex.attention_weights(&h, &allowed);
        assert_eq!(a.dims(), &[1, 3, 4]);
        let v = a.to_vec();
        for k in 0..3 {
            let row = &v[k * 4..(k + 1) * 4];
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(row[1] < 1e-6 && row[3] < 1e-6, "blocked positions got weight");
        }
    }

    #[test]
    fn interests_differ_across_k() {
        let mut rng = StdRng::seed_from_u64(3);
        let ex = InterestExtractor::new(&config(ExtractorKind::SelfAttentive), &mut rng);
        let h = demo_h(1, 6, 8);
        let z = ex.forward(&h, &[1.0; 6]).to_vec();
        // Not all interest vectors identical.
        let first = &z[0..8];
        assert!(
            (1..3).any(|k| {
                let other = &z[k * 8..(k + 1) * 8];
                first.iter().zip(other).any(|(a, b)| (a - b).abs() > 1e-6)
            }),
            "all interests collapsed"
        );
    }

    #[test]
    fn routing_interests_differ_across_k() {
        let mut rng = StdRng::seed_from_u64(4);
        let ex = InterestExtractor::new(&config(ExtractorKind::DynamicRouting), &mut rng);
        let h = demo_h(1, 6, 8);
        let z = ex.forward(&h, &[1.0; 6]).to_vec();
        let first = &z[0..8];
        assert!((1..3).any(|k| {
            let other = &z[k * 8..(k + 1) * 8];
            first.iter().zip(other).any(|(a, b)| (a - b).abs() > 1e-6)
        }));
    }

    #[test]
    fn squash_bounds_norm_below_one() {
        let x = Tensor::from_vec(vec![10.0, 0.0, 0.0, 0.01, 0.0, 0.0], [2, 1, 3]);
        let y = squash(&x).to_vec();
        let n1 = (y[0] * y[0] + y[1] * y[1] + y[2] * y[2]).sqrt();
        let n2 = (y[3] * y[3] + y[4] * y[4] + y[5] * y[5]).sqrt();
        assert!(n1 < 1.0 && n1 > 0.9, "large vectors squash to ~1: {n1}");
        assert!(n2 < 0.01, "small vectors shrink: {n2}");
    }

    #[test]
    fn gradients_flow_through_both_extractors() {
        for kind in [ExtractorKind::SelfAttentive, ExtractorKind::DynamicRouting] {
            let mut rng = StdRng::seed_from_u64(5);
            let ex = InterestExtractor::new(&config(kind), &mut rng);
            let h = demo_h(1, 4, 8);
            ex.forward(&h, &[1.0; 4]).sum_all().backward();
            for (name, t) in ex.param_map("ex").iter() {
                assert!(t.grad().is_some(), "{name} missing grad ({kind:?})");
            }
        }
    }
}
