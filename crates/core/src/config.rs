//! Model and training configuration.

use serde::{Deserialize, Serialize};

use mbssl_data::Behavior;

/// Which multi-interest extractor to use (§2.3 of DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractorKind {
    /// ComiRec-SA style self-attentive pooling.
    SelfAttentive,
    /// MIND style dynamic routing with squash non-linearity.
    DynamicRouting,
}

/// Which sequence encoder backbone to use (§2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// Behavior-aware hypergraph transformer (the paper's architecture).
    Hypergraph,
    /// Plain bidirectional transformer (the `w/o hypergraph` ablation).
    Transformer,
}

/// Full MBMISSL hyperparameter set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Embedding / hidden dimension.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub num_layers: usize,
    /// FFN hidden width.
    pub ffn_hidden: usize,
    /// Number of interests `K`.
    pub num_interests: usize,
    /// Hidden width of the self-attentive extractor.
    pub extractor_hidden: usize,
    /// Routing iterations (dynamic-routing extractor only).
    pub routing_iters: usize,
    /// Which multi-interest extractor to build.
    pub extractor: ExtractorKind,
    /// Which encoder backbone to build.
    pub encoder: EncoderKind,
    /// Temporal hyperedge window.
    pub hg_window: usize,
    /// Max item-repetition hyperedges.
    pub hg_max_item_edges: usize,
    /// Maximum history length the model accepts.
    pub max_seq_len: usize,
    /// Dropout probability applied in the input layer and backbone.
    pub dropout: f32,
    /// Weight of the cross-behavior interest-alignment InfoNCE loss.
    pub lambda_align: f32,
    /// Weight of the augmentation-based sequence contrastive loss.
    pub lambda_aug: f32,
    /// Weight of the interest-disentanglement loss.
    pub lambda_disent: f32,
    /// Weight of the auxiliary-behavior next-item prediction loss
    /// (an MB-STR-style multi-task extension; 0 disables it and is the
    /// default — the reconstructed paper's SSL route replaces it).
    pub lambda_aux: f32,
    /// InfoNCE temperature τ.
    pub temperature: f32,
    /// Parameter-init / stochastic-forward seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            dim: 48,
            heads: 2,
            num_layers: 2,
            ffn_hidden: 96,
            num_interests: 4,
            extractor_hidden: 48,
            routing_iters: 3,
            extractor: ExtractorKind::SelfAttentive,
            encoder: EncoderKind::Hypergraph,
            hg_window: 8,
            hg_max_item_edges: 4,
            max_seq_len: 50,
            dropout: 0.2,
            lambda_align: 0.1,
            lambda_aug: 0.1,
            lambda_disent: 0.05,
            lambda_aux: 0.0,
            temperature: 0.2,
            seed: 42,
        }
    }
}

impl ModelConfig {
    /// Disables every self-supervised objective (`w/o SSL` ablation).
    pub fn without_ssl(mut self) -> Self {
        self.lambda_align = 0.0;
        self.lambda_aug = 0.0;
        self.lambda_disent = 0.0;
        self
    }

    /// Single-interest variant (`w/o multi-interest` ablation).
    pub fn single_interest(mut self) -> Self {
        self.num_interests = 1;
        self
    }

    /// Plain-transformer variant (`w/o hypergraph` ablation).
    pub fn plain_transformer(mut self) -> Self {
        self.encoder = EncoderKind::Transformer;
        self
    }

    /// Sanity-checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 || !self.dim.is_multiple_of(self.heads) {
            return Err(format!("dim {} must be divisible by heads {}", self.dim, self.heads));
        }
        if self.num_interests == 0 {
            return Err("need at least one interest".into());
        }
        if self.temperature <= 0.0 {
            return Err("temperature must be positive".into());
        }
        if self.max_seq_len == 0 {
            return Err("max_seq_len must be positive".into());
        }
        Ok(())
    }
}

/// Training-loop configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum training epochs.
    pub epochs: usize,
    /// Instances per mini-batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training negatives per positive (sampled-softmax candidates).
    pub num_negatives: usize,
    /// Stop after this many epochs without validation NDCG@10 improvement.
    pub patience: usize,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Evaluate on validation every `eval_every` epochs.
    pub eval_every: usize,
    /// Candidates per positive at evaluation time (99 = the 1-vs-99
    /// protocol).
    pub eval_negatives: usize,
    /// RNG seed for shuffling and sampling.
    pub seed: u64,
    /// Print progress lines.
    pub verbose: bool,
    /// Build the next batch (negative sampling + encoding) on a producer
    /// thread while the current step runs. Results are bit-identical either
    /// way: batch RNG streams are derived per batch, not from wall-clock
    /// interleaving.
    pub prefetch: bool,
    /// Write a run-ledger directory (`manifest.json` + per-epoch
    /// `metrics.jsonl`, see `crates/core/src/ledger.rs`) here. `None` falls
    /// back to the `MBSSL_RUN_DIR` environment variable; empty/unset
    /// disables the ledger. Ledger writes never touch an RNG, so training
    /// is bit-for-bit identical with the ledger on or off.
    pub run_dir: Option<String>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 128,
            lr: 1e-3,
            num_negatives: 64,
            patience: 5,
            clip_norm: 5.0,
            eval_every: 1,
            eval_negatives: 99,
            seed: 7,
            verbose: false,
            prefetch: true,
            run_dir: None,
        }
    }
}

impl TrainConfig {
    /// Compact settings for unit/integration tests.
    pub fn fast_test() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 64,
            num_negatives: 16,
            patience: 3,
            ..Default::default()
        }
    }
}

/// The behavior set a model was built for, with the target singled out.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BehaviorSchema {
    /// Behaviors the model consumes, in funnel order.
    pub behaviors: Vec<Behavior>,
    /// The behavior whose next item is predicted.
    pub target: Behavior,
}

impl BehaviorSchema {
    /// A schema over `behaviors` predicting `target` (must be a member).
    pub fn new(behaviors: Vec<Behavior>, target: Behavior) -> Self {
        assert!(behaviors.contains(&target), "target must be in behavior set");
        BehaviorSchema { behaviors, target }
    }

    /// Behaviors other than the target (SSL alignment sources).
    pub fn auxiliaries(&self) -> Vec<Behavior> {
        self.behaviors
            .iter()
            .copied()
            .filter(|&b| b != self.target)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ModelConfig::default().validate().unwrap();
    }

    #[test]
    fn ablation_builders() {
        let c = ModelConfig::default().without_ssl();
        assert_eq!(c.lambda_align, 0.0);
        assert_eq!(c.lambda_aug, 0.0);
        assert_eq!(c.lambda_disent, 0.0);
        assert_eq!(ModelConfig::default().single_interest().num_interests, 1);
        assert_eq!(
            ModelConfig::default().plain_transformer().encoder,
            EncoderKind::Transformer
        );
    }

    #[test]
    fn validation_catches_bad_dims() {
        let c = ModelConfig {
            dim: 7, // not divisible by 2 heads
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ModelConfig {
            dim: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_interests_and_temp() {
        let c = ModelConfig {
            num_interests: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ModelConfig {
            temperature: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn schema_auxiliaries_exclude_target() {
        let s = BehaviorSchema::new(
            vec![Behavior::Click, Behavior::Cart, Behavior::Purchase],
            Behavior::Purchase,
        );
        assert_eq!(s.auxiliaries(), vec![Behavior::Click, Behavior::Cart]);
    }

    #[test]
    #[should_panic(expected = "target must be in behavior set")]
    fn schema_rejects_foreign_target() {
        BehaviorSchema::new(vec![Behavior::Click], Behavior::Purchase);
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = ModelConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dim, c.dim);
        assert_eq!(back.extractor, c.extractor);
    }
}
