//! Graph-free inference engine (DESIGN.md §13).
//!
//! Training wants autograd; serving wants none of it. This module compiles
//! a trained [`Mbmissl`] into an immutable [`InferenceModel`]:
//!
//! - every `Linear` weight is pre-packed **once** into the microkernel
//!   panel layout ([`PackedB`], MR=4/NR=8/KC=256), so per-request GEMMs
//!   skip the pack step entirely;
//! - all activations live in a per-request bump [`Arena`] — no tensor
//!   graph nodes, no refcounts, no allocator churn; the arena is rented
//!   from a free list, `reset()` once per request, and reaches a
//!   steady-state capacity after the first request;
//! - the full item-embedding table is pre-transposed and packed so
//!   catalog ranking is **one** GEMM over all items instead of a
//!   re-encoded forward per candidate chunk;
//! - optionally the catalog scorer runs against an i8 (per-row scale) or
//!   bf16 copy of the item table ([`QuantMode`], opt-in via
//!   `MBSSL_QUANT`).
//!
//! # Parity contract
//!
//! The engine mirrors the *unfused* eval-mode composition of the autograd
//! path operation for operation — same kernels (`gemm_nn` variants that
//! are bit-identical by contract, the exact softmax / layernorm row
//! loops, the same gelu/tanh/squash formulas, the same `-1e9` mask fill
//! and strict-`>` max-over-interests) — so its f32 scores are
//! **bit-for-bit identical** to `Mbmissl::score_batch`. Since the fused
//! ops are themselves bit-identical to the unfused composition, parity
//! holds regardless of `MBSSL_FUSED`. Quantized catalog scoring is the
//! one deliberate exception and is gated by an HR/NDCG drift tolerance
//! instead (`MBSSL_QUANT_TOL`). `tests/infer_parity.rs` pins all of this.
//!
//! `MBSSL_INFER=off` disables the engine: [`Mbmissl::prepare_inference`]
//! returns `None` and `evaluate` / `recommend_top_n` run the autograd
//! path exactly as before.
//!
//! Telemetry: compilation runs under `infer.pack`, each forward under
//! `infer.forward`, and catalog ranking under `infer.score_catalog`
//! (nested in the usual `serve.top_n`).
//!
//! # Two-stage retrieval
//!
//! Attaching an [`IvfIndex`] ([`InferenceModel::attach_index`]) switches
//! `recommend_catalog` from the exhaustive full-catalog GEMM to
//! retrieve-then-rerank (DESIGN.md §14): each interest vector probes the
//! index (`index.probe` span), and the candidate union is re-ranked by the
//! same gather-based scoring as [`InferenceModel::score_candidates`]
//! (`index.rerank` span). Re-ranked scores are bit-identical to the
//! exhaustive scores of the same items, so the output is exactly the
//! exhaustive ranking restricted to the retrieved set — recall is the only
//! approximation. `MBSSL_ANN=off` ignores any attached index.

use std::cell::{Cell, UnsafeCell};
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

use mbssl_data::sampler::Batch;
use mbssl_data::{Behavior, ItemId, Sequence};
use mbssl_hypergraph::{build_batch_incidence, BatchIncidence, HypergraphConfig};
use mbssl_telemetry as telemetry;
use mbssl_tensor::kernels::{self, PackedB};
use mbssl_tensor::quant::{Bf16Rows, QuantMode, QuantizedRows};

use crate::ann::{self, AnnError, IvfIndex};
use crate::config::ModelConfig;
use crate::encoder::Backbone;
use crate::interest::InterestExtractor;
use crate::model::Mbmissl;
use crate::recommender::{RankKey, Recommendation, SequentialRecommender};
use crate::trainer::TrainableRecommender;

/// The value masked-out attention logits are filled with, matching the
/// autograd path's `masked_fill(_, -1e9)`.
const MASK_FILL: f32 = -1e9;
/// LayerNorm epsilon: every `LayerNorm::new` in the model uses 1e-5.
const LN_EPS: f32 = 1e-5;
/// The tanh-gelu constant `sqrt(2/pi)` as the f32 literal the tensor
/// crate's `gelu` uses.
const GELU_C: f32 = 0.797_884_6;

/// Whether the inference engine is allowed. Defaults to on;
/// `MBSSL_INFER=off` (or `0` / `none`) keeps every consumer on the
/// autograd path. Read once and cached, mirroring `MBSSL_FUSED`.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("MBSSL_INFER").as_deref(),
            Ok("off") | Ok("0") | Ok("none")
        )
    })
}

/// A bump arena for per-request activation buffers.
///
/// `alloc` hands out zeroed `&mut [f32]` windows of one primary buffer;
/// when the primary runs out, each further request gets its own boxed
/// slice (stable address) so outstanding slices are never invalidated.
/// `reset` (between requests, `&mut self` so no loans are live) drops the
/// overflow and, if any was needed, grows the primary to cover the
/// observed high-water mark — after the first request on a given shape
/// the arena is a pure pointer bump with zero heap traffic.
pub struct Arena {
    /// Owner of the primary buffer. Only touched by `reset`/drop; all
    /// reads and writes between resets go through `base`.
    primary: Box<[f32]>,
    /// `primary.as_mut_ptr()`, captured while `primary` was uniquely
    /// borrowed so outstanding `alloc` slices never alias a later
    /// re-borrow of the box.
    base: *mut f32,
    offset: Cell<usize>,
    overflow: UnsafeCell<Vec<Box<[f32]>>>,
    overflow_total: Cell<usize>,
}

// SAFETY: the arena owns every buffer its raw pointers refer to, so
// moving it to another thread moves the data with it. It is deliberately
// NOT Sync (Cell/UnsafeCell); concurrent use is mediated by the engine's
// free list, which hands each arena to exactly one request at a time.
unsafe impl Send for Arena {}

impl Arena {
    /// An arena whose primary buffer holds `capacity` f32s.
    pub fn with_capacity(capacity: usize) -> Arena {
        let mut primary = vec![0.0f32; capacity].into_boxed_slice();
        let base = primary.as_mut_ptr();
        Arena {
            primary,
            base,
            offset: Cell::new(0),
            overflow: UnsafeCell::new(Vec::new()),
            overflow_total: Cell::new(0),
        }
    }

    /// Current primary-buffer capacity in f32 elements.
    pub fn capacity(&self) -> usize {
        self.primary.len()
    }

    /// Total f32s handed out since the last `reset`.
    pub fn used(&self) -> usize {
        self.offset.get() + self.overflow_total.get()
    }

    /// Allocates a zeroed slice of `n` f32s that lives until the arena is
    /// reset. Allocations are disjoint, so holding several at once is
    /// fine — that is the whole point.
    #[allow(clippy::mut_from_ref)] // bump arena: disjoint windows per call
    pub fn alloc(&self, n: usize) -> &mut [f32] {
        let off = self.offset.get();
        if off + n <= self.primary.len() {
            self.offset.set(off + n);
            // SAFETY: [off, off+n) was never handed out since the last
            // reset (offset only grows), `base` stays valid until `reset`
            // replaces the primary (which requires `&mut self`, i.e. no
            // outstanding loans).
            let out = unsafe { std::slice::from_raw_parts_mut(self.base.add(off), n) };
            out.fill(0.0);
            return out;
        }
        let mut boxed = vec![0.0f32; n].into_boxed_slice();
        let ptr = boxed.as_mut_ptr();
        self.overflow_total.set(self.overflow_total.get() + n);
        // SAFETY: pushing onto the overflow vec moves only the Box
        // handles; the heap allocations they point to are stable, so
        // previously returned overflow slices stay valid.
        unsafe { (*self.overflow.get()).push(boxed) };
        unsafe { std::slice::from_raw_parts_mut(ptr, n) }
    }

    /// Invalidates all outstanding allocations (enforced by `&mut self`)
    /// and consolidates: if overflow was needed, the primary grows to the
    /// high-water mark so the next request of the same shape bump-fits.
    pub fn reset(&mut self) {
        let used = self.used();
        if self.overflow_total.get() > 0 && used > self.primary.len() {
            self.primary = vec![0.0f32; used.next_power_of_two()].into_boxed_slice();
            self.base = self.primary.as_mut_ptr();
        }
        self.overflow.get_mut().clear();
        self.overflow_total.set(0);
        self.offset.set(0);
    }
}

/// The exact elementwise gelu of the autograd path.
#[inline]
fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

/// The exact per-row softmax loop of `kernels::softmax_rows`.
fn softmax_rows_inplace(data: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for row in data.chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// `[B, L, H*Dh] → [B*H, L, Dh]`, the reshape/permute/reshape of
/// `MultiHeadAttention::split_heads` as one index map.
fn split_heads(inp: &[f32], out: &mut [f32], b: usize, l: usize, heads: usize, dh: usize) {
    let d = heads * dh;
    for bi in 0..b {
        for t in 0..l {
            let src = &inp[(bi * l + t) * d..][..d];
            for h in 0..heads {
                out[((bi * heads + h) * l + t) * dh..][..dh]
                    .copy_from_slice(&src[h * dh..][..dh]);
            }
        }
    }
}

/// Inverse of [`split_heads`].
fn merge_heads(inp: &[f32], out: &mut [f32], b: usize, l: usize, heads: usize, dh: usize) {
    let d = heads * dh;
    for bi in 0..b {
        for t in 0..l {
            let dst = &mut out[(bi * l + t) * d..][..d];
            for h in 0..heads {
                dst[h * dh..][..dh]
                    .copy_from_slice(&inp[((bi * heads + h) * l + t) * dh..][..dh]);
            }
        }
    }
}

/// A `Linear` with its weight pre-packed into GEMM panels.
struct PackedLinear {
    w: PackedB,
    bias: Vec<f32>,
}

impl PackedLinear {
    /// `out = x · W + b` for row-major `x` (`m × in`), writing `m × out`.
    fn apply(&self, x: &[f32], out: &mut [f32], m: usize, scratch: &mut [f32]) {
        out.fill(0.0);
        kernels::gemm_nn_prepacked_scratch(x, &self.w, out, m, scratch);
        let n = self.w.n();
        for row in out.chunks_mut(n) {
            for (v, &b) in row.iter_mut().zip(self.bias.iter()) {
                *v += b;
            }
        }
    }
}

/// LayerNorm parameters; `apply` is the exact row loop of
/// `kernels::layernorm_forward_rows`.
struct LayerNormWeights {
    gamma: Vec<f32>,
    beta: Vec<f32>,
}

impl LayerNormWeights {
    fn apply(&self, x: &[f32], out: &mut [f32], d: usize) {
        for (row, orow) in x.chunks(d).zip(out.chunks_mut(d)) {
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + LN_EPS).sqrt();
            for j in 0..d {
                orow[j] = self.gamma[j] * ((row[j] - mean) * istd) + self.beta[j];
            }
        }
    }
}

/// Multi-head attention with all four projections pre-packed.
struct AttnWeights {
    wq: PackedLinear,
    wk: PackedLinear,
    wv: PackedLinear,
    wo: PackedLinear,
    heads: usize,
    head_dim: usize,
    dim: usize,
}

impl AttnWeights {
    /// Cross attention `query [b, lq, d]` over `kv [b, lk, d]`;
    /// `blocked(bh, i, j)` reproduces the autograd mask (true → `-1e9`).
    fn forward<'a>(
        &self,
        query: &[f32],
        kv: &[f32],
        b: usize,
        lq: usize,
        lk: usize,
        blocked: impl Fn(usize, usize, usize) -> bool,
        arena: &'a Arena,
    ) -> &'a mut [f32] {
        let (d, heads, dh) = (self.dim, self.heads, self.head_dim);
        let scratch = arena.alloc(PackedB::SCRATCH_LEN);
        let q_proj = arena.alloc(b * lq * d);
        self.wq.apply(query, q_proj, b * lq, scratch);
        let k_proj = arena.alloc(b * lk * d);
        self.wk.apply(kv, k_proj, b * lk, scratch);
        let v_proj = arena.alloc(b * lk * d);
        self.wv.apply(kv, v_proj, b * lk, scratch);

        let qh = arena.alloc(b * heads * lq * dh);
        split_heads(q_proj, qh, b, lq, heads, dh);
        let kh = arena.alloc(b * heads * lk * dh);
        split_heads(k_proj, kh, b, lk, heads, dh);
        let vh = arena.alloc(b * heads * lk * dh);
        split_heads(v_proj, vh, b, lk, heads, dh);

        // scores = (q · kᵀ) * scale, per head; the transpose is
        // materialized exactly like `transpose_last` so the GEMM is the
        // same `gemm_nn` the autograd bmm runs.
        let scores = arena.alloc(b * heads * lq * lk);
        let kt = arena.alloc(dh * lk);
        for bh in 0..b * heads {
            kernels::transpose(&kh[bh * lk * dh..][..lk * dh], kt, lk, dh);
            kernels::gemm_nn(
                &qh[bh * lq * dh..][..lq * dh],
                kt,
                &mut scores[bh * lq * lk..][..lq * lk],
                lq,
                dh,
                lk,
            );
        }
        let scale = 1.0 / (dh as f32).sqrt();
        for v in scores.iter_mut() {
            *v *= scale;
        }
        for bh in 0..b * heads {
            for i in 0..lq {
                let row = &mut scores[(bh * lq + i) * lk..][..lk];
                for (j, s) in row.iter_mut().enumerate() {
                    if blocked(bh, i, j) {
                        *s = MASK_FILL;
                    }
                }
            }
        }
        softmax_rows_inplace(scores, lk);

        let ctx = arena.alloc(b * heads * lq * dh);
        for bh in 0..b * heads {
            kernels::gemm_nn(
                &scores[bh * lq * lk..][..lq * lk],
                &vh[bh * lk * dh..][..lk * dh],
                &mut ctx[bh * lq * dh..][..lq * dh],
                lq,
                lk,
                dh,
            );
        }
        let merged = arena.alloc(b * lq * d);
        merge_heads(ctx, merged, b, lq, heads, dh);
        let out = arena.alloc(b * lq * d);
        self.wo.apply(merged, out, b * lq, scratch);
        out
    }
}

/// FeedForward (gelu between two pre-packed linears).
struct FfnWeights {
    lin1: PackedLinear,
    lin2: PackedLinear,
}

impl FfnWeights {
    fn forward<'a>(&self, x: &[f32], m: usize, arena: &'a Arena) -> &'a mut [f32] {
        let scratch = arena.alloc(PackedB::SCRATCH_LEN);
        let hidden = arena.alloc(m * self.lin1.w.n());
        self.lin1.apply(x, hidden, m, scratch);
        for v in hidden.iter_mut() {
            *v = gelu(*v);
        }
        let out = arena.alloc(m * self.lin2.w.n());
        self.lin2.apply(hidden, out, m, scratch);
        out
    }
}

/// One hypergraph-transformer layer (two-phase node↔edge attention).
struct HgLayerWeights {
    edge_type_emb: Vec<f32>,
    node_to_edge: AttnWeights,
    edge_to_node: AttnWeights,
    ln_in: LayerNormWeights,
    ln_ffn: LayerNormWeights,
    ffn: FfnWeights,
}

impl HgLayerWeights {
    fn forward<'a>(
        &self,
        x: &[f32],
        inc: &BatchIncidence,
        b: usize,
        l: usize,
        arena: &'a Arena,
    ) -> &'a mut [f32] {
        let d = self.node_to_edge.dim;
        let e = inc.num_edges;
        let heads = self.node_to_edge.heads;
        let normed = arena.alloc(b * l * d);
        self.ln_in.apply(x, normed, d);
        let edge_q = arena.alloc(b * e * d);
        for (i, &et) in inc.edge_type_ids.iter().enumerate() {
            edge_q[i * d..][..d].copy_from_slice(&self.edge_type_emb[et * d..][..d]);
        }
        let mem = &inc.membership;
        let edges = self.node_to_edge.forward(
            edge_q,
            normed,
            b,
            e,
            l,
            |bh, ei, t| (1.0 - mem[((bh / heads) * e + ei) * l + t]) != 0.0,
            arena,
        );
        let update = self.edge_to_node.forward(
            normed,
            edges,
            b,
            l,
            e,
            |bh, t, ei| (1.0 - mem[((bh / heads) * e + ei) * l + t]) != 0.0,
            arena,
        );
        let x2 = arena.alloc(b * l * d);
        for i in 0..b * l * d {
            x2[i] = x[i] + update[i];
        }
        let ln_out = arena.alloc(b * l * d);
        self.ln_ffn.apply(x2, ln_out, d);
        let ffn_out = self.ffn.forward(ln_out, b * l, arena);
        let out = arena.alloc(b * l * d);
        for i in 0..b * l * d {
            out[i] = x2[i] + ffn_out[i];
        }
        out
    }
}

/// One pre-LN transformer block.
struct BlockWeights {
    attn: AttnWeights,
    ffn: FfnWeights,
    ln1: LayerNormWeights,
    ln2: LayerNormWeights,
}

impl BlockWeights {
    fn forward<'a>(
        &self,
        x: &[f32],
        b: usize,
        l: usize,
        valid: &[f32],
        arena: &'a Arena,
    ) -> &'a mut [f32] {
        let d = self.attn.dim;
        let heads = self.attn.heads;
        let n1 = arena.alloc(b * l * d);
        self.ln1.apply(x, n1, d);
        // key_padding_mask blocks key j wherever valid[b, j] == 0.
        let attn_out = self.attn.forward(
            n1,
            n1,
            b,
            l,
            l,
            |bh, _i, j| valid[(bh / heads) * l + j] == 0.0,
            arena,
        );
        let x2 = arena.alloc(b * l * d);
        for i in 0..b * l * d {
            x2[i] = x[i] + attn_out[i];
        }
        let n2 = arena.alloc(b * l * d);
        self.ln2.apply(x2, n2, d);
        let f = self.ffn.forward(n2, b * l, arena);
        let out = arena.alloc(b * l * d);
        for i in 0..b * l * d {
            out[i] = x2[i] + f[i];
        }
        out
    }
}

enum BackboneWeights {
    Hypergraph {
        layers: Vec<HgLayerWeights>,
        hg_config: HypergraphConfig,
    },
    Transformer {
        blocks: Vec<BlockWeights>,
    },
}

enum ExtractorWeights {
    SelfAttentive {
        w1: PackedB,
        w2: PackedB,
        k: usize,
    },
    DynamicRouting {
        transform: PackedB,
        /// `[K, init_cols]` fixed routing-noise table.
        routing_init: Vec<f32>,
        init_cols: usize,
        k: usize,
        iters: usize,
    },
}

impl ExtractorWeights {
    /// Pools `h [b, l, d]` into interests `[b, k, d]`, mirroring
    /// `InterestExtractor::forward`.
    fn forward<'a>(
        &self,
        h: &[f32],
        allowed: &[f32],
        b: usize,
        l: usize,
        d: usize,
        arena: &'a Arena,
    ) -> &'a mut [f32] {
        match self {
            ExtractorWeights::SelfAttentive { w1, w2, k } => {
                let k = *k;
                let scratch = arena.alloc(PackedB::SCRATCH_LEN);
                let t1 = arena.alloc(b * l * w1.n());
                kernels::gemm_nn_prepacked_scratch(h, w1, t1, b * l, scratch);
                for v in t1.iter_mut() {
                    *v = v.tanh();
                }
                let logits = arena.alloc(b * l * k);
                kernels::gemm_nn_prepacked_scratch(t1, w2, logits, b * l, scratch);
                // blocked [b, l, 1] broadcast over K.
                for (i, &a) in allowed.iter().enumerate() {
                    if (1.0 - a) != 0.0 {
                        logits[i * k..][..k].fill(MASK_FILL);
                    }
                }
                // permute [B, L, K] → [B, K, L], softmax over L.
                let attn = arena.alloc(b * k * l);
                for bi in 0..b {
                    for t in 0..l {
                        for kk in 0..k {
                            attn[(bi * k + kk) * l + t] = logits[(bi * l + t) * k + kk];
                        }
                    }
                }
                softmax_rows_inplace(attn, l);
                let z = arena.alloc(b * k * d);
                for bi in 0..b {
                    kernels::gemm_nn(
                        &attn[bi * k * l..][..k * l],
                        &h[bi * l * d..][..l * d],
                        &mut z[bi * k * d..][..k * d],
                        k,
                        l,
                        d,
                    );
                }
                z
            }
            ExtractorWeights::DynamicRouting {
                transform,
                routing_init,
                init_cols,
                k,
                iters,
            } => {
                let (k, iters, init_cols) = (*k, *iters, *init_cols);
                let scratch = arena.alloc(PackedB::SCRATCH_LEN);
                let s = arena.alloc(b * l * d);
                kernels::gemm_nn_prepacked_scratch(h, transform, s, b * l, scratch);
                let logits = arena.alloc(b * k * l);
                for bi in 0..b {
                    for kk in 0..k {
                        logits[(bi * k + kk) * l..][..l]
                            .copy_from_slice(&routing_init[kk * init_cols..][..l]);
                    }
                }
                let z = arena.alloc(b * k * d); // zeros if iters == 0
                let c = arena.alloc(b * k * l);
                let weighted = arena.alloc(b * k * d);
                let agree = arena.alloc(b * k * l);
                let st = arena.alloc(d * l);
                for iter in 0..iters {
                    // c = softmax(mask(logits)); the mask is [b, 1, l]
                    // broadcast over K and does not touch `logits`.
                    c.copy_from_slice(logits);
                    for bi in 0..b {
                        for t in 0..l {
                            if (1.0 - allowed[bi * l + t]) != 0.0 {
                                for kk in 0..k {
                                    c[(bi * k + kk) * l + t] = MASK_FILL;
                                }
                            }
                        }
                    }
                    softmax_rows_inplace(c, l);
                    weighted.fill(0.0);
                    for bi in 0..b {
                        kernels::gemm_nn(
                            &c[bi * k * l..][..k * l],
                            &s[bi * l * d..][..l * d],
                            &mut weighted[bi * k * d..][..k * d],
                            k,
                            l,
                            d,
                        );
                    }
                    // z = squash(weighted), rowwise over d.
                    for (zrow, wrow) in z.chunks_mut(d).zip(weighted.chunks(d)) {
                        let mut sq = 0.0f32;
                        for &v in wrow.iter() {
                            sq += v * v;
                        }
                        let norm = (sq + 1e-9).sqrt();
                        let scale = (sq / (sq + 1.0)) / norm;
                        for (zv, &wv) in zrow.iter_mut().zip(wrow.iter()) {
                            *zv = wv * scale;
                        }
                    }
                    if iter + 1 < iters {
                        // logits += z · sᵀ (routing agreement).
                        agree.fill(0.0);
                        for bi in 0..b {
                            kernels::transpose(&s[bi * l * d..][..l * d], st, l, d);
                            kernels::gemm_nn(
                                &z[bi * k * d..][..k * d],
                                st,
                                &mut agree[bi * k * l..][..k * l],
                                k,
                                d,
                                l,
                            );
                        }
                        for (lv, &av) in logits.iter_mut().zip(agree.iter()) {
                            *lv += av;
                        }
                    }
                }
                z
            }
        }
    }
}

/// The catalog-scoring table: the f32 item table pre-transposed and
/// packed for one big GEMM, or a quantized copy scored by row dots.
enum CatalogTable {
    F32(PackedB),
    I8(QuantizedRows),
    Bf16(Bf16Rows),
}

/// An attached IVF index plus its probe width.
struct AnnState {
    index: IvfIndex,
    nprobe: usize,
}

/// One catalog-ranking query against a shared interest buffer
/// ([`InferenceModel::rank_from_interests`]).
pub struct CatalogQuery<'a> {
    /// How many recommendations to return.
    pub n: usize,
    /// Items to skip (typically the user's already-seen set).
    pub exclude: &'a HashSet<ItemId>,
}

/// The outcome of one [`CatalogQuery`].
pub struct RankedQuery {
    /// Top-`n` recommendations, score descending, ties toward the lower
    /// item id — exactly [`recommend_catalog`]'s ordering.
    ///
    /// [`recommend_catalog`]: SequentialRecommender::recommend_catalog
    pub recs: Vec<Recommendation>,
    /// Whether the two-stage probe+rerank route served this query
    /// (`false` = exhaustive, including the short-probe fallback).
    pub used_ann: bool,
}

/// Heap push for bounded top-`n` retention, shared by every ranking path
/// so tie-breaking can never diverge between them.
#[inline]
fn push_top(
    heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<RankKey>>,
    n: usize,
    item: ItemId,
    score: f32,
) {
    heap.push(std::cmp::Reverse(RankKey { score, item }));
    if heap.len() > n {
        heap.pop();
    }
}

/// An immutable, graph-free compilation of a trained [`Mbmissl`].
///
/// Build one with [`InferenceModel::compile`] (or let `evaluate` /
/// `recommend_top_n` do it via [`SequentialRecommender::prepare_inference`]).
pub struct InferenceModel {
    config: ModelConfig,
    num_items: usize,
    /// Item-table rows, `num_items + 1` (row 0 = padding).
    item_rows: usize,
    dim: usize,
    num_interests: usize,
    item_table: Vec<f32>,
    behavior_table: Vec<f32>,
    pos_table: Vec<f32>,
    input_ln: LayerNormWeights,
    backbone: BackboneWeights,
    extractor: ExtractorWeights,
    catalog: CatalogTable,
    quant_mode: QuantMode,
    ann: Option<AnnState>,
    name: String,
    arenas: Mutex<Vec<Arena>>,
    arena_capacity: usize,
}

impl InferenceModel {
    /// Compiles `model` with the ambient [`mbssl_tensor::quant::mode`].
    pub fn compile(model: &Mbmissl) -> InferenceModel {
        Self::compile_with_mode(model, mbssl_tensor::quant::mode())
    }

    /// Compiles `model`, pre-packing every weight once. `qmode` selects
    /// the catalog-scorer representation (`Off` = bit-exact f32).
    pub fn compile_with_mode(model: &Mbmissl, qmode: QuantMode) -> InferenceModel {
        let mut pack_sp = telemetry::span("infer.pack");
        let params = model.named_params();
        let total_param_elems: usize = params
            .iter()
            .map(|(_, t)| t.dims().iter().product::<usize>())
            .sum();
        pack_sp.add_bytes((total_param_elems * std::mem::size_of::<f32>()) as u64);

        let get = |name: &str| -> Vec<f32> {
            params
                .get(name)
                .unwrap_or_else(|| panic!("missing param {name}"))
                .to_vec()
        };
        let pack2 = |name: &str| -> PackedB {
            let t = params
                .get(name)
                .unwrap_or_else(|| panic!("missing param {name}"));
            let dims = t.dims();
            assert_eq!(dims.len(), 2, "{name} is not a matrix");
            PackedB::pack(&t.data(), dims[0], dims[1])
        };
        let linear = |prefix: &str| -> PackedLinear {
            PackedLinear {
                w: pack2(&format!("{prefix}.weight")),
                bias: get(&format!("{prefix}.bias")),
            }
        };
        let norm = |prefix: &str| -> LayerNormWeights {
            LayerNormWeights {
                gamma: get(&format!("{prefix}.gamma")),
                beta: get(&format!("{prefix}.beta")),
            }
        };
        let config = model.config().clone();
        let (dim, heads) = (config.dim, config.heads);
        let attn = |prefix: &str| -> AttnWeights {
            AttnWeights {
                wq: linear(&format!("{prefix}.wq")),
                wk: linear(&format!("{prefix}.wk")),
                wv: linear(&format!("{prefix}.wv")),
                wo: linear(&format!("{prefix}.wo")),
                heads,
                head_dim: dim / heads,
                dim,
            }
        };
        let ffn = |prefix: &str| -> FfnWeights {
            FfnWeights {
                lin1: linear(&format!("{prefix}.lin1")),
                lin2: linear(&format!("{prefix}.lin2")),
            }
        };

        let backbone = match &model.backbone {
            Backbone::Hypergraph {
                encoder, hg_config, ..
            } => BackboneWeights::Hypergraph {
                layers: (0..encoder.num_layers())
                    .map(|i| {
                        let p = format!("mbmissl.backbone.hg.layer{i}");
                        HgLayerWeights {
                            edge_type_emb: get(&format!("{p}.edge_type_emb.weight")),
                            node_to_edge: attn(&format!("{p}.node_to_edge")),
                            edge_to_node: attn(&format!("{p}.edge_to_node")),
                            ln_in: norm(&format!("{p}.ln_in")),
                            ln_ffn: norm(&format!("{p}.ln_ffn")),
                            ffn: ffn(&format!("{p}.ffn")),
                        }
                    })
                    .collect(),
                hg_config: hg_config.clone(),
            },
            Backbone::Transformer { blocks, .. } => BackboneWeights::Transformer {
                blocks: (0..blocks.len())
                    .map(|i| {
                        let p = format!("mbmissl.backbone.block{i}");
                        BlockWeights {
                            attn: attn(&format!("{p}.attn")),
                            ffn: ffn(&format!("{p}.ffn")),
                            ln1: norm(&format!("{p}.ln1")),
                            ln2: norm(&format!("{p}.ln2")),
                        }
                    })
                    .collect(),
            },
        };

        let extractor = match &model.extractor {
            InterestExtractor::SelfAttentive { k, .. } => ExtractorWeights::SelfAttentive {
                w1: pack2("mbmissl.extractor.w1"),
                w2: pack2("mbmissl.extractor.w2"),
                k: *k,
            },
            InterestExtractor::DynamicRouting {
                routing_init,
                k,
                iters,
                ..
            } => ExtractorWeights::DynamicRouting {
                transform: pack2("mbmissl.extractor.transform"),
                routing_init: routing_init.to_vec(),
                init_cols: routing_init.dims()[1],
                k: *k,
                iters: *iters,
            },
        };

        let num_items = model.num_items();
        let item_rows = num_items + 1;
        let item_table = get("mbmissl.input.item_emb.weight");
        assert_eq!(item_table.len(), item_rows * dim, "item table shape");
        let catalog = match qmode {
            QuantMode::Off => {
                let mut t = vec![0.0f32; item_table.len()];
                kernels::transpose(&item_table, &mut t, item_rows, dim);
                CatalogTable::F32(PackedB::pack(&t, dim, item_rows))
            }
            QuantMode::I8 => CatalogTable::I8(QuantizedRows::quantize(
                &item_table,
                item_rows,
                dim,
            )),
            QuantMode::Bf16 => CatalogTable::Bf16(Bf16Rows::convert(&item_table, item_rows, dim)),
        };

        let k = config.num_interests;
        let l = config.max_seq_len;
        // Loose serving-shape (B=1) estimate; the arena self-sizes to the
        // true high-water mark after the first request anyway.
        let arena_capacity =
            32 * l * dim * (config.num_layers + 1) + k * item_rows + 8 * PackedB::SCRATCH_LEN + 1024;

        let name = format!(
            "MBMISSL-infer(dim={}, K={}, {:?}, {:?}, quant={:?})",
            dim, k, config.encoder, config.extractor, qmode
        );
        InferenceModel {
            num_items,
            item_rows,
            dim,
            num_interests: k,
            item_table,
            behavior_table: get("mbmissl.input.behavior_emb.weight"),
            pos_table: get("mbmissl.input.pos_emb.weight"),
            input_ln: norm("mbmissl.input.ln"),
            backbone,
            extractor,
            catalog,
            quant_mode: qmode,
            ann: None,
            name,
            arenas: Mutex::new(vec![Arena::with_capacity(arena_capacity)]),
            arena_capacity,
            config,
        }
    }

    /// The catalog-scorer representation this engine was compiled with.
    pub fn quant_mode(&self) -> QuantMode {
        self.quant_mode
    }

    /// Builds an IVF index over this engine's item table with the default
    /// (env-overridable) `nlist` and the given k-means seed.
    pub fn build_index(&self, seed: u64) -> IvfIndex {
        self.build_index_with(ann::default_nlist(self.num_items), seed)
    }

    /// Builds an IVF index over this engine's item table with an explicit
    /// list count.
    pub fn build_index_with(&self, nlist: usize, seed: u64) -> IvfIndex {
        IvfIndex::build(&self.item_table, self.num_items, self.dim, nlist, seed)
    }

    /// Attaches `index` with the default (env-overridable) `nprobe`.
    /// Fails with [`AnnError::Mismatch`] if the index geometry does not
    /// match this engine's item table.
    pub fn attach_index(&mut self, index: IvfIndex) -> Result<(), AnnError> {
        let nprobe = ann::default_nprobe(index.nlist());
        self.attach_index_with(index, nprobe)
    }

    /// Attaches `index`, probing `nprobe` lists per interest vector.
    pub fn attach_index_with(&mut self, index: IvfIndex, nprobe: usize) -> Result<(), AnnError> {
        if index.dim() != self.dim || index.num_items() != self.num_items {
            return Err(AnnError::Mismatch {
                expected: format!("dim {}, {} items", self.dim, self.num_items),
                found: format!("dim {}, {} items", index.dim(), index.num_items()),
            });
        }
        let nprobe = nprobe.clamp(1, index.nlist());
        self.ann = Some(AnnState { index, nprobe });
        Ok(())
    }

    /// Detaches any attached index, restoring exhaustive ranking.
    pub fn detach_index(&mut self) {
        self.ann = None;
    }

    /// Whether an IVF index is attached (regardless of `MBSSL_ANN`).
    pub fn has_index(&self) -> bool {
        self.ann.is_some()
    }

    /// Scores `history` against an explicit candidate subset through the
    /// catalog table (exact f32 or the `MBSSL_QUANT` copy), returning one
    /// score per candidate. Scores are bit-identical to what the same
    /// items get from exhaustive `recommend_catalog` ranking; this is the
    /// re-rank half of two-stage retrieval, exposed for callers that bring
    /// their own retrieval.
    pub fn score_candidates(&self, history: &Sequence, candidates: &[ItemId]) -> Vec<f32> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let arena = self.rent_arena();
        let out = {
            let (_batch, z) = self.interests_for(&[history], &arena);
            self.rerank_candidates(z, candidates, &arena).to_vec()
        };
        self.return_arena(arena);
        out
    }

    /// Gather-based candidate scoring: max-over-interest scores for
    /// `candidates` given interests `z [k, d]`, through whichever catalog
    /// table the engine was compiled with. The f32 path packs the
    /// candidate rows with `PackedB::pack_select_into` (arena-backed) and
    /// runs the same prepacked GEMM as exhaustive catalog scoring;
    /// quantized paths run
    /// the same per-row dots as the exhaustive loop — all bit-identical
    /// to exhaustive scoring.
    fn rerank_candidates<'a>(
        &self,
        z: &[f32],
        candidates: &[ItemId],
        arena: &'a Arena,
    ) -> &'a [f32] {
        let (d, k, c) = (self.dim, self.num_interests, candidates.len());
        let out = arena.alloc(c);
        match &self.catalog {
            CatalogTable::F32(_) => {
                let skc = arena.alloc(k * c);
                let scratch = arena.alloc(PackedB::SCRATCH_LEN);
                // Fused gather+pack straight off the item table, into the
                // request arena (recycled global buffers cost ~30% here in
                // cache locality); feeds the same microkernel as the
                // prepacked exhaustive GEMM, so scores stay bit-identical
                // to exhaustive ranking.
                let panel = arena.alloc(PackedB::packed_len(d, c));
                let packed = PackedB::pack_select_into(&self.item_table, d, candidates, panel);
                kernels::gemm_nn_prepacked_scratch(&z[..k * d], packed, skc, k, scratch);
                for j in 0..c {
                    let mut best = f32::NEG_INFINITY;
                    for kk in 0..k {
                        let v = skc[kk * c + j];
                        if v > best {
                            best = v;
                        }
                    }
                    out[j] = best;
                }
            }
            CatalogTable::I8(q) => {
                for (j, &id) in candidates.iter().enumerate() {
                    let mut best = f32::NEG_INFINITY;
                    for kk in 0..k {
                        let v = q.dot(id as usize, &z[kk * d..][..d]);
                        if v > best {
                            best = v;
                        }
                    }
                    out[j] = best;
                }
            }
            CatalogTable::Bf16(q) => {
                for (j, &id) in candidates.iter().enumerate() {
                    let mut best = f32::NEG_INFINITY;
                    for kk in 0..k {
                        let v = q.dot(id as usize, &z[kk * d..][..d]);
                        if v > best {
                            best = v;
                        }
                    }
                    out[j] = best;
                }
            }
        }
        out
    }

    fn rent_arena(&self) -> Arena {
        self.arenas
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| Arena::with_capacity(self.arena_capacity))
    }

    fn return_arena(&self, mut arena: Arena) {
        arena.reset();
        self.arenas.lock().unwrap().push(arena);
    }

    /// Input layer + backbone: contextual states `[b, l, d]`.
    fn encode<'a>(&self, batch: &Batch, arena: &'a Arena) -> &'a mut [f32] {
        let (b, l, d) = (batch.size, batch.max_len, self.dim);
        assert!(
            l <= self.config.max_seq_len,
            "sequence length {l} exceeds max_seq_len {}",
            self.config.max_seq_len
        );
        let x = arena.alloc(b * l * d);
        for i in 0..b * l {
            let item = &self.item_table[batch.items[i] * d..][..d];
            let beh = &self.behavior_table[batch.behaviors[i] * d..][..d];
            let pos = &self.pos_table[(i % l) * d..][..d];
            let row = &mut x[i * d..][..d];
            for j in 0..d {
                row[j] = (item[j] + beh[j]) + pos[j];
            }
        }
        let normed = arena.alloc(b * l * d);
        self.input_ln.apply(x, normed, d);
        match &self.backbone {
            BackboneWeights::Hypergraph { layers, hg_config } => {
                let incidence = build_batch_incidence(
                    hg_config,
                    &batch.items,
                    &batch.behaviors,
                    &batch.valid,
                    b,
                    l,
                    Behavior::VOCAB,
                );
                let mut h: &mut [f32] = normed;
                for layer in layers {
                    h = layer.forward(h, &incidence, b, l, arena);
                }
                h
            }
            BackboneWeights::Transformer { blocks } => {
                let mut h: &mut [f32] = normed;
                for block in blocks {
                    h = block.forward(h, b, l, &batch.valid, arena);
                }
                h
            }
        }
    }

    /// Encodes `histories` and extracts interests `[b, k, d]`, under an
    /// `infer.forward` span.
    fn interests_for<'a>(&self, histories: &[&Sequence], arena: &'a Arena) -> (Batch, &'a [f32]) {
        let truncated: Vec<Sequence> = histories
            .iter()
            .map(|h| h.truncate_to_recent(self.config.max_seq_len))
            .collect();
        let refs: Vec<&Sequence> = truncated.iter().collect();
        let batch = Batch::encode_histories(&refs);
        let mut fwd_sp = telemetry::span("infer.forward");
        fwd_sp.add_bytes((batch.size * batch.max_len * self.dim * std::mem::size_of::<f32>()) as u64);
        let h = self.encode(&batch, arena);
        let z = self
            .extractor
            .forward(h, &batch.valid, batch.size, batch.max_len, self.dim, arena);
        (batch, z)
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Interest vectors per user `K`.
    pub fn num_interests(&self) -> usize {
        self.num_interests
    }

    /// Catalog size the engine was compiled for (items `1..=num_items`).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The truncation cap applied to every history before encoding
    /// (`ModelConfig::max_seq_len`). The serving batcher buckets requests
    /// by `history.len().min(max_seq_len())` before batching them into one
    /// forward — see [`encode_interests`](InferenceModel::encode_interests).
    pub fn max_seq_len(&self) -> usize {
        self.config.max_seq_len
    }

    /// The probe width of the attached index, if one is attached.
    pub fn attached_nprobe(&self) -> Option<usize> {
        self.ann.as_ref().map(|st| st.nprobe)
    }

    /// Encodes `histories` in **one** batched forward through the
    /// prepacked panels and returns their interest vectors as an owned
    /// `[b, k, d]` buffer (row `i` belongs to `histories[i]`).
    ///
    /// Each row is bit-identical to encoding that history alone **iff**
    /// every history in the call shares one truncated length:
    /// right-padding is numerically neutral through attention (masked
    /// logits exp-underflow to exactly `+0.0`) and every other op is
    /// row-independent, but the hypergraph temporal edge-slot count
    /// follows the padded length, so mixing lengths changes the edge set.
    /// The serving batcher ([`crate::serve`]) groups by truncated length
    /// before calling this; the grouping is what makes micro-batched
    /// responses bit-identical to sequential `recommend_top_n`.
    pub fn encode_interests(&self, histories: &[&Sequence]) -> Vec<f32> {
        if histories.is_empty() {
            return Vec::new();
        }
        let arena = self.rent_arena();
        let out = {
            let (_batch, z) = self.interests_for(histories, &arena);
            z.to_vec()
        };
        self.return_arena(arena);
        out
    }

    /// Ranks the catalog `1..=num_items` for a batch of queries whose
    /// interest vectors are stacked in `z_all` (`queries.len() × k × d`,
    /// e.g. from [`encode_interests`](InferenceModel::encode_interests) or
    /// a per-user cache), with one arena rental for the whole batch.
    ///
    /// Per query this is **bit-identical** to
    /// [`recommend_catalog`](SequentialRecommender::recommend_catalog)
    /// given the same interests (which itself delegates here): the
    /// exhaustive f32 path runs one GEMM over all queries' interest rows,
    /// and every output element of the packed GEMM accumulates
    /// independently per row, so batching changes nothing. The ANN path
    /// probes per query with arena-rented scratch.
    ///
    /// `nprobe_override` narrows the attached probe width for this batch
    /// (the serving latency-budget hook, `MBSSL_ANN_BUDGET_US`); `None`
    /// uses the width from `attach_index`.
    pub fn rank_from_interests(
        &self,
        z_all: &[f32],
        queries: &[CatalogQuery<'_>],
        num_items: usize,
        nprobe_override: Option<usize>,
    ) -> Vec<RankedQuery> {
        let arena = self.rent_arena();
        let out = self.rank_from_interests_in(z_all, queries, num_items, nprobe_override, &arena);
        self.return_arena(arena);
        out
    }

    fn rank_from_interests_in(
        &self,
        z_all: &[f32],
        queries: &[CatalogQuery<'_>],
        num_items: usize,
        nprobe_override: Option<usize>,
        arena: &Arena,
    ) -> Vec<RankedQuery> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let (d, k, rows) = (self.dim, self.num_interests, self.item_rows);
        assert!(
            num_items <= self.num_items,
            "catalog larger than the compiled item table"
        );
        assert_eq!(z_all.len(), queries.len() * k * d, "interest buffer shape");
        if queries.is_empty() {
            return Vec::new();
        }
        let r = queries.len();
        let mut score_sp = telemetry::span("infer.score_catalog");
        score_sp.add_bytes((r * k * rows * std::mem::size_of::<f32>()) as u64);
        let ann_active = self.ann.as_ref().filter(|_| ann::enabled());
        // With no index, exhaustive f32 scoring amortizes: one prepacked
        // GEMM over all r*k interest rows instead of r separate ones.
        // Each query then reads only its own k rows, which are
        // bit-identical to a solo GEMM's.
        let batch_scores: Option<&[f32]> = match (&self.catalog, ann_active) {
            (CatalogTable::F32(packed), None) => {
                let scores = arena.alloc(r * k * rows);
                let scratch = arena.alloc(PackedB::SCRATCH_LEN);
                kernels::gemm_nn_prepacked_scratch(z_all, packed, scores, r * k, scratch);
                Some(scores)
            }
            _ => None,
        };
        let mut results = Vec::with_capacity(r);
        for (qi, q) in queries.iter().enumerate() {
            assert!(q.n > 0);
            let z = &z_all[qi * k * d..][..k * d];
            let mut heap: BinaryHeap<Reverse<RankKey>> = BinaryHeap::with_capacity(q.n + 1);
            // Two-stage route: probe the attached index per interest and
            // re-rank only the candidate union. If the probe retrieves
            // fewer than `n` rankable items, fall through to exhaustive —
            // an ANN result must never be shorter than the exhaustive one.
            let mut used_ann = false;
            if let Some(st) = ann_active {
                let nlist = st.index.nlist();
                let nprobe = nprobe_override.unwrap_or(st.nprobe).clamp(1, nlist);
                let mut cands: Vec<ItemId> = Vec::new();
                {
                    let mut probe_sp = telemetry::span("index.probe");
                    let cscores = arena.alloc(k * nlist);
                    let cscratch = arena.alloc(PackedB::SCRATCH_LEN);
                    st.index.probe_with(z, k, nprobe, cscores, cscratch, &mut cands);
                    cands.retain(|id| *id as usize <= num_items && !q.exclude.contains(id));
                    probe_sp.add_bytes((cands.len() * std::mem::size_of::<ItemId>()) as u64);
                }
                let rankable =
                    num_items - q.exclude.iter().filter(|id| **id as usize <= num_items).count();
                if cands.len() >= q.n.min(rankable) {
                    let mut rerank_sp = telemetry::span("index.rerank");
                    rerank_sp.add_bytes((cands.len() * d * std::mem::size_of::<f32>()) as u64);
                    let scores = self.rerank_candidates(z, &cands, arena);
                    for (&id, &s) in cands.iter().zip(scores.iter()) {
                        push_top(&mut heap, q.n, id, s);
                    }
                    used_ann = true;
                }
            }
            if !used_ann {
                match (&self.catalog, batch_scores) {
                    (CatalogTable::F32(_), Some(scores)) => {
                        // One GEMM over the whole catalog (shared across
                        // the batch above). Column v of the packed
                        // transpose is item v's embedding, and each output
                        // element accumulates independently, so these
                        // scores are bit-identical to the chunked
                        // reference.
                        let mine = &scores[qi * k * rows..][..k * rows];
                        for item in 1..=num_items {
                            let id = item as ItemId;
                            if q.exclude.contains(&id) {
                                continue;
                            }
                            let mut best = f32::NEG_INFINITY;
                            for kk in 0..k {
                                let v = mine[kk * rows + item];
                                if v > best {
                                    best = v;
                                }
                            }
                            push_top(&mut heap, q.n, id, best);
                        }
                    }
                    (CatalogTable::F32(packed), None) => {
                        // Short-probe fallback with an index attached:
                        // score this query's interests exhaustively.
                        let scores = arena.alloc(k * rows);
                        let scratch = arena.alloc(PackedB::SCRATCH_LEN);
                        kernels::gemm_nn_prepacked_scratch(z, packed, scores, k, scratch);
                        for item in 1..=num_items {
                            let id = item as ItemId;
                            if q.exclude.contains(&id) {
                                continue;
                            }
                            let mut best = f32::NEG_INFINITY;
                            for kk in 0..k {
                                let v = scores[kk * rows + item];
                                if v > best {
                                    best = v;
                                }
                            }
                            push_top(&mut heap, q.n, id, best);
                        }
                    }
                    (CatalogTable::I8(qt), _) => {
                        for item in 1..=num_items {
                            let id = item as ItemId;
                            if q.exclude.contains(&id) {
                                continue;
                            }
                            let mut best = f32::NEG_INFINITY;
                            for kk in 0..k {
                                let v = qt.dot(item, &z[kk * d..][..d]);
                                if v > best {
                                    best = v;
                                }
                            }
                            push_top(&mut heap, q.n, id, best);
                        }
                    }
                    (CatalogTable::Bf16(qt), _) => {
                        for item in 1..=num_items {
                            let id = item as ItemId;
                            if q.exclude.contains(&id) {
                                continue;
                            }
                            let mut best = f32::NEG_INFINITY;
                            for kk in 0..k {
                                let v = qt.dot(item, &z[kk * d..][..d]);
                                if v > best {
                                    best = v;
                                }
                            }
                            push_top(&mut heap, q.n, id, best);
                        }
                    }
                }
            }
            let mut recs: Vec<Recommendation> = heap
                .into_iter()
                .map(|Reverse(key)| Recommendation {
                    item: key.item,
                    score: key.score,
                })
                .collect();
            recs.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
            results.push(RankedQuery { recs, used_ann });
        }
        results
    }
}

impl SequentialRecommender for InferenceModel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        if histories.is_empty() {
            return Vec::new();
        }
        let c = candidates[0].len();
        if c == 0 {
            return vec![Vec::new(); histories.len()];
        }
        let mut flat = vec![0.0f32; histories.len() * c];
        self.score_batch_into(histories, candidates, &mut flat);
        flat.chunks(c).map(|r| r.to_vec()).collect()
    }

    fn score_batch_into(&self, histories: &[&Sequence], candidates: &[&[ItemId]], out: &mut [f32]) {
        assert_eq!(histories.len(), candidates.len());
        if histories.is_empty() {
            return;
        }
        let c = candidates[0].len();
        assert!(
            candidates.iter().all(|l| l.len() == c),
            "ragged candidate lists"
        );
        assert_eq!(out.len(), histories.len() * c, "output buffer shape");
        if c == 0 {
            return;
        }
        let arena = self.rent_arena();
        {
            let (_batch, z) = self.interests_for(histories, &arena);
            let (d, k) = (self.dim, self.num_interests);
            let cand = arena.alloc(c * d);
            let candt = arena.alloc(d * c);
            let skc = arena.alloc(k * c);
            for (bi, list) in candidates.iter().enumerate() {
                for (j, &id) in list.iter().enumerate() {
                    cand[j * d..][..d]
                        .copy_from_slice(&self.item_table[id as usize * d..][..d]);
                }
                // Same bmm(z, candᵀ) + strict-> max over interests as
                // `Mbmissl::score_against`.
                kernels::transpose(cand, candt, c, d);
                skc.fill(0.0);
                kernels::gemm_nn(&z[bi * k * d..][..k * d], candt, skc, k, d, c);
                for j in 0..c {
                    let mut best = f32::NEG_INFINITY;
                    for kk in 0..k {
                        let v = skc[kk * c + j];
                        if v > best {
                            best = v;
                        }
                    }
                    out[bi * c + j] = best;
                }
            }
        }
        self.return_arena(arena);
    }

    fn recommend_catalog(
        &self,
        history: &Sequence,
        num_items: usize,
        n: usize,
        exclude: &HashSet<ItemId>,
    ) -> Option<Vec<Recommendation>> {
        assert!(n > 0);
        let mut topn_sp = telemetry::span("serve.top_n");
        topn_sp.add_bytes((num_items * std::mem::size_of::<f32>()) as u64);
        let arena = self.rent_arena();
        let recs = {
            let (_batch, z) = self.interests_for(&[history], &arena);
            let query = CatalogQuery { n, exclude };
            self.rank_from_interests_in(z, std::slice::from_ref(&query), num_items, None, &arena)
                .pop()
                .map(|ranked| ranked.recs)
        };
        self.return_arena(arena);
        recs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_allocations_are_disjoint_and_zeroed() {
        let arena = Arena::with_capacity(8);
        let a = arena.alloc(4);
        let b = arena.alloc(4);
        assert!(a.iter().all(|&v| v == 0.0));
        a.fill(1.0);
        b.fill(2.0);
        assert!(a.iter().all(|&v| v == 1.0), "overlapping allocations");
        assert!(b.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn arena_overflow_keeps_slices_stable() {
        let arena = Arena::with_capacity(2);
        let a = arena.alloc(2); // primary
        let b = arena.alloc(16); // overflow box 1
        let c = arena.alloc(32); // overflow box 2 (vec realloc likely)
        a.fill(1.0);
        b.fill(2.0);
        c.fill(3.0);
        assert!(a.iter().all(|&v| v == 1.0));
        assert!(b.iter().all(|&v| v == 2.0));
        assert!(c.iter().all(|&v| v == 3.0));
        assert_eq!(arena.used(), 50);
    }

    #[test]
    fn arena_reset_consolidates_high_water_mark() {
        let mut arena = Arena::with_capacity(4);
        arena.alloc(4);
        arena.alloc(100);
        assert_eq!(arena.used(), 104);
        arena.reset();
        assert!(arena.capacity() >= 104, "reset did not grow the primary");
        assert_eq!(arena.used(), 0);
        // The same shape now bump-fits without overflow.
        arena.alloc(4);
        arena.alloc(100);
        assert_eq!(arena.used(), 104);
        assert!(arena.capacity() >= arena.used());
    }

    #[test]
    fn arena_zero_len_alloc_is_fine() {
        let arena = Arena::with_capacity(0);
        let a = arena.alloc(0);
        assert!(a.is_empty());
    }

    #[test]
    fn softmax_matches_kernel() {
        let mut a = vec![0.5, -1.0, 2.0, 0.0, 0.25, -3.0];
        let mut b = a.clone();
        softmax_rows_inplace(&mut a, 3);
        kernels::softmax_rows(&mut b, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn split_merge_heads_roundtrip() {
        let (b, l, heads, dh) = (2usize, 3usize, 2usize, 4usize);
        let d = heads * dh;
        let inp: Vec<f32> = (0..b * l * d).map(|i| i as f32).collect();
        let mut split = vec![0.0f32; b * l * d];
        let mut merged = vec![0.0f32; b * l * d];
        split_heads(&inp, &mut split, b, l, heads, dh);
        merge_heads(&split, &mut merged, b, l, heads, dh);
        assert_eq!(inp, merged);
        // Spot-check the layout: (b=1, h=1, t=2, j=3).
        assert_eq!(
            split[(((1 * heads + 1) * l) + 2) * dh + 3],
            inp[(1 * l + 2) * d + 1 * dh + 3]
        );
    }
}
