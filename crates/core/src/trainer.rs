//! The shared training loop: Adam + gradient clipping + early stopping on
//! validation NDCG@10, with best-checkpoint restore.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use mbssl_data::preprocess::{Split, TrainInstance};
use mbssl_data::sampler::{BatchIterator, EvalCandidates, NegativeSampler};
use mbssl_tensor::nn::ParamMap;
use mbssl_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use mbssl_tensor::Tensor;

use crate::config::TrainConfig;
use crate::recommender::{evaluate, SequentialRecommender};

/// A model the [`Trainer`] can fit: exposes parameters and a differentiable
/// loss over raw training instances (each model owns its batch encoding, so
/// augmented views and model-specific inputs stay internal).
pub trait TrainableRecommender: SequentialRecommender {
    fn params(&self) -> Vec<Tensor>;

    /// Parameters with stable names (checkpointing).
    fn named_params(&self) -> ParamMap;

    fn loss_on_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor;
}

/// Per-epoch training statistics.
#[derive(Clone, Debug, Serialize)]
pub struct EpochStats {
    pub epoch: usize,
    pub train_loss: f32,
    pub val_ndcg10: Option<f64>,
    pub val_hr10: Option<f64>,
    pub seconds: f64,
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize)]
pub struct TrainReport {
    pub model: String,
    pub epochs_run: usize,
    pub best_epoch: usize,
    pub best_val_ndcg10: f64,
    pub history: Vec<EpochStats>,
    pub total_seconds: f64,
    pub num_params: usize,
}

/// Training-loop driver.
pub struct Trainer {
    pub config: TrainConfig,
}

impl Trainer {
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Fits `model` on `split.train`, early-stopping on `split.val`
    /// NDCG@10 and restoring the best parameters before returning.
    pub fn fit<M: TrainableRecommender + ?Sized>(
        &self,
        model: &M,
        split: &Split,
        sampler: &NegativeSampler,
    ) -> TrainReport {
        let cfg = &self.config;
        let params = model.params();
        let num_params: usize = params.iter().map(|p| p.numel()).sum();
        let mut opt = Adam::new(params.clone(), cfg.lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let val_candidates = if split.val.is_empty() {
            None
        } else {
            Some(EvalCandidates::build(
                &split.val,
                sampler,
                cfg.eval_negatives,
                cfg.seed ^ 0x5eed,
            ))
        };

        // Clamp training negatives to the catalog so tiny test datasets
        // keep well-formed sampled-softmax candidate sets.
        let num_negatives = cfg.num_negatives.min(sampler.num_items().saturating_sub(2));

        let start = Instant::now();
        let mut history = Vec::new();
        let mut best_ndcg = f64::NEG_INFINITY;
        let mut best_epoch = 0usize;
        let mut best_snapshot: Option<Vec<Vec<f32>>> = None;
        let mut epochs_without_improvement = 0usize;
        let mut epochs_run = 0usize;

        for epoch in 0..cfg.epochs {
            let epoch_start = Instant::now();
            let mut iter = BatchIterator::new(&split.train, cfg.batch_size, &mut rng);
            let mut loss_sum = 0.0f32;
            let mut batches = 0usize;
            while let Some(chunk) = iter.next_chunk() {
                opt.zero_grad();
                let loss = model.loss_on_batch(&chunk, sampler, num_negatives, &mut rng);
                loss_sum += loss.item();
                batches += 1;
                loss.backward();
                clip_grad_norm(&params, cfg.clip_norm);
                opt.step();
            }
            let train_loss = if batches > 0 { loss_sum / batches as f32 } else { 0.0 };
            epochs_run = epoch + 1;

            let (val_ndcg10, val_hr10) = if let Some(cands) = &val_candidates {
                if (epoch + 1) % cfg.eval_every == 0 {
                    let metrics = evaluate(model, &split.val, cands, cfg.batch_size).aggregate();
                    (Some(metrics.ndcg10), Some(metrics.hr10))
                } else {
                    (None, None)
                }
            } else {
                (None, None)
            };

            history.push(EpochStats {
                epoch,
                train_loss,
                val_ndcg10,
                val_hr10,
                seconds: epoch_start.elapsed().as_secs_f64(),
            });
            if cfg.verbose {
                match val_ndcg10 {
                    Some(n) => eprintln!(
                        "[{}] epoch {epoch}: loss {train_loss:.4}, val NDCG@10 {n:.4}",
                        model.name()
                    ),
                    None => eprintln!("[{}] epoch {epoch}: loss {train_loss:.4}", model.name()),
                }
            }

            if let Some(ndcg) = val_ndcg10 {
                if ndcg > best_ndcg {
                    best_ndcg = ndcg;
                    best_epoch = epoch;
                    best_snapshot = Some(params.iter().map(|p| p.to_vec()).collect());
                    epochs_without_improvement = 0;
                } else {
                    epochs_without_improvement += 1;
                    if epochs_without_improvement >= cfg.patience {
                        break;
                    }
                }
            }
        }

        // Restore the best validation checkpoint.
        if let Some(snapshot) = best_snapshot {
            for (p, values) in params.iter().zip(snapshot) {
                p.data_mut().copy_from_slice(&values);
            }
        }

        TrainReport {
            model: model.name(),
            epochs_run,
            best_epoch,
            best_val_ndcg10: if best_ndcg.is_finite() { best_ndcg } else { 0.0 },
            history,
            total_seconds: start.elapsed().as_secs_f64(),
            num_params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::sampler::Batch;
    use mbssl_data::sampler::NegativeStrategy;
    use mbssl_data::{ItemId, Sequence};
    use mbssl_tensor::nn::Module;
    use mbssl_tensor::{no_grad, Tensor};

    /// Minimal trainable model: a bag-of-items matrix factorization that
    /// scores candidates by dot(mean item embedding of history, candidate
    /// embedding). Exists purely to exercise the Trainer mechanics.
    struct TinyMf {
        emb: mbssl_tensor::nn::Embedding,
        dim: usize,
    }

    impl TinyMf {
        fn new(num_items: usize, dim: usize) -> Self {
            let mut rng = StdRng::seed_from_u64(1);
            TinyMf {
                emb: mbssl_tensor::nn::Embedding::new(num_items + 1, dim, &mut rng),
                dim,
            }
        }

        fn user_vec(&self, histories: &[&Sequence]) -> Tensor {
            let batch = Batch::encode_histories(histories);
            let (b, l) = (batch.size, batch.max_len);
            let e = self.emb.forward_seq(&batch.items, b, l); // [B, L, D]
            let valid = Tensor::from_vec(batch.valid.clone(), [b, l, 1]);
            let summed = e.mul(&valid).sum_axis(1, false); // [B, D]
            let counts = Tensor::from_vec(
                (0..b)
                    .map(|bi| {
                        batch.valid[bi * l..(bi + 1) * l].iter().sum::<f32>().max(1.0)
                    })
                    .collect(),
                [b, 1],
            );
            summed.div(&counts)
        }
    }

    impl SequentialRecommender for TinyMf {
        fn name(&self) -> String {
            "tiny-mf".into()
        }
        fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            no_grad(|| {
                let u = self.user_vec(histories); // [B, D]
                let c = candidates[0].len();
                let flat: Vec<usize> = candidates
                    .iter()
                    .flat_map(|l| l.iter().map(|&i| i as usize))
                    .collect();
                let ce = self
                    .emb
                    .forward(&flat)
                    .reshape([histories.len(), c, self.dim]);
                let scores = ce.bmm(&u.unsqueeze(2)).reshape([histories.len(), c]);
                let data = scores.to_vec();
                (0..histories.len())
                    .map(|b| data[b * c..(b + 1) * c].to_vec())
                    .collect()
            })
        }
    }

    impl TrainableRecommender for TinyMf {
        fn params(&self) -> Vec<Tensor> {
            self.emb.param_map("mf").tensors()
        }
        fn named_params(&self) -> ParamMap {
            self.emb.param_map("mf")
        }
        fn loss_on_batch(
            &self,
            instances: &[&TrainInstance],
            sampler: &NegativeSampler,
            num_negatives: usize,
            rng: &mut StdRng,
        ) -> Tensor {
            let batch = Batch::encode(instances, sampler, num_negatives, NegativeStrategy::Uniform, rng);
            let histories: Vec<&Sequence> = instances.iter().map(|i| &i.history).collect();
            let u = self.user_vec(&histories);
            let c = 1 + batch.num_negatives;
            let mut ids = Vec::with_capacity(batch.size * c);
            for bi in 0..batch.size {
                ids.push(batch.targets[bi]);
                ids.extend_from_slice(
                    &batch.negatives[bi * batch.num_negatives..(bi + 1) * batch.num_negatives],
                );
            }
            let ce = self.emb.forward(&ids).reshape([batch.size, c, self.dim]);
            let logits = ce.bmm(&u.unsqueeze(2)).reshape([batch.size, c]);
            logits.cross_entropy_logits(&vec![0usize; batch.size])
        }
    }

    #[test]
    fn trainer_improves_validation_metric() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::taobao_like(51).scaled(0.08).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = TinyMf::new(g.dataset.num_items, 16);

        // Pre-training validation score.
        let cands = EvalCandidates::build(&split.val, &sampler, 99, 123);
        let before = evaluate(&model, &split.val, &cands, 128).aggregate().ndcg10;

        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 128,
            lr: 0.05,
            num_negatives: 32,
            patience: 5,
            verbose: false,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&model, &split, &sampler);
        let after = evaluate(&model, &split.val, &cands, 128).aggregate().ndcg10;

        assert!(report.epochs_run >= 1);
        assert!(
            after > before + 0.05,
            "training did not improve NDCG: {before:.4} -> {after:.4}"
        );
        assert!(report.best_val_ndcg10 > 0.0);
        assert_eq!(report.history.len(), report.epochs_run);
        assert!(report.num_params > 0);
    }

    #[test]
    fn early_stopping_respects_patience() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::yelp_like(52).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = TinyMf::new(g.dataset.num_items, 8);
        // Zero LR: no improvement possible after epoch 0 → stop at patience.
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            lr: 0.0,
            patience: 2,
            batch_size: 256,
            num_negatives: 8,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&model, &split, &sampler);
        assert!(
            report.epochs_run <= 4,
            "should stop early, ran {}",
            report.epochs_run
        );
    }
}
