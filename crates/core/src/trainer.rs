//! The shared training loop: Adam + gradient clipping + early stopping on
//! validation NDCG@10, with best-checkpoint restore and a double-buffered
//! batch prefetch pipeline (see DESIGN.md "Threading model").

use std::sync::mpsc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use mbssl_data::preprocess::{Split, TrainInstance};
use mbssl_data::sampler::{
    BatchIterator, EvalCandidates, NegativeSampler, NegativeStrategy, PreparedBatch,
};
use mbssl_telemetry as telemetry;
use mbssl_tensor::nn::ParamMap;
use mbssl_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use mbssl_tensor::Tensor;

use crate::config::TrainConfig;
use crate::ledger::{resolve_run_dir, EpochRecord, RunLedger, RunManifest};
use crate::recommender::{evaluate, SequentialRecommender};

/// A model the [`Trainer`] can fit. Each training step is split in two:
/// [`prepare_batch`](TrainableRecommender::prepare_batch) is the data half
/// (truncation, negative sampling, encoding) which the trainer may run on a
/// prefetch thread, and [`loss_on_prepared`](TrainableRecommender::loss_on_prepared)
/// is the graph half that builds the differentiable loss.
pub trait TrainableRecommender: SequentialRecommender {
    /// All trainable parameter handles, in a stable order.
    fn params(&self) -> Vec<Tensor>;

    /// Parameters with stable names (checkpointing).
    fn named_params(&self) -> ParamMap;

    /// Data half of a training step: history truncation, negative sampling,
    /// and batch encoding. Must not touch parameters — the trainer runs it
    /// on a producer thread while the previous step's forward/backward is
    /// still in flight.
    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            None,
            rng,
        )
    }

    /// Graph half of a training step: the differentiable loss from an
    /// already-prepared batch. `rng` drives graph-time stochasticity only
    /// (dropout, augmented views); `sampler`/`num_negatives` are available
    /// for models with auxiliary in-loss objectives.
    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor;

    /// Prepares and computes in one call on a single RNG stream — the
    /// non-pipelined path used by unit tests and ad-hoc callers.
    fn loss_on_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        let prepared = self.prepare_batch(instances, sampler, num_negatives, rng);
        self.loss_on_prepared(&prepared, sampler, num_negatives, rng)
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Debug, Serialize)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Validation NDCG@10, when evaluated this epoch.
    pub val_ndcg10: Option<f64>,
    /// Validation HR@10, when evaluated this epoch.
    pub val_hr10: Option<f64>,
    /// Validation NDCG@5, when evaluated this epoch.
    pub val_ndcg5: Option<f64>,
    /// Validation HR@5, when evaluated this epoch.
    pub val_hr5: Option<f64>,
    /// Training throughput: instances consumed / training-phase seconds
    /// (excludes validation evaluation time).
    pub items_per_sec: f64,
    /// Wall-clock seconds for the epoch (training + evaluation).
    pub seconds: f64,
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize)]
pub struct TrainReport {
    /// Model description string.
    pub model: String,
    /// Epochs actually executed (early stopping may cut this short).
    pub epochs_run: usize,
    /// Epoch index of the best validation NDCG@10.
    pub best_epoch: usize,
    /// Best validation NDCG@10 reached.
    pub best_val_ndcg10: f64,
    /// Per-epoch loss/metric/timing records.
    pub history: Vec<EpochStats>,
    /// Wall-clock seconds for the whole run.
    pub total_seconds: f64,
    /// Trainable parameter count.
    pub num_params: usize,
}

/// Training-loop driver.
pub struct Trainer {
    /// Loop options (epochs, patience, seed, verbosity, …).
    pub config: TrainConfig,
}

impl Trainer {
    /// A trainer driving the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Fits `model` on `split.train`, early-stopping on `split.val`
    /// NDCG@10 and restoring the best parameters before returning.
    ///
    /// With `config.prefetch` (the default) a producer thread shuffles,
    /// samples negatives, and encodes the next batch while the current
    /// step's forward/backward runs. Both paths draw the data RNG stream
    /// and per-batch graph RNG seeds identically, so training results are
    /// bit-for-bit the same with prefetching on or off.
    pub fn fit<M: TrainableRecommender + ?Sized>(
        &self,
        model: &M,
        split: &Split,
        sampler: &NegativeSampler,
    ) -> TrainReport {
        let cfg = &self.config;
        assert!(cfg.batch_size > 0, "batch_size must be positive");
        // Clamp training negatives to the catalog so tiny test datasets
        // keep well-formed sampled-softmax candidate sets.
        let num_negatives = cfg.num_negatives.min(sampler.num_items().saturating_sub(2));

        if cfg.prefetch && !split.train.is_empty() {
            // Double-buffered pipeline: channel depth 1 means the producer
            // works on batch t+1 while the consumer trains on batch t.
            std::thread::scope(|scope| {
                let (tx, rx) = mpsc::sync_channel::<(PreparedBatch, StdRng)>(1);
                let (seed, batch_size) = (cfg.seed, cfg.batch_size);
                scope.spawn(move || {
                    let mut data_rng = StdRng::seed_from_u64(seed);
                    loop {
                        let mut iter = BatchIterator::new(&split.train, batch_size, &mut data_rng);
                        while let Some(chunk) = iter.next_chunk() {
                            let prepared =
                                model.prepare_batch(&chunk, sampler, num_negatives, &mut data_rng);
                            let graph_rng = StdRng::seed_from_u64(data_rng.gen());
                            if tx.send((prepared, graph_rng)).is_err() {
                                return; // trainer finished or stopped early
                            }
                        }
                    }
                });
                // `rx` drops when this closure returns, unblocking the
                // producer's pending send before the scope joins it.
                self.fit_loop(model, split, sampler, num_negatives, &mut || rx.recv().ok())
            })
        } else {
            // Inline path: same RNG discipline, no producer thread.
            let mut data_rng = StdRng::seed_from_u64(cfg.seed);
            let mut iter: Option<BatchIterator> = None;
            let (train, batch_size) = (&split.train, cfg.batch_size);
            self.fit_loop(model, split, sampler, num_negatives, &mut || {
                if train.is_empty() {
                    return None;
                }
                loop {
                    if let Some(it) = iter.as_mut() {
                        if let Some(chunk) = it.next_chunk() {
                            let prepared =
                                model.prepare_batch(&chunk, sampler, num_negatives, &mut data_rng);
                            let graph_rng = StdRng::seed_from_u64(data_rng.gen());
                            return Some((prepared, graph_rng));
                        }
                        iter = None; // epoch exhausted; reshuffle below
                    } else {
                        iter = Some(BatchIterator::new(train, batch_size, &mut data_rng));
                    }
                }
            })
        }
    }

    /// The epoch loop proper, fed by `next_batch` (prefetched or inline).
    fn fit_loop<M: TrainableRecommender + ?Sized>(
        &self,
        model: &M,
        split: &Split,
        sampler: &NegativeSampler,
        num_negatives: usize,
        next_batch: &mut dyn FnMut() -> Option<(PreparedBatch, StdRng)>,
    ) -> TrainReport {
        let cfg = &self.config;
        let params = model.params();
        let num_params: usize = params.iter().map(|p| p.numel()).sum();
        let mut opt = Adam::new(params.clone(), cfg.lr);

        let val_candidates = if split.val.is_empty() {
            None
        } else {
            Some(EvalCandidates::build(
                &split.val,
                sampler,
                cfg.eval_negatives,
                cfg.seed ^ 0x5eed,
            ))
        };

        // Run ledger (MBSSL_RUN_DIR / config.run_dir): best-effort — an IO
        // failure warns and disables it, never aborts training. Writes
        // happen strictly after the epoch's compute and touch no RNG, so
        // training is bit-for-bit identical with the ledger on or off.
        let mut ledger = resolve_run_dir(cfg).and_then(|dir| {
            let manifest = RunManifest::capture(
                &model.name(),
                num_params,
                split.train.len(),
                split.val.len(),
                cfg,
            );
            match RunLedger::create(&dir, &manifest) {
                Ok(l) => Some(l),
                Err(e) => {
                    eprintln!(
                        "mbssl: run ledger disabled: cannot create {}: {e}",
                        dir.display()
                    );
                    None
                }
            }
        });

        let batches_per_epoch = split.train.len().div_ceil(cfg.batch_size);
        let start = Instant::now();
        let mut history = Vec::new();
        let mut best_ndcg = f64::NEG_INFINITY;
        let mut best_epoch = 0usize;
        // Preallocated checkpoint buffers, reused on every improvement.
        let mut best_snapshot: Vec<Vec<f32>> =
            params.iter().map(|p| vec![0.0f32; p.numel()]).collect();
        let mut have_snapshot = false;
        let mut epochs_without_improvement = 0usize;
        let mut epochs_run = 0usize;

        for epoch in 0..cfg.epochs {
            let _epoch_sp = telemetry::span("trainer.epoch");
            let epoch_start = Instant::now();
            let mut loss_sum = 0.0f32;
            let mut batches = 0usize;
            let mut instances = 0usize;
            for _ in 0..batches_per_epoch {
                // How long the consumer stalls waiting on the producer: the
                // pipeline's headroom (≈0 when prefetch keeps up).
                let fetched = {
                    let _wait_sp = telemetry::span("trainer.prefetch_wait");
                    next_batch()
                };
                let Some((prepared, mut graph_rng)) = fetched else {
                    break;
                };
                instances += prepared.batch.size;
                let _step_sp = telemetry::span("trainer.train_step");
                opt.zero_grad();
                let loss =
                    model.loss_on_prepared(&prepared, sampler, num_negatives, &mut graph_rng);
                loss_sum += loss.item();
                batches += 1;
                loss.backward();
                clip_grad_norm(&params, cfg.clip_norm);
                opt.step();
            }
            let train_loss = if batches > 0 { loss_sum / batches as f32 } else { 0.0 };
            let train_seconds = epoch_start.elapsed().as_secs_f64();
            epochs_run = epoch + 1;

            let val_metrics = if let Some(cands) = &val_candidates {
                if (epoch + 1) % cfg.eval_every == 0 {
                    Some(evaluate(model, &split.val, cands, cfg.batch_size).aggregate())
                } else {
                    None
                }
            } else {
                None
            };
            let val_ndcg10 = val_metrics.as_ref().map(|m| m.ndcg10);
            let val_hr10 = val_metrics.as_ref().map(|m| m.hr10);

            let stats = EpochStats {
                epoch,
                train_loss,
                val_ndcg10,
                val_hr10,
                val_ndcg5: val_metrics.as_ref().map(|m| m.ndcg5),
                val_hr5: val_metrics.as_ref().map(|m| m.hr5),
                items_per_sec: if train_seconds > 0.0 {
                    instances as f64 / train_seconds
                } else {
                    0.0
                },
                seconds: epoch_start.elapsed().as_secs_f64(),
            };
            if let Some(l) = ledger.as_mut() {
                let alloc = mbssl_tensor::alloc::stats();
                let (pool_jobs, _pool_inline, pool_chunks) = mbssl_tensor::pool::stats();
                let record = EpochRecord {
                    epoch: stats.epoch,
                    train_loss: stats.train_loss as f64,
                    val_hr5: stats.val_hr5,
                    val_hr10: stats.val_hr10,
                    val_ndcg5: stats.val_ndcg5,
                    val_ndcg10: stats.val_ndcg10,
                    items_per_sec: stats.items_per_sec,
                    seconds: stats.seconds,
                    alloc_hit_rate_pct: alloc.hit_rate_pct(),
                    pool_jobs,
                    pool_chunks,
                };
                if let Err(e) = l.append_epoch(&record) {
                    eprintln!("mbssl: run ledger disabled: {e}");
                    ledger = None;
                }
            }
            history.push(stats);
            if cfg.verbose {
                // Progress lines go through telemetry so they reach stderr
                // (as before) AND the JSONL trace when one is active.
                let line = match val_ndcg10 {
                    Some(n) => format!(
                        "[{}] epoch {epoch}: loss {train_loss:.4}, val NDCG@10 {n:.4}",
                        model.name()
                    ),
                    None => format!("[{}] epoch {epoch}: loss {train_loss:.4}", model.name()),
                };
                telemetry::progress(&line);
            }

            if let Some(ndcg) = val_ndcg10 {
                if ndcg > best_ndcg {
                    best_ndcg = ndcg;
                    best_epoch = epoch;
                    let mut ckpt_sp = telemetry::span("trainer.checkpoint");
                    ckpt_sp.add_bytes(4 * num_params as u64);
                    for (dst, p) in best_snapshot.iter_mut().zip(params.iter()) {
                        dst.copy_from_slice(&p.data());
                    }
                    drop(ckpt_sp);
                    have_snapshot = true;
                    epochs_without_improvement = 0;
                } else {
                    epochs_without_improvement += 1;
                    if epochs_without_improvement >= cfg.patience {
                        break;
                    }
                }
            }
        }

        // Restore the best validation checkpoint.
        if have_snapshot {
            let _ckpt_sp = telemetry::span("trainer.checkpoint");
            for (p, values) in params.iter().zip(best_snapshot.iter()) {
                p.data_mut().copy_from_slice(values);
            }
        }

        TrainReport {
            model: model.name(),
            epochs_run,
            best_epoch,
            best_val_ndcg10: if best_ndcg.is_finite() { best_ndcg } else { 0.0 },
            history,
            total_seconds: start.elapsed().as_secs_f64(),
            num_params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::sampler::Batch;
    use mbssl_data::{ItemId, Sequence};
    use mbssl_tensor::nn::Module;
    use mbssl_tensor::{no_grad, Tensor};

    /// Minimal trainable model: a bag-of-items matrix factorization that
    /// scores candidates by dot(mean item embedding of history, candidate
    /// embedding). Exists purely to exercise the Trainer mechanics.
    struct TinyMf {
        emb: mbssl_tensor::nn::Embedding,
        dim: usize,
    }

    impl TinyMf {
        fn new(num_items: usize, dim: usize) -> Self {
            let mut rng = StdRng::seed_from_u64(1);
            TinyMf {
                emb: mbssl_tensor::nn::Embedding::new(num_items + 1, dim, &mut rng),
                dim,
            }
        }

        fn user_vec(&self, histories: &[&Sequence]) -> Tensor {
            let batch = Batch::encode_histories(histories);
            let (b, l) = (batch.size, batch.max_len);
            let e = self.emb.forward_seq(&batch.items, b, l); // [B, L, D]
            let valid = Tensor::from_vec(batch.valid.clone(), [b, l, 1]);
            let summed = e.mul(&valid).sum_axis(1, false); // [B, D]
            let counts = Tensor::from_vec(
                (0..b)
                    .map(|bi| {
                        batch.valid[bi * l..(bi + 1) * l].iter().sum::<f32>().max(1.0)
                    })
                    .collect(),
                [b, 1],
            );
            summed.div(&counts)
        }
    }

    impl SequentialRecommender for TinyMf {
        fn name(&self) -> String {
            "tiny-mf".into()
        }
        fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            no_grad(|| {
                let u = self.user_vec(histories); // [B, D]
                let c = candidates[0].len();
                let flat: Vec<usize> = candidates
                    .iter()
                    .flat_map(|l| l.iter().map(|&i| i as usize))
                    .collect();
                let ce = self
                    .emb
                    .forward(&flat)
                    .reshape([histories.len(), c, self.dim]);
                let scores = ce.bmm(&u.unsqueeze(2)).reshape([histories.len(), c]);
                let data = scores.to_vec();
                (0..histories.len())
                    .map(|b| data[b * c..(b + 1) * c].to_vec())
                    .collect()
            })
        }
    }

    impl TrainableRecommender for TinyMf {
        fn params(&self) -> Vec<Tensor> {
            self.emb.param_map("mf").tensors()
        }
        fn named_params(&self) -> ParamMap {
            self.emb.param_map("mf")
        }
        fn loss_on_prepared(
            &self,
            prepared: &PreparedBatch,
            _sampler: &NegativeSampler,
            _num_negatives: usize,
            _rng: &mut StdRng,
        ) -> Tensor {
            let batch = &prepared.batch;
            let histories: Vec<&Sequence> = prepared.histories();
            let u = self.user_vec(&histories);
            let c = 1 + batch.num_negatives;
            let mut ids = Vec::with_capacity(batch.size * c);
            for bi in 0..batch.size {
                ids.push(batch.targets[bi]);
                ids.extend_from_slice(
                    &batch.negatives[bi * batch.num_negatives..(bi + 1) * batch.num_negatives],
                );
            }
            let ce = self.emb.forward(&ids).reshape([batch.size, c, self.dim]);
            let logits = ce.bmm(&u.unsqueeze(2)).reshape([batch.size, c]);
            logits.cross_entropy_logits(&vec![0usize; batch.size])
        }
    }

    #[test]
    fn trainer_improves_validation_metric() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::taobao_like(51).scaled(0.08).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = TinyMf::new(g.dataset.num_items, 16);

        // Pre-training validation score.
        let cands = EvalCandidates::build(&split.val, &sampler, 99, 123);
        let before = evaluate(&model, &split.val, &cands, 128).aggregate().ndcg10;

        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 128,
            lr: 0.05,
            num_negatives: 32,
            patience: 5,
            verbose: false,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&model, &split, &sampler);
        let after = evaluate(&model, &split.val, &cands, 128).aggregate().ndcg10;

        assert!(report.epochs_run >= 1);
        assert!(
            after > before + 0.05,
            "training did not improve NDCG: {before:.4} -> {after:.4}"
        );
        assert!(report.best_val_ndcg10 > 0.0);
        assert_eq!(report.history.len(), report.epochs_run);
        assert!(report.num_params > 0);
    }

    #[test]
    fn early_stopping_respects_patience() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::yelp_like(52).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = TinyMf::new(g.dataset.num_items, 8);
        // Zero LR: no improvement possible after epoch 0 → stop at patience.
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            lr: 0.0,
            patience: 2,
            batch_size: 256,
            num_negatives: 8,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&model, &split, &sampler);
        assert!(
            report.epochs_run <= 4,
            "should stop early, ran {}",
            report.epochs_run
        );
    }

    #[test]
    fn prefetch_matches_inline_training_bitwise() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        // Two identical models: one trained with the producer thread, one
        // inline. Per-batch RNG derivation makes the runs bit-identical.
        let g = SyntheticConfig::taobao_like(53).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let m1 = TinyMf::new(g.dataset.num_items, 8);
        let m2 = TinyMf::new(g.dataset.num_items, 8);
        let base = TrainConfig {
            epochs: 3,
            batch_size: 64,
            lr: 0.05,
            num_negatives: 8,
            ..TrainConfig::default()
        };
        let r1 = Trainer::new(TrainConfig { prefetch: true, ..base.clone() }).fit(&m1, &split, &sampler);
        let r2 = Trainer::new(TrainConfig { prefetch: false, ..base }).fit(&m2, &split, &sampler);

        let losses1: Vec<f32> = r1.history.iter().map(|e| e.train_loss).collect();
        let losses2: Vec<f32> = r2.history.iter().map(|e| e.train_loss).collect();
        assert_eq!(losses1, losses2, "train-loss history diverged");
        assert_eq!(r1.best_val_ndcg10, r2.best_val_ndcg10);
        for (a, b) in m1.params().iter().zip(m2.params().iter()) {
            assert_eq!(a.to_vec(), b.to_vec(), "final parameters diverged");
        }
    }
}
