//! IVF-Flat approximate catalog retrieval (DESIGN.md §14).
//!
//! Exhaustive `recommend_top_n` does O(catalog) work per request; the
//! standard production shape is retrieve-then-rerank. This module holds the
//! retrieval half: an **inverted-file (IVF) index** over the item-embedding
//! table. A k-means clusterer partitions the catalog into `nlist` lists;
//! serving scores each interest vector against the `nlist` centroids,
//! probes the top `nprobe` lists per interest (union across interests —
//! items live in exactly one list, so the union never duplicates), and
//! hands the resulting candidate set to the inference engine's gather-based
//! re-ranker ([`crate::infer::InferenceModel::score_candidates`]).
//!
//! - **Build** is deterministic for a given `(table, nlist, seed)` at any
//!   worker-pool size: Lloyd iterations assign items in parallel pool
//!   chunks, each chunk one GEMM against the pre-packed transposed centroid
//!   matrix (the same MR=4/NR=8/KC=256 microkernels — and therefore the
//!   same SIMD dispatch — as every other hot GEMM), and the centroid update
//!   is a sequential pass. Runs under an `index.build` span.
//! - **Serialization** is a small versioned binary written next to the
//!   checkpoint (conventionally `<ckpt>.ivf`), loadable without retraining.
//!   Corrupt, truncated, or version-mismatched files fail with a clear
//!   [`AnnError`]; consumers degrade to exhaustive scoring (warn-and-
//!   degrade, like the run ledger's IO handling).
//! - **Gating**: `MBSSL_ANN=off` disables probing everywhere even when an
//!   index is attached, restoring today's exhaustive path bit-for-bit —
//!   the same escape-hatch pattern as `MBSSL_INFER` / `MBSSL_FUSED`.
//!   `MBSSL_ANN_NLIST` / `MBSSL_ANN_NPROBE` override the built/probed list
//!   counts.
//!
//! Retrieval is approximate: recall@10 of the ANN path against the
//! exhaustive top-10 is the pinned metric (`tests/ann.rs` gates it at the
//! default `nlist`/`nprobe`). Re-ranked scores themselves are **bit-exact**
//! — the re-ranker reuses the exhaustive per-item arithmetic — so the ANN
//! result is always the exhaustive ranking restricted to the retrieved
//! candidate set, with identical tie-breaking.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::OnceLock;

use mbssl_data::ItemId;
use mbssl_telemetry as telemetry;
use mbssl_tensor::kernels::PackedB;
use mbssl_tensor::{kernels, pool};

/// Serialization magic: 8 bytes so a truncated checkpoint can never alias.
const MAGIC: &[u8; 8] = b"MBSSLIVF";
/// Current on-disk format version.
const VERSION: u32 = 1;
/// Lloyd-iteration budget; assignment usually stabilizes much earlier and
/// the loop stops at the first unchanged pass.
const KMEANS_ITERS: usize = 12;
/// Items assigned per parallel chunk of the k-means assignment pass.
const ASSIGN_CHUNK: usize = 512;

/// Whether ANN probing is allowed. Defaults to on; `MBSSL_ANN=off` (or
/// `0` / `none`) keeps every consumer on the exhaustive path even when an
/// index is attached. Read once and cached, mirroring `MBSSL_INFER`.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("MBSSL_ANN").as_deref(),
            Ok("off") | Ok("0") | Ok("none")
        )
    })
}

/// Default number of inverted lists for a catalog of `num_items`:
/// `MBSSL_ANN_NLIST` if set, else `4 * sqrt(num_items)` (finer-grained than
/// the classic `sqrt(N)` so each probe retrieves a tighter neighborhood),
/// clamped so every list can hold at least a couple of items.
pub fn default_nlist(num_items: usize) -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    let from_env = *ENV.get_or_init(|| {
        std::env::var("MBSSL_ANN_NLIST")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    let nlist = from_env.unwrap_or_else(|| (4.0 * (num_items as f64).sqrt()).round() as usize);
    nlist.clamp(1, (num_items / 2).max(1))
}

/// Default number of lists probed per interest vector: `MBSSL_ANN_NPROBE`
/// if set, else `nlist / 16` (≈6% of the lists per interest; the union
/// across interests widens actual coverage), at least 1.
pub fn default_nprobe(nlist: usize) -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    let from_env = *ENV.get_or_init(|| {
        std::env::var("MBSSL_ANN_NPROBE")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    from_env.unwrap_or(nlist / 16).clamp(1, nlist)
}

/// Errors arising from index IO or attaching an index to a model it was
/// not built for.
#[derive(Debug)]
pub enum AnnError {
    /// Underlying read/write failure (includes truncation mid-field).
    Io(std::io::Error),
    /// File does not start with the `MBSSLIVF` magic bytes.
    BadMagic,
    /// File uses a format version this build cannot read.
    BadVersion(u32),
    /// Structurally invalid file (bad counts, out-of-range ids, trailing
    /// bytes).
    Corrupt(String),
    /// Index geometry disagrees with the model it is being attached to.
    Mismatch {
        /// What the model expects, e.g. `dim 32, 2400 items`.
        expected: String,
        /// What the index header declares.
        found: String,
    },
}

impl std::fmt::Display for AnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnError::Io(e) => write!(f, "io error: {e}"),
            AnnError::BadMagic => write!(f, "not an mbssl IVF index (bad magic)"),
            AnnError::BadVersion(v) => write!(f, "unsupported IVF index version {v}"),
            AnnError::Corrupt(msg) => write!(f, "corrupt IVF index: {msg}"),
            AnnError::Mismatch { expected, found } => {
                write!(f, "index/model mismatch: model has {expected}, index has {found}")
            }
        }
    }
}

impl std::error::Error for AnnError {}

impl From<std::io::Error> for AnnError {
    fn from(e: std::io::Error) -> Self {
        AnnError::Io(e)
    }
}

/// Distribution statistics over the inverted lists, for `mbssl index stats`
/// and build-time logging.
#[derive(Clone, Copy, Debug)]
pub struct IndexStats {
    /// Number of inverted lists (== `nlist`).
    pub lists: usize,
    /// Lists holding zero items (harmless: probing them retrieves nothing).
    pub empty_lists: usize,
    /// Smallest list size.
    pub min_len: usize,
    /// Mean list size over non-empty lists.
    pub mean_len: f64,
    /// Largest list size.
    pub max_len: usize,
    /// `max_len / mean_len`: 1.0 is perfectly balanced; large values mean
    /// a hot list dominates probe cost.
    pub imbalance: f64,
    /// Serialized size in bytes (header + centroids + lists).
    pub bytes: usize,
}

/// An IVF-Flat index over an item-embedding table.
///
/// Covers items `1..=num_items` of a `(num_items + 1) × dim` table whose
/// row 0 is padding (the layout of the model's item table). Every item
/// belongs to exactly one inverted list; ids within a list are ascending.
pub struct IvfIndex {
    dim: usize,
    num_items: usize,
    seed: u64,
    /// `[nlist, dim]` row-major centroids.
    centroids: Vec<f32>,
    /// Centroidsᵀ prepacked for the per-request probe GEMM. Rebuilt from
    /// `centroids` on build/load; never serialized.
    packed_centroids: PackedB,
    lists: Vec<Vec<ItemId>>,
}

impl std::fmt::Debug for IvfIndex {
    /// Compact summary (the centroid/list payloads would swamp any log).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IvfIndex")
            .field("dim", &self.dim)
            .field("num_items", &self.num_items)
            .field("nlist", &self.lists.len())
            .field("seed", &self.seed)
            .finish()
    }
}

impl IvfIndex {
    /// Clusters `item_table` (`(num_items + 1) × dim`, row 0 = padding)
    /// into `nlist` lists with seeded Lloyd k-means. Deterministic for a
    /// given `(table, nlist, seed)` at any `MBSSL_THREADS`; runs under an
    /// `index.build` telemetry span.
    pub fn build(item_table: &[f32], num_items: usize, dim: usize, nlist: usize, seed: u64) -> IvfIndex {
        assert!(num_items >= 1, "cannot index an empty catalog");
        assert_eq!(item_table.len(), (num_items + 1) * dim, "item table shape");
        let nlist = nlist.clamp(1, num_items);
        let mut build_sp = telemetry::span("index.build");
        build_sp.add_bytes((item_table.len() * std::mem::size_of::<f32>()) as u64);

        // Items only (drop the padding row): rows 1..=num_items.
        let items = &item_table[dim..];

        // Seeded init: nlist distinct item rows chosen by splitmix64 draws.
        let mut centroids = vec![0.0f32; nlist * dim];
        {
            let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut taken = vec![false; num_items];
            for c in 0..nlist {
                let mut idx = (next() % num_items as u64) as usize;
                while taken[idx] {
                    idx = (idx + 1) % num_items;
                }
                taken[idx] = true;
                centroids[c * dim..][..dim].copy_from_slice(&items[idx * dim..][..dim]);
            }
        }

        let mut assign = vec![0u32; num_items];
        let mut centroids_t = vec![0.0f32; nlist * dim];
        let mut half_sq = vec![0.0f32; nlist];
        for _ in 0..KMEANS_ITERS {
            // Assignment: nearest centroid by L2, computed as
            // argmax(dot(e, c) - ||c||²/2) since ||e||² is constant per
            // item. One GEMM per pool chunk against the packed transpose.
            kernels::transpose(&centroids, &mut centroids_t, nlist, dim);
            let packed = PackedB::pack(&centroids_t, dim, nlist);
            kernels::row_sq_norms(&centroids, dim, &mut half_sq);
            for h in half_sq.iter_mut() {
                *h *= 0.5;
            }
            let mut next_assign = vec![0.0f32; num_items];
            pool::parallel_chunks_mut(&mut next_assign, ASSIGN_CHUNK, |ci, window| {
                let start = ci * ASSIGN_CHUNK;
                let m = window.len();
                let mut dots = vec![0.0f32; m * nlist];
                let mut scratch = vec![0.0f32; PackedB::SCRATCH_LEN];
                kernels::gemm_nn_prepacked_scratch(
                    &items[start * dim..(start + m) * dim],
                    &packed,
                    &mut dots,
                    m,
                    &mut scratch,
                );
                for (i, slot) in window.iter_mut().enumerate() {
                    let row = &dots[i * nlist..][..nlist];
                    let mut best = 0usize;
                    let mut best_v = f32::NEG_INFINITY;
                    for (c, &d) in row.iter().enumerate() {
                        let v = d - half_sq[c];
                        // Strict > keeps the lowest centroid id on ties.
                        if v > best_v {
                            best_v = v;
                            best = c;
                        }
                    }
                    // nlist < 2^24, so the index is exact as f32.
                    *slot = best as f32;
                }
            });
            let mut changed = false;
            for (a, &v) in assign.iter_mut().zip(next_assign.iter()) {
                let c = v as u32;
                changed |= *a != c;
                *a = c;
            }
            if !changed {
                break;
            }
            // Update: mean of members; an empty cluster keeps its previous
            // centroid (stable, deterministic).
            let mut sums = vec![0.0f64; nlist * dim];
            let mut counts = vec![0usize; nlist];
            for (i, &c) in assign.iter().enumerate() {
                counts[c as usize] += 1;
                let row = &items[i * dim..][..dim];
                let sum = &mut sums[c as usize * dim..][..dim];
                for (s, &v) in sum.iter_mut().zip(row.iter()) {
                    *s += v as f64;
                }
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                for j in 0..dim {
                    centroids[c * dim + j] = (sums[c * dim + j] * inv) as f32;
                }
            }
        }

        let mut lists: Vec<Vec<ItemId>> = vec![Vec::new(); nlist];
        for (i, &c) in assign.iter().enumerate() {
            // Ascending ids per list by construction.
            lists[c as usize].push((i + 1) as ItemId);
        }
        kernels::transpose(&centroids, &mut centroids_t, nlist, dim);
        let packed_centroids = PackedB::pack(&centroids_t, dim, nlist);
        IvfIndex {
            dim,
            num_items,
            seed,
            centroids,
            packed_centroids,
            lists,
        }
    }

    /// Embedding dimension the index was built over.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Catalog size the index covers (items `1..=num_items`).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// The k-means seed the index was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// List-size distribution and serialized footprint.
    pub fn stats(&self) -> IndexStats {
        let lens: Vec<usize> = self.lists.iter().map(|l| l.len()).collect();
        let non_empty = lens.iter().filter(|&&l| l > 0).count().max(1);
        let mean = self.num_items as f64 / non_empty as f64;
        let max = lens.iter().copied().max().unwrap_or(0);
        IndexStats {
            lists: self.lists.len(),
            empty_lists: lens.iter().filter(|&&l| l == 0).count(),
            min_len: lens.iter().copied().min().unwrap_or(0),
            mean_len: mean,
            max_len: max,
            imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
            bytes: MAGIC.len()
                + 4
                + 4 * 8
                + self.centroids.len() * 4
                + self.lists.len() * 8
                + self.num_items * 4,
        }
    }

    /// Scores `interests` (`k × dim` row-major) against the centroids,
    /// probes the top `nprobe` lists per interest (centroid-score ties
    /// break toward the lower list id), and appends the union of their
    /// items to `out`. Each item is emitted at most once (lists are
    /// disjoint and re-probes are skipped), ascending within a list.
    ///
    /// Allocates its own GEMM buffers per call; hot serving paths use
    /// [`probe_with`](IvfIndex::probe_with) with arena-rented scratch
    /// instead.
    pub fn probe_into(&self, interests: &[f32], k: usize, nprobe: usize, out: &mut Vec<ItemId>) {
        let mut scores = vec![0.0f32; k * self.lists.len()];
        let mut scratch = vec![0.0f32; PackedB::SCRATCH_LEN];
        self.probe_with(interests, k, nprobe, &mut scores, &mut scratch, out);
    }

    /// Scratch-taking variant of [`probe_into`](IvfIndex::probe_into):
    /// `scores` must hold at least `k * nlist` f32s and `scratch` at least
    /// [`PackedB::SCRATCH_LEN`]; both are overwritten. The inference
    /// engine rents them from the per-request arena so steady-state
    /// probing does zero tensor-buffer allocation. Output is identical to
    /// `probe_into` (which delegates here).
    pub fn probe_with(
        &self,
        interests: &[f32],
        k: usize,
        nprobe: usize,
        scores: &mut [f32],
        scratch: &mut [f32],
        out: &mut Vec<ItemId>,
    ) {
        assert_eq!(interests.len(), k * self.dim, "interest matrix shape");
        let nlist = self.lists.len();
        assert!(scores.len() >= k * nlist, "centroid score buffer too small");
        let nprobe = nprobe.clamp(1, nlist);
        // One GEMM scores every interest against every centroid via the
        // prepacked transpose (panels packed once at build/load, shared by
        // every request); selection then runs over plain f32 rows.
        let scores = &mut scores[..k * nlist];
        scores.fill(0.0);
        kernels::gemm_nn_prepacked_scratch(
            interests,
            &self.packed_centroids,
            scores,
            k,
            scratch,
        );
        let mut probed = vec![false; nlist];
        let mut order: Vec<u32> = Vec::with_capacity(nlist);
        let mut kept: Vec<usize> = Vec::with_capacity(nprobe);
        for row in scores.chunks_exact(nlist) {
            order.clear();
            order.extend(0..nlist as u32);
            // Total order (score desc, list id asc), so the kept set and
            // its sorted emission order are deterministic.
            if nprobe < nlist {
                order.select_nth_unstable_by(nprobe - 1, |&a, &b| {
                    row[b as usize]
                        .total_cmp(&row[a as usize])
                        .then(a.cmp(&b))
                });
            }
            kept.clear();
            kept.extend(order[..nprobe].iter().map(|&c| c as usize));
            kept.sort_unstable();
            for &c in &kept {
                if !probed[c] {
                    probed[c] = true;
                    out.extend_from_slice(&self.lists[c]);
                }
            }
        }
    }

    /// Serializes the index to `writer` (see the module docs for the
    /// format: magic, version, geometry header, centroids, lists).
    pub fn save<W: Write>(&self, writer: &mut W) -> Result<(), AnnError> {
        writer.write_all(MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        for v in [
            self.dim as u64,
            self.num_items as u64,
            self.lists.len() as u64,
            self.seed,
        ] {
            writer.write_all(&v.to_le_bytes())?;
        }
        let mut buf = Vec::with_capacity(self.centroids.len() * 4);
        for &v in &self.centroids {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        writer.write_all(&buf)?;
        for list in &self.lists {
            writer.write_all(&(list.len() as u64).to_le_bytes())?;
            let mut buf = Vec::with_capacity(list.len() * 4);
            for &id in list {
                buf.extend_from_slice(&id.to_le_bytes());
            }
            writer.write_all(&buf)?;
        }
        Ok(())
    }

    /// Saves to a file path (conventionally `<checkpoint>.ivf`).
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> Result<(), AnnError> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut file)
    }

    /// Reads an index back, validating the header, geometry plausibility,
    /// id ranges, the every-item-exactly-once invariant, and that no
    /// trailing bytes follow the last list.
    pub fn load<R: Read>(reader: &mut R) -> Result<IvfIndex, AnnError> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(AnnError::BadMagic);
        }
        let mut u32buf = [0u8; 4];
        reader.read_exact(&mut u32buf)?;
        let version = u32::from_le_bytes(u32buf);
        if version != VERSION {
            return Err(AnnError::BadVersion(version));
        }
        let mut u64buf = [0u8; 8];
        let mut read_u64 = |r: &mut R| -> Result<u64, AnnError> {
            r.read_exact(&mut u64buf)?;
            Ok(u64::from_le_bytes(u64buf))
        };
        let dim = read_u64(reader)? as usize;
        let num_items = read_u64(reader)? as usize;
        let nlist = read_u64(reader)? as usize;
        let seed = read_u64(reader)?;
        if dim == 0 || dim > 1 << 20 {
            return Err(AnnError::Corrupt(format!("implausible dim {dim}")));
        }
        if num_items == 0 || num_items > 1 << 31 {
            return Err(AnnError::Corrupt(format!("implausible num_items {num_items}")));
        }
        if nlist == 0 || nlist > num_items {
            return Err(AnnError::Corrupt(format!(
                "nlist {nlist} out of range for {num_items} items"
            )));
        }
        let mut buf = vec![0u8; nlist * dim * 4];
        reader.read_exact(&mut buf)?;
        let centroids: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let mut lists = Vec::with_capacity(nlist);
        let mut seen = vec![false; num_items + 1];
        let mut total = 0usize;
        for c in 0..nlist {
            let mut u64buf = [0u8; 8];
            reader.read_exact(&mut u64buf)?;
            let len = u64::from_le_bytes(u64buf) as usize;
            total += len;
            if total > num_items {
                return Err(AnnError::Corrupt(format!(
                    "lists hold more than {num_items} items"
                )));
            }
            let mut buf = vec![0u8; len * 4];
            reader.read_exact(&mut buf)?;
            let mut list = Vec::with_capacity(len);
            for idb in buf.chunks_exact(4) {
                let id = u32::from_le_bytes([idb[0], idb[1], idb[2], idb[3]]);
                if id == 0 || id as usize > num_items {
                    return Err(AnnError::Corrupt(format!(
                        "list {c} holds out-of-range item {id}"
                    )));
                }
                if seen[id as usize] {
                    return Err(AnnError::Corrupt(format!(
                        "item {id} appears in more than one list"
                    )));
                }
                seen[id as usize] = true;
                list.push(id as ItemId);
            }
            lists.push(list);
        }
        if total != num_items {
            return Err(AnnError::Corrupt(format!(
                "lists hold {total} items, expected {num_items}"
            )));
        }
        let mut trailing = [0u8; 1];
        if reader.read(&mut trailing)? != 0 {
            return Err(AnnError::Corrupt("trailing bytes after the last list".into()));
        }
        let mut centroids_t = vec![0.0f32; nlist * dim];
        kernels::transpose(&centroids, &mut centroids_t, nlist, dim);
        let packed_centroids = PackedB::pack(&centroids_t, dim, nlist);
        Ok(IvfIndex {
            dim,
            num_items,
            seed,
            centroids,
            packed_centroids,
            lists,
        })
    }

    /// Loads from a file path.
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<IvfIndex, AnnError> {
        let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::load(&mut file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_table(num_items: usize, dim: usize) -> Vec<f32> {
        // Deterministic, mildly clustered: 4 blobs on the axes.
        let mut t = vec![0.0f32; (num_items + 1) * dim];
        for i in 1..=num_items {
            let blob = i % 4;
            for j in 0..dim {
                let base = if j % 4 == blob { 1.0 } else { 0.0 };
                t[i * dim + j] = base + ((i * 31 + j * 7) % 13) as f32 * 0.01;
            }
        }
        t
    }

    #[test]
    fn every_item_lands_in_exactly_one_list() {
        let (n, d) = (100usize, 8usize);
        let idx = IvfIndex::build(&toy_table(n, d), n, d, 8, 7);
        let mut seen = vec![false; n + 1];
        for list in &idx.lists {
            for w in list.windows(2) {
                assert!(w[0] < w[1], "list ids not ascending");
            }
            for &id in list {
                assert!(!seen[id as usize], "item {id} in two lists");
                seen[id as usize] = true;
            }
        }
        assert!(seen[1..].iter().all(|&s| s), "an item is missing");
    }

    #[test]
    fn full_probe_retrieves_everything() {
        let (n, d) = (64usize, 8usize);
        let idx = IvfIndex::build(&toy_table(n, d), n, d, 6, 3);
        let z = vec![0.5f32; d];
        let mut out = Vec::new();
        idx.probe_into(&z, 1, idx.nlist(), &mut out);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn multi_interest_probe_never_duplicates() {
        let (n, d) = (80usize, 8usize);
        let idx = IvfIndex::build(&toy_table(n, d), n, d, 10, 3);
        // Two very different interests probing overlapping lists.
        let mut z = vec![0.0f32; 2 * d];
        z[0] = 1.0;
        z[d + 1] = 1.0;
        let mut out = Vec::new();
        idx.probe_into(&z, 2, idx.nlist(), &mut out);
        let mut ids = out.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.len(), "probe emitted duplicates");
    }

    #[test]
    fn build_is_deterministic() {
        let (n, d) = (120usize, 8usize);
        let t = toy_table(n, d);
        let a = IvfIndex::build(&t, n, d, 12, 5);
        let b = IvfIndex::build(&t, n, d, 12, 5);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.lists, b.lists);
    }

    #[test]
    fn roundtrip_preserves_index() {
        let (n, d) = (60usize, 4usize);
        let idx = IvfIndex::build(&toy_table(n, d), n, d, 5, 3);
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        let loaded = IvfIndex::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.dim(), d);
        assert_eq!(loaded.num_items(), n);
        assert_eq!(loaded.seed(), 3);
        assert_eq!(loaded.centroids, idx.centroids);
        assert_eq!(loaded.lists, idx.lists);
    }
}
