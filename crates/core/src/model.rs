//! MBMISSL — the full multi-behavior multi-interest model with
//! self-supervised learning.

#![allow(clippy::needless_range_loop)] // multi-array index loops are clearer here

use rand::rngs::StdRng;

use mbssl_data::augment::{default_ops, random_augment};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{ItemId, Sequence};
use mbssl_tensor::nn::{Mode, Module, ParamMap};
use mbssl_tensor::{no_grad, Tensor};

use crate::config::{BehaviorSchema, ModelConfig};
use crate::encoder::{init_rng, Backbone, InputLayer};
use crate::interest::InterestExtractor;
use crate::recommender::SequentialRecommender;
use crate::ssl::{alignment_loss, augmentation_loss, disentanglement_loss};
use crate::trainer::TrainableRecommender;

/// The reproduced model (DESIGN.md §2).
pub struct Mbmissl {
    config: ModelConfig,
    schema: BehaviorSchema,
    input: InputLayer,
    pub(crate) backbone: Backbone,
    pub(crate) extractor: InterestExtractor,
    num_items: usize,
}

impl Mbmissl {
    /// Builds the model for a catalog of `num_items`, seeded from
    /// `config.seed` (equal inputs give bit-identical parameters).
    pub fn new(num_items: usize, schema: BehaviorSchema, config: ModelConfig) -> Self {
        config.validate().expect("invalid model config");
        let mut rng = init_rng(config.seed);
        let behavior_tags: Vec<usize> = schema.behaviors.iter().map(|b| b.index()).collect();
        let input = InputLayer::new(num_items, &config, &mut rng);
        let backbone = Backbone::new(&config, &behavior_tags, &mut rng);
        let extractor = InterestExtractor::new(&config, &mut rng);
        Mbmissl {
            config,
            schema,
            input,
            backbone,
            extractor,
            num_items,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The behavior schema the model was built for.
    pub fn schema(&self) -> &BehaviorSchema {
        &self.schema
    }

    /// Catalog size.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Contextual sequence states `[B, L, D]`.
    pub fn encode(&self, batch: &Batch, mode: &mut Mode) -> Tensor {
        let x = self.input.forward(batch, mode);
        self.backbone.forward(&x, batch, mode)
    }

    /// Prediction interests extracted over all valid positions `[B, K, D]`.
    pub fn interests(&self, h: &Tensor, batch: &Batch) -> Tensor {
        self.extractor.forward(h, &batch.valid)
    }

    /// Behavior-specific interests plus per-user validity (1.0 when the
    /// user has at least one event of that behavior).
    pub fn behavior_interests(
        &self,
        h: &Tensor,
        batch: &Batch,
        behavior_tag: usize,
    ) -> (Tensor, Vec<f32>) {
        let (b, l) = (batch.size, batch.max_len);
        let mut allowed = vec![0.0f32; b * l];
        let mut user_valid = vec![0.0f32; b];
        for bi in 0..b {
            for t in 0..l {
                let idx = bi * l + t;
                if batch.valid[idx] != 0.0 && batch.behaviors[idx] == behavior_tag {
                    allowed[idx] = 1.0;
                    user_valid[bi] = 1.0;
                }
            }
        }
        (self.extractor.forward(h, &allowed), user_valid)
    }

    /// Scores each candidate list entry via `max_k ⟨z_k, e_i⟩`.
    ///
    /// `interests: [B, K, D]`, `candidate_ids: [B * C]` → `[B, C]`.
    pub fn score_against(&self, interests: &Tensor, candidate_ids: &[usize], c: usize) -> Tensor {
        let (b, _k, d) = (
            interests.dims()[0],
            interests.dims()[1],
            interests.dims()[2],
        );
        assert_eq!(candidate_ids.len(), b * c);
        let cand = self
            .input
            .item_emb
            .forward(candidate_ids)
            .reshape([b, c, d]);
        interests
            .bmm(&cand.transpose_last()) // [B, K, C]
            .max_axis(1, false) // [B, C]
    }

    /// Mean-pooled user representation from prediction interests `[B, D]`.
    fn user_repr(&self, h: &Tensor, batch: &Batch) -> Tensor {
        self.interests(h, batch).mean_axis(1, false)
    }

    /// Full training loss on a batch of instances.
    ///
    /// Prepares the batch (truncation + negative sampling + encoding) and
    /// computes the loss on a single RNG stream. The trainer's prefetch
    /// pipeline instead calls the two halves separately so preparation
    /// overlaps the previous step's forward/backward.
    pub fn compute_loss(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        let prepared = PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.config.max_seq_len),
            rng,
        );
        self.compute_loss_prepared(&prepared, sampler, num_negatives, rng)
    }

    /// Graph half of [`Mbmissl::compute_loss`]: the main sampled-softmax loss plus
    /// the three SSL terms, with the augmented views re-encoded through the
    /// same parameters. `rng` drives dropout, augmentation, and the aux
    /// objective's in-loss negative sampling.
    pub fn compute_loss_prepared(
        &self,
        prepared: &PreparedBatch,
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        let instances = prepared.instance_refs();
        let instances = instances.as_slice();
        let batch = &prepared.batch;
        let (b, n) = (batch.size, batch.num_negatives);

        let mut mode = Mode::Train(rng);
        let h = self.encode(batch, &mut mode);
        let z_pred = self.interests(&h, batch);

        // --- Main loss: sampled softmax over [target ; negatives]. ---
        let c = 1 + n;
        let mut candidate_ids = Vec::with_capacity(b * c);
        for bi in 0..b {
            candidate_ids.push(batch.targets[bi]);
            candidate_ids.extend_from_slice(&batch.negatives[bi * n..(bi + 1) * n]);
        }
        let logits = self.score_against(&z_pred, &candidate_ids, c);
        let targets = vec![0usize; b];
        let mut loss = logits.cross_entropy_logits(&targets);

        // --- SSL: cross-behavior interest alignment. ---
        if self.config.lambda_align > 0.0 {
            let (z_target, target_valid) =
                self.behavior_interests(&h, &batch, self.schema.target.index());
            for aux in self.schema.auxiliaries() {
                let (z_aux, aux_valid) = self.behavior_interests(&h, &batch, aux.index());
                let both: Vec<f32> = aux_valid
                    .iter()
                    .zip(target_valid.iter())
                    .map(|(&a, &t)| a * t)
                    .collect();
                let align = alignment_loss(&z_aux, &z_target, self.config.temperature, &both);
                loss = loss.add(&align.mul_scalar(self.config.lambda_align));
            }
        }

        // --- SSL: augmentation-based sequence contrast. ---
        if self.config.lambda_aug > 0.0 {
            let ops = default_ops();
            let view = |rng: &mut StdRng| -> Batch {
                let seqs: Vec<Sequence> = instances
                    .iter()
                    .map(|inst| random_augment(&inst.history, &ops, rng))
                    .collect();
                let refs: Vec<&Sequence> = seqs.iter().collect();
                Batch::encode_histories(&refs)
            };
            let (b1, b2) = {
                let rng = match &mut mode {
                    Mode::Train(r) => r,
                    Mode::Eval => unreachable!(),
                };
                (view(rng), view(rng))
            };
            let h1 = self.encode(&b1, &mut mode);
            let v1 = self.user_repr(&h1, &b1);
            let h2 = self.encode(&b2, &mut mode);
            let v2 = self.user_repr(&h2, &b2);
            let aug = augmentation_loss(&v1, &v2, self.config.temperature);
            loss = loss.add(&aug.mul_scalar(self.config.lambda_aug));
        }

        // --- Extension: auxiliary-behavior next-item prediction. ---
        // For each auxiliary behavior, predict the most recent event of
        // that behavior from the history strictly before it (multi-task
        // signal in the MB-STR tradition). Off by default (lambda_aux 0).
        if self.config.lambda_aux > 0.0 {
            let auxiliaries = self.schema.auxiliaries();
            for aux in &auxiliaries {
                let tag = aux.index();
                // Build (prefix, aux-target) pairs from instances that have
                // an aux event preceded by at least one other event.
                let mut aux_instances: Vec<TrainInstance> = Vec::new();
                for inst in instances.iter() {
                    if let Some(pos) = inst
                        .history
                        .behaviors
                        .iter()
                        .rposition(|&b| b.index() == tag)
                    {
                        if pos > 0 {
                            aux_instances.push(TrainInstance {
                                user: inst.user,
                                history: Sequence {
                                    items: inst.history.items[..pos].to_vec(),
                                    behaviors: inst.history.behaviors[..pos].to_vec(),
                                },
                                target: inst.history.items[pos],
                            });
                        }
                    }
                }
                if aux_instances.len() < 2 {
                    continue;
                }
                let aux_refs: Vec<&TrainInstance> = aux_instances.iter().collect();
                let rng_ref = match &mut mode {
                    Mode::Train(r) => r,
                    Mode::Eval => unreachable!(),
                };
                let aux_batch = Batch::encode(
                    &aux_refs,
                    sampler,
                    num_negatives,
                    NegativeStrategy::Uniform,
                    rng_ref,
                );
                let ab = aux_batch.size;
                let an = aux_batch.num_negatives;
                let h_aux = self.encode(&aux_batch, &mut mode);
                let z_aux = self.interests(&h_aux, &aux_batch);
                let ac = 1 + an;
                let mut aux_cand = Vec::with_capacity(ab * ac);
                for bi in 0..ab {
                    aux_cand.push(aux_batch.targets[bi]);
                    aux_cand.extend_from_slice(&aux_batch.negatives[bi * an..(bi + 1) * an]);
                }
                let aux_logits = self.score_against(&z_aux, &aux_cand, ac);
                let aux_loss = aux_logits.cross_entropy_logits(&vec![0usize; ab]);
                let weight = self.config.lambda_aux / auxiliaries.len() as f32;
                loss = loss.add(&aux_loss.mul_scalar(weight));
            }
        }

        // --- SSL: interest disentanglement. ---
        if self.config.lambda_disent > 0.0 && self.config.num_interests > 1 {
            let disent = disentanglement_loss(&z_pred);
            loss = loss.add(&disent.mul_scalar(self.config.lambda_disent));
        }

        loss
    }

    /// Saves the model's parameters to a checkpoint file (see
    /// [`mbssl_tensor::serialize`] for the format).
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), mbssl_tensor::serialize::CheckpointError> {
        mbssl_tensor::serialize::save_params_to_file(&self.named_params(), path)
    }

    /// Loads parameters from a checkpoint produced by [`Mbmissl::save`]
    /// into this model (the architecture/config must match).
    pub fn load(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), mbssl_tensor::serialize::CheckpointError> {
        mbssl_tensor::serialize::load_params_from_file(&self.named_params(), path)
    }

    /// Interest-level inspection: attention weights `[B, K, L]` over a
    /// batch of histories (for the analysis example / t-SNE-style tooling).
    pub fn inspect_attention(&self, histories: &[&Sequence]) -> (Batch, Vec<f32>) {
        let truncated: Vec<Sequence> = histories
            .iter()
            .map(|h| h.truncate_to_recent(self.config.max_seq_len))
            .collect();
        let refs: Vec<&Sequence> = truncated.iter().collect();
        let batch = Batch::encode_histories(&refs);
        let weights = no_grad(|| {
            let h = self.encode(&batch, &mut Mode::Eval);
            self.extractor.attention_weights(&h, &batch.valid).to_vec()
        });
        (batch, weights)
    }

    /// Extracted prediction interests for a batch of histories
    /// (row-major `[B, K, D]`), for analysis tooling.
    pub fn extract_interests(&self, histories: &[&Sequence]) -> Vec<f32> {
        let truncated: Vec<Sequence> = histories
            .iter()
            .map(|h| h.truncate_to_recent(self.config.max_seq_len))
            .collect();
        let refs: Vec<&Sequence> = truncated.iter().collect();
        let batch = Batch::encode_histories(&refs);
        no_grad(|| {
            let h = self.encode(&batch, &mut Mode::Eval);
            self.interests(&h, &batch).to_vec()
        })
    }
}

impl Module for Mbmissl {
    fn collect_params(&self, prefix: &str, map: &mut ParamMap) {
        self.input
            .collect_params(&mbssl_tensor::nn::join_name(prefix, "input"), map);
        self.backbone
            .collect_params(&mbssl_tensor::nn::join_name(prefix, "backbone"), map);
        self.extractor
            .collect_params(&mbssl_tensor::nn::join_name(prefix, "extractor"), map);
    }
}

impl SequentialRecommender for Mbmissl {
    fn name(&self) -> String {
        format!(
            "MBMISSL(dim={}, K={}, {:?}, {:?})",
            self.config.dim, self.config.num_interests, self.config.encoder, self.config.extractor
        )
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        assert_eq!(histories.len(), candidates.len());
        if histories.is_empty() {
            return Vec::new();
        }
        let truncated: Vec<Sequence> = histories
            .iter()
            .map(|h| h.truncate_to_recent(self.config.max_seq_len))
            .collect();
        let refs: Vec<&Sequence> = truncated.iter().collect();
        let batch = Batch::encode_histories(&refs);
        no_grad(|| {
            let h = self.encode(&batch, &mut Mode::Eval);
            let z = self.interests(&h, &batch);
            // All lists must share one length to batch into a tensor; this
            // holds under the 1-vs-99 protocol.
            let c = candidates[0].len();
            assert!(
                candidates.iter().all(|l| l.len() == c),
                "ragged candidate lists"
            );
            let flat: Vec<usize> = candidates
                .iter()
                .flat_map(|l| l.iter().map(|&i| i as usize))
                .collect();
            let scores = self.score_against(&z, &flat, c);
            let data = scores.to_vec();
            (0..histories.len())
                .map(|b| data[b * c..(b + 1) * c].to_vec())
                .collect()
        })
    }

    fn prepare_inference(&self) -> Option<Box<dyn SequentialRecommender>> {
        if crate::infer::enabled() {
            Some(Box::new(crate::infer::InferenceModel::compile(self)))
        } else {
            None
        }
    }
}

impl TrainableRecommender for Mbmissl {
    fn params(&self) -> Vec<Tensor> {
        self.param_map("mbmissl").tensors()
    }

    fn named_params(&self) -> ParamMap {
        self.param_map("mbmissl")
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.config.max_seq_len),
            rng,
        )
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        self.compute_loss_prepared(prepared, sampler, num_negatives, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncoderKind, ExtractorKind};
    use mbssl_data::preprocess::{leave_one_out, SplitConfig};
    use mbssl_data::synthetic::SyntheticConfig;
    use mbssl_data::Behavior;
    use rand::SeedableRng;

    fn tiny_model(encoder: EncoderKind, extractor: ExtractorKind) -> (Mbmissl, mbssl_data::Dataset) {
        let g = SyntheticConfig::taobao_like(31).scaled(0.05).generate();
        let schema = BehaviorSchema::new(g.dataset.behaviors.clone(), g.dataset.target_behavior);
        let config = ModelConfig {
            dim: 16,
            heads: 2,
            num_layers: 1,
            ffn_hidden: 32,
            num_interests: 2,
            extractor_hidden: 16,
            max_seq_len: 20,
            dropout: 0.1,
            encoder,
            extractor,
            ..ModelConfig::default()
        };
        (Mbmissl::new(g.dataset.num_items, schema, config), g.dataset)
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (model, dataset) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::SelfAttentive);
        let split = leave_one_out(&dataset, &SplitConfig { max_seq_len: 20, ..Default::default() });
        let sampler = NegativeSampler::from_dataset(&dataset);
        let mut rng = StdRng::seed_from_u64(0);
        let refs: Vec<&TrainInstance> = split.train.iter().take(8).collect();
        let loss = model.compute_loss(&refs, &sampler, 8, &mut rng);
        assert!(loss.item().is_finite());
        assert!(loss.item() > 0.0);
    }

    #[test]
    fn backward_reaches_every_parameter() {
        let (model, dataset) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::SelfAttentive);
        let split = leave_one_out(&dataset, &SplitConfig { max_seq_len: 20, ..Default::default() });
        let sampler = NegativeSampler::from_dataset(&dataset);
        let mut rng = StdRng::seed_from_u64(1);
        let refs: Vec<&TrainInstance> = split.train.iter().take(8).collect();
        model
            .compute_loss(&refs, &sampler, 8, &mut rng)
            .backward();
        let mut missing = Vec::new();
        for (name, t) in model.param_map("m").iter() {
            if t.grad().is_none() {
                missing.push(name.to_string());
            }
        }
        // The positional rows beyond batch length legitimately receive
        // zero gradient but the tensor itself must still be touched.
        assert!(missing.is_empty(), "params missing grads: {missing:?}");
    }

    #[test]
    fn scoring_shapes_and_determinism() {
        let (model, dataset) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::SelfAttentive);
        let hist = dataset.sequences[0].clone();
        let cands: Vec<ItemId> = (1..=10).collect();
        let a = model.score_batch(&[&hist], &[&cands]);
        let b = model.score_batch(&[&hist], &[&cands]);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].len(), 10);
        assert_eq!(a, b, "eval scoring must be deterministic");
    }

    #[test]
    fn transformer_and_routing_variants_run() {
        let (model, dataset) = tiny_model(EncoderKind::Transformer, ExtractorKind::DynamicRouting);
        let hist = dataset.sequences[0].clone();
        let cands: Vec<ItemId> = (1..=5).collect();
        let scores = model.score_batch(&[&hist], &[&cands]);
        assert!(scores[0].iter().all(|s| s.is_finite()));
    }

    #[test]
    fn ssl_terms_change_the_loss() {
        let g = SyntheticConfig::taobao_like(33).scaled(0.05).generate();
        let schema = BehaviorSchema::new(g.dataset.behaviors.clone(), g.dataset.target_behavior);
        let base_cfg = ModelConfig {
            dim: 16,
            heads: 2,
            num_layers: 1,
            ffn_hidden: 32,
            num_interests: 2,
            extractor_hidden: 16,
            max_seq_len: 20,
            dropout: 0.0,
            ..ModelConfig::default()
        };
        let with_ssl = Mbmissl::new(g.dataset.num_items, schema.clone(), base_cfg.clone());
        let without = Mbmissl::new(
            g.dataset.num_items,
            schema,
            base_cfg.without_ssl(),
        );
        let split = leave_one_out(&g.dataset, &SplitConfig { max_seq_len: 20, ..Default::default() });
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let refs: Vec<&TrainInstance> = split.train.iter().take(8).collect();
        let l1 = with_ssl
            .compute_loss(&refs, &sampler, 8, &mut StdRng::seed_from_u64(3))
            .item();
        let l2 = without
            .compute_loss(&refs, &sampler, 8, &mut StdRng::seed_from_u64(3))
            .item();
        // Same seed → same parameters and same sampled negatives; the SSL
        // terms must move the total.
        assert!((l1 - l2).abs() > 1e-5, "SSL terms had no effect");
    }

    #[test]
    fn aux_prediction_loss_changes_total() {
        let g = SyntheticConfig::taobao_like(34).scaled(0.05).generate();
        let schema = BehaviorSchema::new(g.dataset.behaviors.clone(), g.dataset.target_behavior);
        let base = ModelConfig {
            dim: 16,
            heads: 2,
            num_layers: 1,
            ffn_hidden: 32,
            num_interests: 2,
            extractor_hidden: 16,
            max_seq_len: 20,
            dropout: 0.0,
            ..ModelConfig::default()
        }
        .without_ssl();
        let with_aux = Mbmissl::new(
            g.dataset.num_items,
            schema.clone(),
            ModelConfig {
                lambda_aux: 0.5,
                ..base.clone()
            },
        );
        let without = Mbmissl::new(g.dataset.num_items, schema, base);
        let split = leave_one_out(&g.dataset, &SplitConfig { max_seq_len: 20, ..Default::default() });
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let refs: Vec<&TrainInstance> = split.train.iter().take(8).collect();
        let l1 = with_aux
            .compute_loss(&refs, &sampler, 8, &mut StdRng::seed_from_u64(5))
            .item();
        let l2 = without
            .compute_loss(&refs, &sampler, 8, &mut StdRng::seed_from_u64(5))
            .item();
        assert!(l1.is_finite() && l2.is_finite());
        assert!((l1 - l2).abs() > 1e-6, "aux loss had no effect");

        // Gradients still reach every parameter with the aux loss on.
        with_aux
            .compute_loss(&refs, &sampler, 8, &mut StdRng::seed_from_u64(6))
            .backward();
        for (name, t) in with_aux.param_map("m").iter() {
            assert!(t.grad().is_some(), "{name} missing grad with aux loss");
        }
    }

    #[test]
    fn behavior_interest_validity_flags() {
        let (model, _) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::SelfAttentive);
        // A history with clicks only.
        let mut s = Sequence::new();
        s.push(1, Behavior::Click);
        s.push(2, Behavior::Click);
        let batch = Batch::encode_histories(&[&s]);
        let h = no_grad(|| model.encode(&batch, &mut Mode::Eval));
        let (_, click_valid) = model.behavior_interests(&h, &batch, Behavior::Click.index());
        let (_, buy_valid) = model.behavior_interests(&h, &batch, Behavior::Purchase.index());
        assert_eq!(click_valid, vec![1.0]);
        assert_eq!(buy_valid, vec![0.0]);
    }

    #[test]
    fn inspect_attention_rows_normalized() {
        let (model, dataset) = tiny_model(EncoderKind::Hypergraph, ExtractorKind::SelfAttentive);
        let hist = &dataset.sequences[0];
        let (batch, weights) = model.inspect_attention(&[hist]);
        let (k, l) = (2, batch.max_len);
        assert_eq!(weights.len(), k * l);
        for row in weights.chunks(l) {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        }
    }
}
