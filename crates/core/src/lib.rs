//! `mbssl-core` — MBMISSL: Multi-Behavior sequential recommendation with
//! Multi-Interest Self-Supervised Learning.
//!
//! This crate assembles the reproduced model (see `DESIGN.md` §2) from the
//! workspace substrates:
//! - [`encoder`]: multi-behavior input layer + hypergraph-transformer /
//!   transformer backbones;
//! - [`interest`]: self-attentive and dynamic-routing multi-interest
//!   extractors;
//! - [`ssl`]: cross-behavior interest alignment, augmentation contrast,
//!   and interest disentanglement;
//! - [`model`]: the full [`Mbmissl`] model;
//! - [`analysis`]: interest-recovery and embedding-export tooling;
//! - [`trainer`] / [`recommender`]: the shared training loop and
//!   leave-one-out evaluator every model in the workspace runs through;
//! - [`infer`]: the graph-free serving engine ([`infer::InferenceModel`])
//!   `evaluate` / `recommend_top_n` compile trained models into;
//! - [`ann`]: the IVF-Flat approximate-retrieval index ([`ann::IvfIndex`])
//!   that turns full-catalog ranking into retrieve-then-rerank;
//! - [`serve`]: the micro-batched online serving engine (`mbssl serve`)
//!   with per-user sequence caching, checkpoint hot-swap, and a
//!   composable re-rank chain;
//! - [`ledger`]: the per-run directory (`MBSSL_RUN_DIR`) with a manifest
//!   and per-epoch metrics, read back by `mbssl report`.

#![warn(missing_docs)]

pub mod analysis;
pub mod ann;
pub mod config;
pub mod encoder;
pub mod infer;
pub mod interest;
pub mod ledger;
pub mod model;
pub mod recommender;
pub mod serve;
pub mod ssl;
pub mod trainer;

pub use ann::{AnnError, IndexStats, IvfIndex};
pub use config::{BehaviorSchema, EncoderKind, ExtractorKind, ModelConfig, TrainConfig};
pub use infer::InferenceModel;
pub use ledger::{
    read_run_dir, render_report, sparkline, EpochRecord, RunLedger, RunManifest, RunRecord,
};
pub use model::Mbmissl;
pub use recommender::{
    evaluate, evaluate_reference, recommend_top_n, recommend_top_n_reference, Recommendation,
    SequentialRecommender,
};
pub use serve::{
    MetricsSnapshot, RerankChain, ServeConfig, ServeReply, ServeStats, Server, SessionStore, Stage,
};
pub use mbssl_data::sampler::PreparedBatch;
pub use trainer::{TrainReport, TrainableRecommender, Trainer};
