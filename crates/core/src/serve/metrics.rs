//! Serving metrics: the per-request stage taxonomy and the
//! point-in-time snapshot the `metrics` protocol command and `mbssl
//! top` consume (DESIGN.md §17).
//!
//! The snapshot renders two ways from one struct: [`MetricsSnapshot::to_json`]
//! (schema `mbssl.serve.metrics/1`, the machine interface `mbssl top`
//! and the CI validator parse) and [`MetricsSnapshot::to_prometheus`]
//! (the standard text exposition format, so a scraper can sit in front
//! of a snapshot file or a future socket transport unchanged).

use mbssl_telemetry::Histogram;

use super::server::ServeStats;

/// The serve pipeline stages, in request order (DESIGN.md §17). Stage
/// names are the identifiers used in snapshot JSON keys, Prometheus
/// `stage` labels, and tail-sample records; they mirror the
/// `serve.<stage>` span vocabulary where a span exists for the stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Queue wait: submit → the drain that picked the request up.
    Queue = 0,
    /// Engine/session snapshot + interest-cache resolve (`serve.resolve`).
    Resolve = 1,
    /// Batched encoder forwards for cache misses (`serve.forward`).
    Forward = 2,
    /// Catalog ranking — ANN probe + candidate re-rank or exhaustive
    /// scoring (`serve.rank`).
    Rank = 3,
    /// Re-rank chain application (`serve.rerank`).
    Rerank = 4,
    /// Reply delivery to the submitter's channel.
    Reply = 5,
    /// End to end: submit → reply sent.
    Total = 6,
}

/// Number of stages (length of [`Stage::ALL`]).
pub const NUM_STAGES: usize = 7;

impl Stage {
    /// Every stage, in pipeline order — indexes match `ServeStats::stages`.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::Queue,
        Stage::Resolve,
        Stage::Forward,
        Stage::Rank,
        Stage::Rerank,
        Stage::Reply,
        Stage::Total,
    ];

    /// The stage identifier used in snapshots, labels, and tail samples.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Resolve => "resolve",
            Stage::Forward => "forward",
            Stage::Rank => "rank",
            Stage::Rerank => "rerank",
            Stage::Reply => "reply",
            Stage::Total => "total",
        }
    }
}

/// Schema tag stamped into every JSON snapshot; bump on breaking layout
/// changes.
pub const METRICS_SCHEMA: &str = "mbssl.serve.metrics/1";

/// A point-in-time copy of everything the server knows about itself:
/// counters, gauges, the batch-size histogram, and one latency
/// histogram per [`Stage`]. Produced by `Server::metrics_snapshot`.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Wall-clock capture time (ms since the Unix epoch).
    pub unix_time_ms: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Current engine epoch (bumped by every hot-swap).
    pub epoch: u64,
    /// Requests enqueued but not yet drained at capture time.
    pub queue_depth: u64,
    /// Users with at least one session event in the store.
    pub sessions: u64,
    /// The `MBSSL_ANN_BUDGET_US` budget, if armed.
    pub ann_budget_us: Option<u64>,
    /// Integer EWMA of per-request ANN ranking time in µs (0 = no
    /// sample yet).
    pub ann_ewma_us: u64,
    /// Whether the EWMA currently exceeds the budget (the degradation
    /// policy would shrink the next batch's probe width).
    pub ann_degraded_now: bool,
    /// Counters + batch/stage histograms at capture time.
    pub stats: ServeStats,
}

fn push_hist_json(out: &mut String, h: &Histogram) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
    ));
    for (i, b) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{},{}]", b.lower, b.upper, b.count));
    }
    out.push_str("]}");
}

impl MetricsSnapshot {
    /// One-line JSON rendering (schema [`METRICS_SCHEMA`]). Latency
    /// histograms are in nanoseconds; buckets are `[lower, upper,
    /// count]` triples over the non-empty buckets only.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "{{\"schema\":\"{}\",\"unix_time_ms\":{},\"uptime_ms\":{},\"epoch\":{},\"queue_depth\":{},\"sessions\":{}",
            METRICS_SCHEMA, self.unix_time_ms, self.uptime_ms, self.epoch, self.queue_depth, self.sessions,
        );
        out.push_str(&format!(
            ",\"counters\":{{\"requests\":{},\"batches\":{},\"cache_hits\":{},\"cache_misses\":{},\"ann_degraded\":{},\"swaps\":{},\"tail_sampled\":{}}}",
            s.requests, s.batches, s.cache_hits, s.cache_misses, s.ann_degraded, s.swaps, s.tail_sampled,
        ));
        out.push_str(&format!(
            ",\"cache_hit_rate\":{},\"mean_batch\":{}",
            s.cache_hit_rate(),
            s.mean_batch()
        ));
        match self.ann_budget_us {
            Some(b) => out.push_str(&format!(",\"ann_budget_us\":{b}")),
            None => out.push_str(",\"ann_budget_us\":null"),
        }
        out.push_str(&format!(
            ",\"ann_ewma_us\":{},\"ann_degraded_now\":{}",
            self.ann_ewma_us, self.ann_degraded_now
        ));
        out.push_str(",\"batch\":");
        push_hist_json(&mut out, &s.batch);
        out.push_str(",\"stages\":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", stage.name()));
            push_hist_json(&mut out, &s.stages[*stage as usize]);
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition (one scrape's worth). Stage durations
    /// are exported in seconds per convention; bucket `le` bounds are
    /// the histogram's non-empty bucket upper bounds plus `+Inf`.
    pub fn to_prometheus(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter("mbssl_serve_requests_total", "Requests served.", s.requests);
        counter("mbssl_serve_batches_total", "Micro-batches executed.", s.batches);
        counter("mbssl_serve_cache_hits_total", "Interest-cache hits.", s.cache_hits);
        counter("mbssl_serve_cache_misses_total", "Interest-cache misses.", s.cache_misses);
        counter(
            "mbssl_serve_ann_degraded_total",
            "Requests served with a budget-degraded probe width.",
            s.ann_degraded,
        );
        counter("mbssl_serve_engine_swaps_total", "Checkpoint hot-swaps.", s.swaps);
        counter(
            "mbssl_serve_tail_sampled_total",
            "Slow/sampled requests written to the tail log.",
            s.tail_sampled,
        );
        let mut gauge = |name: &str, help: &str, v: f64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge("mbssl_serve_queue_depth", "Requests enqueued but not drained.", self.queue_depth as f64);
        gauge("mbssl_serve_engine_epoch", "Current engine epoch.", self.epoch as f64);
        gauge("mbssl_serve_sessions", "Users in the session store.", self.sessions as f64);
        gauge("mbssl_serve_cache_hit_rate", "Cache hits / requests.", s.cache_hit_rate());
        gauge("mbssl_serve_ann_ewma_us", "EWMA of per-request ANN time (us).", self.ann_ewma_us as f64);
        if let Some(b) = self.ann_budget_us {
            gauge("mbssl_serve_ann_budget_us", "Armed ANN latency budget (us).", b as f64);
        }
        gauge(
            "mbssl_serve_ann_degraded_now",
            "1 when the ANN EWMA currently exceeds the budget.",
            if self.ann_degraded_now { 1.0 } else { 0.0 },
        );

        out.push_str("# HELP mbssl_serve_stage_duration_seconds Per-stage request latency.\n");
        out.push_str("# TYPE mbssl_serve_stage_duration_seconds histogram\n");
        for stage in Stage::ALL {
            let h = &s.stages[stage as usize];
            let name = stage.name();
            let mut cum = 0u64;
            for b in h.nonzero_buckets() {
                cum += b.count;
                out.push_str(&format!(
                    "mbssl_serve_stage_duration_seconds_bucket{{stage=\"{name}\",le=\"{}\"}} {cum}\n",
                    b.upper as f64 / 1e9
                ));
            }
            out.push_str(&format!(
                "mbssl_serve_stage_duration_seconds_bucket{{stage=\"{name}\",le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!(
                "mbssl_serve_stage_duration_seconds_sum{{stage=\"{name}\"}} {}\n",
                h.sum() as f64 / 1e9
            ));
            out.push_str(&format!(
                "mbssl_serve_stage_duration_seconds_count{{stage=\"{name}\"}} {}\n",
                h.count()
            ));
        }

        out.push_str("# HELP mbssl_serve_batch_size Requests per executed micro-batch.\n");
        out.push_str("# TYPE mbssl_serve_batch_size histogram\n");
        let mut cum = 0u64;
        for b in s.batch.nonzero_buckets() {
            cum += b.count;
            out.push_str(&format!(
                "mbssl_serve_batch_size_bucket{{le=\"{}\"}} {cum}\n",
                b.upper.saturating_sub(1)
            ));
        }
        out.push_str(&format!(
            "mbssl_serve_batch_size_bucket{{le=\"+Inf\"}} {}\n",
            s.batch.count()
        ));
        out.push_str(&format!("mbssl_serve_batch_size_sum {}\n", s.batch.sum()));
        out.push_str(&format!("mbssl_serve_batch_size_count {}\n", s.batch.count()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_telemetry::Histogram;

    fn snapshot_fixture() -> MetricsSnapshot {
        let mut batch = Histogram::new();
        batch.record(4);
        batch.record(2);
        let mut stages = vec![Histogram::new(); NUM_STAGES];
        for (i, h) in stages.iter_mut().enumerate() {
            h.record_n(1000 * (i as u64 + 1), 6);
        }
        MetricsSnapshot {
            unix_time_ms: 1_700_000_000_000,
            uptime_ms: 1234,
            epoch: 2,
            queue_depth: 1,
            sessions: 9,
            ann_budget_us: Some(500),
            ann_ewma_us: 120,
            ann_degraded_now: false,
            stats: ServeStats {
                requests: 6,
                batches: 2,
                cache_hits: 4,
                cache_misses: 2,
                ann_degraded: 0,
                swaps: 2,
                tail_sampled: 1,
                batch,
                stages,
            },
        }
    }

    #[test]
    fn json_snapshot_is_schema_complete() {
        let json = snapshot_fixture().to_json();
        for key in [
            "\"schema\":\"mbssl.serve.metrics/1\"",
            "\"unix_time_ms\":",
            "\"uptime_ms\":1234",
            "\"epoch\":2",
            "\"queue_depth\":1",
            "\"sessions\":9",
            "\"requests\":6",
            "\"tail_sampled\":1",
            "\"cache_hit_rate\":",
            "\"ann_budget_us\":500",
            "\"batch\":{",
            "\"queue\":{",
            "\"total\":{",
            "\"p99\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Every stage's histogram counts every request.
        for stage in Stage::ALL {
            assert!(json.contains(&format!("\"{}\":{{\"count\":6", stage.name())), "{json}");
        }
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = snapshot_fixture().to_prometheus();
        assert!(text.contains("mbssl_serve_requests_total 6"));
        assert!(text.contains("# TYPE mbssl_serve_stage_duration_seconds histogram"));
        for stage in Stage::ALL {
            assert!(text.contains(&format!(
                "mbssl_serve_stage_duration_seconds_count{{stage=\"{}\"}} 6",
                stage.name()
            )));
            assert!(text.contains(&format!(
                "mbssl_serve_stage_duration_seconds_bucket{{stage=\"{}\",le=\"+Inf\"}} 6",
                stage.name()
            )));
        }
        // Every line is either a comment or `name{labels} value` /
        // `name value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .map(|(metric, value)| {
                            !metric.is_empty() && value.parse::<f64>().is_ok()
                        })
                        .unwrap_or(false),
                "malformed exposition line: {line}"
            );
        }
    }
}
