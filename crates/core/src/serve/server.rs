//! The micro-batched request engine (DESIGN.md §15).
//!
//! Worker threads loop on [`BatchQueue::drain_into`], turning whatever
//! one drain hands them into:
//!
//! 1. **one session snapshot pass** (per-user shard locks only),
//! 2. **one batched encoder forward per history-length group** for every
//!    cache miss (`serve.forward` span) — grouping by truncated length is
//!    what keeps batched rows bit-identical to solo forwards, see
//!    [`InferenceModel::encode_interests`],
//! 3. **one catalog-ranking call** for the whole batch
//!    ([`InferenceModel::rank_from_interests`]: single arena rental, one
//!    fused GEMM on the exhaustive path, arena-scratch probes on the ANN
//!    path),
//! 4. the re-rank chain and the per-request response sends
//!    (`serve.rerank` span).
//!
//! The checkpoint hot-swap is an `ArcSwap`-style epoch pointer: readers
//! clone an `Arc<EngineEpoch>` under a briefly-held `RwLock` read guard,
//! [`Server::swap_engine`] replaces it under the write guard and bumps
//! the epoch. In-flight batches keep serving on their cloned `Arc`, so
//! the old engine drains gracefully — it is freed when the last batch
//! holding it finishes. Session caches are epoch-keyed, so a swap lazily
//! invalidates every cached encoding without walking the store.
//!
//! `MBSSL_ANN_BUDGET_US` arms the probe-degradation policy: an integer
//! EWMA tracks per-request ANN time, and when it exceeds the budget —
//! or the queue backs up past one full batch — `nprobe` shrinks
//! proportionally for the next batch (never below 1), counted through
//! the `serve.ann_degraded` counter. Recall degrades; latency holds.

use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mbssl_data::{Behavior, ItemId, Sequence, UserId};
use mbssl_telemetry as telemetry;

use crate::infer::{CatalogQuery, InferenceModel};
use crate::recommender::Recommendation;

use super::batcher::BatchQueue;
use super::rerank::{RerankChain, RerankContext};
use super::session::{SessionStore, UserSnapshot};

/// Server tuning, read from `MBSSL_SERVE_*` by [`ServeConfig::from_env`]
/// or set directly (tests, `exp_serve`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest micro-batch one drain may collect (`MBSSL_SERVE_BATCH`,
    /// default 16). 1 disables cross-request batching.
    pub max_batch: usize,
    /// Straggler window after the first job of a batch
    /// (`MBSSL_SERVE_WAIT_US`, default 200 µs). Zero drains only what is
    /// already queued.
    pub wait: Duration,
    /// Worker threads (`MBSSL_SERVE_WORKERS`, default 2 — each forward
    /// already fans out over the tensor worker pool, so a few batch
    /// pipelines saturate the cores).
    pub workers: usize,
    /// Bounded queue capacity (`MBSSL_SERVE_QUEUE`, default
    /// `4 × max_batch`, at least 64).
    pub queue_capacity: usize,
    /// Per-request ANN latency budget in µs (`MBSSL_ANN_BUDGET_US`,
    /// default unset = never degrade).
    pub ann_budget_us: Option<u64>,
    /// Per-user interest cache (`MBSSL_SERVE_CACHE`, default on; `off`
    /// re-encodes every request — the honest setting for encoder
    /// throughput measurements).
    pub cache: bool,
    /// Hard-exclude already-seen items at retrieval (the
    /// `recommend_top_n` contract). [`Server::start`] turns this off
    /// automatically when the chain has a `seen` stage, which demotes
    /// instead of banning.
    pub exclude_seen: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 16,
            wait: Duration::from_micros(200),
            workers: 2,
            queue_capacity: 64,
            ann_budget_us: None,
            cache: true,
            exclude_seen: true,
        }
    }
}

impl ServeConfig {
    /// Reads the `MBSSL_SERVE_BATCH` / `MBSSL_SERVE_WAIT_US` /
    /// `MBSSL_SERVE_WORKERS` / `MBSSL_SERVE_QUEUE` /
    /// `MBSSL_ANN_BUDGET_US` / `MBSSL_SERVE_CACHE` environment (reading
    /// live, not cached — the server is constructed once per process).
    pub fn from_env() -> ServeConfig {
        let parse = |name: &str| -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        };
        let max_batch = parse("MBSSL_SERVE_BATCH").map(|v| v.max(1) as usize).unwrap_or(16);
        ServeConfig {
            max_batch,
            wait: Duration::from_micros(parse("MBSSL_SERVE_WAIT_US").unwrap_or(200)),
            workers: parse("MBSSL_SERVE_WORKERS").map(|v| v.max(1) as usize).unwrap_or(2),
            queue_capacity: parse("MBSSL_SERVE_QUEUE")
                .map(|v| v.max(1) as usize)
                .unwrap_or((4 * max_batch).max(64)),
            ann_budget_us: parse("MBSSL_ANN_BUDGET_US"),
            cache: !matches!(
                std::env::var("MBSSL_SERVE_CACHE").as_deref(),
                Ok("off") | Ok("0") | Ok("none")
            ),
            exclude_seen: true,
        }
    }
}

/// Why a submission failed.
#[derive(Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or a worker panicked mid-request).
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One served recommendation response.
#[derive(Debug)]
pub struct ServeReply {
    /// The ranked recommendations.
    pub recs: Vec<Recommendation>,
    /// How many requests shared this request's micro-batch.
    pub batch_size: usize,
    /// Whether the user's cached encoding was reused (no forward).
    pub cache_hit: bool,
    /// Whether the ANN probe width was degraded under the latency budget.
    pub degraded: bool,
    /// Engine epoch that served this request.
    pub epoch: u64,
}

struct ServeJob {
    user: UserId,
    n: usize,
    tx: mpsc::SyncSender<ServeReply>,
}

/// A compiled engine pinned to a swap epoch.
struct EngineEpoch {
    engine: InferenceModel,
    epoch: u64,
}

/// Monotone counters + the batch-size histogram, shared by all workers.
struct ServeStatsInner {
    requests: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    ann_degraded: AtomicU64,
    swaps: AtomicU64,
    /// `batch_hist[s]` = batches that served exactly `s` requests
    /// (index 0 unused; sized `max_batch + 1`).
    batch_hist: Box<[AtomicU64]>,
}

/// A point-in-time copy of the server counters.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests served.
    pub requests: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests answered from the per-user interest cache.
    pub cache_hits: u64,
    /// Requests that needed an encoder forward.
    pub cache_misses: u64,
    /// Requests served with a budget-degraded probe width.
    pub ann_degraded: u64,
    /// Checkpoint hot-swaps performed.
    pub swaps: u64,
    /// `batch_hist[s]` = batches of size `s` (index 0 unused).
    pub batch_hist: Vec<u64>,
}

impl ServeStats {
    /// Mean requests per micro-batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Cache hits / requests.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }
}

struct ServerInner {
    engine: RwLock<Arc<EngineEpoch>>,
    epoch: AtomicU64,
    store: Arc<SessionStore>,
    chain: RerankChain,
    config: ServeConfig,
    exclude_seen: bool,
    queue: BatchQueue<ServeJob>,
    stats: ServeStatsInner,
    /// Integer EWMA of per-request ANN ranking time in µs (0 = no sample
    /// yet); `new = (7·old + sample) / 8`.
    ann_ewma_us: AtomicU64,
}

/// The long-lived serving engine. Construct with [`Server::start`];
/// worker threads run until [`Server::shutdown`].
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Compiles nothing — takes an already-compiled engine (with any
    /// index attached), a session store, a re-rank chain, and the tuning
    /// config, and spawns the worker threads.
    pub fn start(
        engine: InferenceModel,
        store: Arc<SessionStore>,
        chain: RerankChain,
        config: ServeConfig,
    ) -> Server {
        assert_eq!(
            engine.num_items(),
            store.num_items(),
            "engine and session store disagree on the catalog size"
        );
        // A `seen` chain stage wants repeats demoted, not banned: soft
        // penalty replaces the hard exclude.
        let exclude_seen = config.exclude_seen && !chain.has_stage("seen");
        let max_batch = config.max_batch.max(1);
        let inner = Arc::new(ServerInner {
            engine: RwLock::new(Arc::new(EngineEpoch { engine, epoch: 0 })),
            epoch: AtomicU64::new(0),
            store,
            chain,
            exclude_seen,
            queue: BatchQueue::new(config.queue_capacity.max(max_batch)),
            stats: ServeStatsInner {
                requests: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                ann_degraded: AtomicU64::new(0),
                swaps: AtomicU64::new(0),
                batch_hist: (0..max_batch + 1)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            },
            ann_ewma_us: AtomicU64::new(0),
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mbssl-serve-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawning serve worker")
            })
            .collect();
        Server {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Ranks the catalog for `user`, blocking until a worker serves the
    /// micro-batch the request lands in. Callable from any number of
    /// threads; concurrent callers are what batching feeds on.
    pub fn submit(&self, user: UserId, n: usize) -> Result<ServeReply, ServeError> {
        assert!(n > 0);
        let (tx, rx) = mpsc::sync_channel(1);
        self.inner
            .queue
            .push(ServeJob { user, n, tx })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Appends one event to `user`'s session (invalidating only that
    /// user's cached encoding).
    pub fn ingest(&self, user: UserId, item: ItemId, behavior: Behavior) -> Result<(), String> {
        self.inner.store.ingest(user, item, behavior)
    }

    /// Hot-swaps the serving engine. The new engine serves every batch
    /// that snapshots after the swap; in-flight batches finish on the old
    /// one, which is freed when the last of them drops its `Arc` — a
    /// graceful drain with no barrier. Returns the new epoch.
    pub fn swap_engine(&self, engine: InferenceModel) -> u64 {
        assert_eq!(
            engine.num_items(),
            self.inner.store.num_items(),
            "swapped engine disagrees with the session store on catalog size"
        );
        let epoch = self.inner.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        *self.inner.engine.write().unwrap() = Arc::new(EngineEpoch { engine, epoch });
        self.inner.stats.swaps.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("serve.swap", 1);
        epoch
    }

    /// The shared session store.
    pub fn store(&self) -> &Arc<SessionStore> {
        &self.inner.store
    }

    /// Pending (not yet drained) requests.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        ServeStats {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            ann_degraded: s.ann_degraded.load(Ordering::Relaxed),
            swaps: s.swaps.load(Ordering::Relaxed),
            batch_hist: s.batch_hist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Closes the queue, serves every already-enqueued request, joins the
    /// workers, and returns the final counters.
    pub fn shutdown(self) -> ServeStats {
        self.inner.queue.close();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for handle in workers {
            let _ = handle.join();
        }
        self.stats()
    }
}

fn worker_loop(inner: Arc<ServerInner>) {
    let mut jobs: Vec<ServeJob> = Vec::with_capacity(inner.config.max_batch);
    loop {
        jobs.clear();
        let alive = {
            let _wait_sp = telemetry::span("serve.wait");
            inner
                .queue
                .drain_into(inner.config.max_batch.max(1), inner.config.wait, &mut jobs)
        };
        if !alive {
            break;
        }
        serve_batch(&inner, &mut jobs);
    }
}

/// Serves one drained micro-batch end to end. See the module docs for
/// the four phases; every span here is hierarchical under `serve.batch`.
fn serve_batch(inner: &ServerInner, jobs: &mut Vec<ServeJob>) {
    let r = jobs.len();
    debug_assert!(r > 0);
    let mut batch_sp = telemetry::span("serve.batch");
    batch_sp.add_bytes(r as u64);
    telemetry::gauge_set("serve.queue_depth", inner.queue.len() as u64);
    let stats = &inner.stats;
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.requests.fetch_add(r as u64, Ordering::Relaxed);
    stats.batch_hist[r.min(stats.batch_hist.len() - 1)].fetch_add(1, Ordering::Relaxed);

    // Engine snapshot: in-flight batches pin their epoch's engine.
    let snap = inner.engine.read().unwrap().clone();
    let engine = &snap.engine;
    let epoch = snap.epoch;
    let (k, d) = (engine.num_interests(), engine.dim());

    // Phase 1: session snapshots (shard locks only; encoding and ranking
    // below run lock-free on the copies).
    let sessions: Vec<UserSnapshot> = jobs
        .iter()
        .map(|job| inner.store.snapshot(job.user, epoch))
        .collect();

    // Phase 2: resolve cached encodings; group the misses by truncated
    // history length and run ONE batched forward per group (same-length
    // grouping is the bit-identity condition — see `encode_interests`).
    let mut z_all = vec![0.0f32; r * k * d];
    let mut hit = vec![false; r];
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    let cache_on = inner.config.cache;
    for (i, session) in sessions.iter().enumerate() {
        match session.cached.as_ref().filter(|_| cache_on) {
            Some(z) => {
                z_all[i * k * d..][..k * d].copy_from_slice(z);
                hit[i] = true;
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                let len = session.history.len().min(engine.max_seq_len());
                groups.entry(len).or_default().push(i);
                stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    {
        let mut fwd_sp = telemetry::span("serve.forward");
        let mut lens: Vec<usize> = groups.keys().copied().collect();
        lens.sort_unstable();
        for len in lens {
            let idxs = &groups[&len];
            let histories: Vec<&Sequence> =
                idxs.iter().map(|&i| &sessions[i].history).collect();
            fwd_sp.add_bytes((histories.len() * len * d * std::mem::size_of::<f32>()) as u64);
            let z = engine.encode_interests(&histories);
            for (gi, &i) in idxs.iter().enumerate() {
                let row = &z[gi * k * d..][..k * d];
                z_all[i * k * d..][..k * d].copy_from_slice(row);
                if cache_on {
                    inner
                        .store
                        .store_interests(jobs[i].user, sessions[i].version, epoch, row);
                }
            }
        }
    }

    // Phase 3: probe-width policy, then one ranking call for the batch.
    let (nprobe_override, degraded) = effective_nprobe(inner, engine.attached_nprobe());
    if degraded {
        stats.ann_degraded.fetch_add(r as u64, Ordering::Relaxed);
        telemetry::counter_add("serve.ann_degraded", r as u64);
    }
    static NO_EXCLUDE: std::sync::OnceLock<HashSet<ItemId>> = std::sync::OnceLock::new();
    let no_exclude = NO_EXCLUDE.get_or_init(HashSet::new);
    let overscan = inner.chain.overscan();
    let num_items = engine.num_items();
    let queries: Vec<CatalogQuery<'_>> = jobs
        .iter()
        .zip(sessions.iter())
        .map(|(job, session)| CatalogQuery {
            n: (job.n * overscan).min(num_items),
            exclude: if inner.exclude_seen {
                &session.seen
            } else {
                no_exclude
            },
        })
        .collect();
    let rank_started = Instant::now();
    let ranked = engine.rank_from_interests(&z_all, &queries, num_items, nprobe_override);
    if engine.attached_nprobe().is_some() && ranked.iter().any(|q| q.used_ann) {
        observe_ann_us(inner, rank_started.elapsed().as_micros() as u64 / r as u64);
    }

    // Phase 4: re-rank chain + responses.
    let mut rr_sp = telemetry::span("serve.rerank");
    rr_sp.add_bytes(r as u64);
    let popularity = |item: ItemId| inner.store.popularity(item);
    for (i, ((job, session), outcome)) in
        jobs.iter().zip(sessions.iter()).zip(ranked).enumerate()
    {
        let mut recs = outcome.recs;
        if !inner.chain.is_empty() {
            let ctx = RerankContext {
                seen: &session.seen,
                popularity: &popularity,
            };
            inner.chain.apply(&ctx, &mut recs);
            recs.truncate(job.n);
        }
        // A dropped receiver (submitter gone) is not an error here.
        let _ = job.tx.send(ServeReply {
            recs,
            batch_size: r,
            cache_hit: hit[i],
            degraded,
            epoch,
        });
    }
}

/// The `MBSSL_ANN_BUDGET_US` policy: shrink the probe width
/// proportionally when the ANN EWMA exceeds the budget, and halve it
/// when the queue backs up past one full batch. Returns `(override,
/// degraded)` — `None` means "use the attached width".
fn effective_nprobe(inner: &ServerInner, base: Option<usize>) -> (Option<usize>, bool) {
    let (Some(base), Some(budget)) = (base, inner.config.ann_budget_us) else {
        return (None, false);
    };
    let mut eff = base;
    let ewma = inner.ann_ewma_us.load(Ordering::Relaxed);
    if ewma > budget {
        eff = ((base as u64 * budget / ewma) as usize).max(1);
    }
    if inner.queue.len() > inner.config.max_batch {
        eff = (eff / 2).max(1);
    }
    if eff < base {
        (Some(eff), true)
    } else {
        (None, false)
    }
}

fn observe_ann_us(inner: &ServerInner, sample_us: u64) {
    let old = inner.ann_ewma_us.load(Ordering::Relaxed);
    let new = if old == 0 {
        sample_us.max(1)
    } else {
        (old * 7 + sample_us) / 8
    };
    inner.ann_ewma_us.store(new.max(1), Ordering::Relaxed);
}
