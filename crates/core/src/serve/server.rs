//! The micro-batched request engine (DESIGN.md §15).
//!
//! Worker threads loop on [`BatchQueue::drain_into`], turning whatever
//! one drain hands them into:
//!
//! 1. **one session snapshot pass** (per-user shard locks only),
//! 2. **one batched encoder forward per history-length group** for every
//!    cache miss (`serve.forward` span) — grouping by truncated length is
//!    what keeps batched rows bit-identical to solo forwards, see
//!    [`InferenceModel::encode_interests`],
//! 3. **one catalog-ranking call** for the whole batch
//!    ([`InferenceModel::rank_from_interests`]: single arena rental, one
//!    fused GEMM on the exhaustive path, arena-scratch probes on the ANN
//!    path),
//! 4. the re-rank chain and the per-request response sends
//!    (`serve.rerank` span).
//!
//! The checkpoint hot-swap is an `ArcSwap`-style epoch pointer: readers
//! clone an `Arc<EngineEpoch>` under a briefly-held `RwLock` read guard,
//! [`Server::swap_engine`] replaces it under the write guard and bumps
//! the epoch. In-flight batches keep serving on their cloned `Arc`, so
//! the old engine drains gracefully — it is freed when the last batch
//! holding it finishes. Session caches are epoch-keyed, so a swap lazily
//! invalidates every cached encoding without walking the store.
//!
//! `MBSSL_ANN_BUDGET_US` arms the probe-degradation policy: an integer
//! EWMA tracks per-request ANN time, and when it exceeds the budget —
//! or the queue backs up past one full batch — `nprobe` shrinks
//! proportionally for the next batch (never below 1), counted through
//! the `serve.ann_degraded` counter. Recall degrades; latency holds.

use std::collections::HashMap;
use std::collections::HashSet;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use mbssl_data::{Behavior, ItemId, Sequence, UserId};
use mbssl_telemetry as telemetry;
use telemetry::{Histogram, LatencyHistogram};

use crate::infer::{CatalogQuery, InferenceModel};
use crate::recommender::Recommendation;

use super::batcher::BatchQueue;
use super::metrics::{MetricsSnapshot, Stage, NUM_STAGES};
use super::rerank::{RerankChain, RerankContext};
use super::session::{SessionStore, UserSnapshot};

/// Server tuning, read from `MBSSL_SERVE_*` by [`ServeConfig::from_env`]
/// or set directly (tests, `exp_serve`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest micro-batch one drain may collect (`MBSSL_SERVE_BATCH`,
    /// default 16). 1 disables cross-request batching.
    pub max_batch: usize,
    /// Straggler window after the first job of a batch
    /// (`MBSSL_SERVE_WAIT_US`, default 200 µs). Zero drains only what is
    /// already queued.
    pub wait: Duration,
    /// Worker threads (`MBSSL_SERVE_WORKERS`, default 2 — each forward
    /// already fans out over the tensor worker pool, so a few batch
    /// pipelines saturate the cores).
    pub workers: usize,
    /// Bounded queue capacity (`MBSSL_SERVE_QUEUE`, default
    /// `4 × max_batch`, at least 64).
    pub queue_capacity: usize,
    /// Per-request ANN latency budget in µs (`MBSSL_ANN_BUDGET_US`,
    /// default unset = never degrade).
    pub ann_budget_us: Option<u64>,
    /// Per-user interest cache (`MBSSL_SERVE_CACHE`, default on; `off`
    /// re-encodes every request — the honest setting for encoder
    /// throughput measurements).
    pub cache: bool,
    /// Hard-exclude already-seen items at retrieval (the
    /// `recommend_top_n` contract). [`Server::start`] turns this off
    /// automatically when the chain has a `seen` stage, which demotes
    /// instead of banning.
    pub exclude_seen: bool,
    /// Tail-sampling threshold: requests with an end-to-end latency at
    /// or above this many µs emit a structured JSONL record with their
    /// stage timings (`MBSSL_SERVE_SLOW_US`, default unset = off).
    pub slow_us: Option<u64>,
    /// Unconditional 1-in-N tail sampling: every Nth request emits a
    /// record regardless of latency (`MBSSL_SERVE_SAMPLE`, default
    /// unset = off). Combines with `slow_us` (either trigger fires).
    pub sample_every: Option<u64>,
    /// Where tail samples go: a JSONL file (appended; from
    /// `$MBSSL_RUN_DIR/serve_slow.jsonl` when the run ledger is
    /// active), or stderr when `None`.
    pub tail_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 16,
            wait: Duration::from_micros(200),
            workers: 2,
            queue_capacity: 64,
            ann_budget_us: None,
            cache: true,
            exclude_seen: true,
            slow_us: None,
            sample_every: None,
            tail_log: None,
        }
    }
}

impl ServeConfig {
    /// Reads the `MBSSL_SERVE_BATCH` / `MBSSL_SERVE_WAIT_US` /
    /// `MBSSL_SERVE_WORKERS` / `MBSSL_SERVE_QUEUE` /
    /// `MBSSL_ANN_BUDGET_US` / `MBSSL_SERVE_CACHE` /
    /// `MBSSL_SERVE_SLOW_US` / `MBSSL_SERVE_SAMPLE` environment (reading
    /// live, not cached — the server is constructed once per process).
    /// When `MBSSL_RUN_DIR` is set, tail samples append to
    /// `<run_dir>/serve_slow.jsonl` next to the run ledger; otherwise
    /// they go to stderr.
    pub fn from_env() -> ServeConfig {
        let parse = |name: &str| -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        };
        let max_batch = parse("MBSSL_SERVE_BATCH").map(|v| v.max(1) as usize).unwrap_or(16);
        ServeConfig {
            max_batch,
            wait: Duration::from_micros(parse("MBSSL_SERVE_WAIT_US").unwrap_or(200)),
            workers: parse("MBSSL_SERVE_WORKERS").map(|v| v.max(1) as usize).unwrap_or(2),
            queue_capacity: parse("MBSSL_SERVE_QUEUE")
                .map(|v| v.max(1) as usize)
                .unwrap_or((4 * max_batch).max(64)),
            ann_budget_us: parse("MBSSL_ANN_BUDGET_US"),
            cache: !matches!(
                std::env::var("MBSSL_SERVE_CACHE").as_deref(),
                Ok("off") | Ok("0") | Ok("none")
            ),
            exclude_seen: true,
            slow_us: parse("MBSSL_SERVE_SLOW_US"),
            sample_every: parse("MBSSL_SERVE_SAMPLE").filter(|&n| n > 0),
            tail_log: std::env::var("MBSSL_RUN_DIR")
                .ok()
                .filter(|d| !d.is_empty())
                .map(|d| PathBuf::from(d).join("serve_slow.jsonl")),
        }
    }
}

/// Why a submission failed.
#[derive(Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or a worker panicked mid-request).
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One served recommendation response.
#[derive(Debug)]
pub struct ServeReply {
    /// The ranked recommendations.
    pub recs: Vec<Recommendation>,
    /// How many requests shared this request's micro-batch.
    pub batch_size: usize,
    /// Whether the user's cached encoding was reused (no forward).
    pub cache_hit: bool,
    /// Whether the ANN probe width was degraded under the latency budget.
    pub degraded: bool,
    /// Engine epoch that served this request.
    pub epoch: u64,
}

struct ServeJob {
    user: UserId,
    n: usize,
    tx: mpsc::SyncSender<ServeReply>,
    /// When `submit` pushed the job — the start of its queue stage and
    /// of its end-to-end (`total`) latency.
    enqueued: Instant,
}

/// A compiled engine pinned to a swap epoch.
struct EngineEpoch {
    engine: InferenceModel,
    epoch: u64,
}

/// Monotone counters + the batch-size and per-stage latency
/// histograms, shared by all workers. The histograms are **always on**
/// (independent of `MBSSL_TRACE`): the `metrics` snapshot and
/// `exp_serve` read them in untraced runs, and a record is a handful of
/// relaxed atomics — the span registry routing stays behind
/// `telemetry::enabled()` as before.
struct ServeStatsInner {
    requests: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    ann_degraded: AtomicU64,
    swaps: AtomicU64,
    tail_sampled: AtomicU64,
    /// Distribution of requests-per-batch (values ≤ 32 land in exact
    /// single-integer buckets, which covers the default `max_batch`).
    batch_hist: LatencyHistogram,
    /// One latency histogram per [`Stage`], indexed by `Stage as usize`;
    /// values are nanoseconds. Per-batch stages record once per request
    /// in the batch, so every stage's `count` equals `requests`.
    stages: [LatencyHistogram; NUM_STAGES],
    /// Monotone request sequence for 1-in-N tail sampling.
    sample_seq: AtomicU64,
}

/// A point-in-time copy of the server counters and histograms.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests served.
    pub requests: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests answered from the per-user interest cache.
    pub cache_hits: u64,
    /// Requests that needed an encoder forward.
    pub cache_misses: u64,
    /// Requests served with a budget-degraded probe width.
    pub ann_degraded: u64,
    /// Checkpoint hot-swaps performed.
    pub swaps: u64,
    /// Slow/sampled requests written to the tail log.
    pub tail_sampled: u64,
    /// Distribution of requests-per-batch (exact for sizes ≤ 32).
    pub batch: Histogram,
    /// Per-[`Stage`] latency histograms in nanoseconds, indexed by
    /// `Stage as usize` (see [`ServeStats::stage`]). Every stage's
    /// count equals `requests`: per-batch stages (resolve, forward,
    /// rank) attribute their duration once per request in the batch.
    pub stages: Vec<Histogram>,
}

impl ServeStats {
    /// Mean requests per micro-batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Cache hits / requests.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }

    /// The latency histogram for one pipeline stage (nanoseconds).
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }
}

struct ServerInner {
    engine: RwLock<Arc<EngineEpoch>>,
    epoch: AtomicU64,
    store: Arc<SessionStore>,
    chain: RerankChain,
    config: ServeConfig,
    exclude_seen: bool,
    queue: BatchQueue<ServeJob>,
    stats: ServeStatsInner,
    /// Integer EWMA of per-request ANN ranking time in µs (0 = no sample
    /// yet); `new = (7·old + sample) / 8`.
    ann_ewma_us: AtomicU64,
    /// When the server started (for snapshot uptime).
    started: Instant,
    /// Tail-sample sink, present iff `slow_us` or `sample_every` is set.
    tail: Option<TailSink>,
}

/// Where tail samples are written: a lazily-opened append-mode JSONL
/// file, or stderr when no path is configured.
struct TailSink {
    path: Option<PathBuf>,
    file: Mutex<Option<std::fs::File>>,
}

impl TailSink {
    fn write_line(&self, line: &str) {
        match &self.path {
            Some(path) => {
                let mut guard = self.file.lock().unwrap();
                if guard.is_none() {
                    if let Some(dir) = path.parent() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                    *guard = std::fs::OpenOptions::new().create(true).append(true).open(path).ok();
                }
                if let Some(f) = guard.as_mut() {
                    let _ = writeln!(f, "{line}");
                }
            }
            None => eprintln!("{line}"),
        }
    }
}

/// The long-lived serving engine. Construct with [`Server::start`];
/// worker threads run until [`Server::shutdown`].
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Compiles nothing — takes an already-compiled engine (with any
    /// index attached), a session store, a re-rank chain, and the tuning
    /// config, and spawns the worker threads.
    pub fn start(
        engine: InferenceModel,
        store: Arc<SessionStore>,
        chain: RerankChain,
        config: ServeConfig,
    ) -> Server {
        assert_eq!(
            engine.num_items(),
            store.num_items(),
            "engine and session store disagree on the catalog size"
        );
        // A `seen` chain stage wants repeats demoted, not banned: soft
        // penalty replaces the hard exclude.
        let exclude_seen = config.exclude_seen && !chain.has_stage("seen");
        let max_batch = config.max_batch.max(1);
        let inner = Arc::new(ServerInner {
            engine: RwLock::new(Arc::new(EngineEpoch { engine, epoch: 0 })),
            epoch: AtomicU64::new(0),
            store,
            chain,
            exclude_seen,
            queue: BatchQueue::new(config.queue_capacity.max(max_batch)),
            stats: ServeStatsInner {
                requests: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                ann_degraded: AtomicU64::new(0),
                swaps: AtomicU64::new(0),
                tail_sampled: AtomicU64::new(0),
                batch_hist: LatencyHistogram::new(),
                stages: std::array::from_fn(|_| LatencyHistogram::new()),
                sample_seq: AtomicU64::new(0),
            },
            ann_ewma_us: AtomicU64::new(0),
            started: Instant::now(),
            tail: (config.slow_us.is_some() || config.sample_every.is_some()).then(|| TailSink {
                path: config.tail_log.clone(),
                file: Mutex::new(None),
            }),
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mbssl-serve-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawning serve worker")
            })
            .collect();
        Server {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Ranks the catalog for `user`, blocking until a worker serves the
    /// micro-batch the request lands in. Callable from any number of
    /// threads; concurrent callers are what batching feeds on.
    pub fn submit(&self, user: UserId, n: usize) -> Result<ServeReply, ServeError> {
        assert!(n > 0);
        let (tx, rx) = mpsc::sync_channel(1);
        self.inner
            .queue
            .push(ServeJob { user, n, tx, enqueued: Instant::now() })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Appends one event to `user`'s session (invalidating only that
    /// user's cached encoding).
    pub fn ingest(&self, user: UserId, item: ItemId, behavior: Behavior) -> Result<(), String> {
        self.inner.store.ingest(user, item, behavior)
    }

    /// Hot-swaps the serving engine. The new engine serves every batch
    /// that snapshots after the swap; in-flight batches finish on the old
    /// one, which is freed when the last of them drops its `Arc` — a
    /// graceful drain with no barrier. Returns the new epoch.
    pub fn swap_engine(&self, engine: InferenceModel) -> u64 {
        assert_eq!(
            engine.num_items(),
            self.inner.store.num_items(),
            "swapped engine disagrees with the session store on catalog size"
        );
        let epoch = self.inner.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        *self.inner.engine.write().unwrap() = Arc::new(EngineEpoch { engine, epoch });
        self.inner.stats.swaps.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("serve.swap", 1);
        epoch
    }

    /// The shared session store.
    pub fn store(&self) -> &Arc<SessionStore> {
        &self.inner.store
    }

    /// Pending (not yet drained) requests.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// A point-in-time copy of the counters and histograms.
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        ServeStats {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            ann_degraded: s.ann_degraded.load(Ordering::Relaxed),
            swaps: s.swaps.load(Ordering::Relaxed),
            tail_sampled: s.tail_sampled.load(Ordering::Relaxed),
            batch: s.batch_hist.snapshot(),
            stages: s.stages.iter().map(|h| h.snapshot()).collect(),
        }
    }

    /// A point-in-time [`MetricsSnapshot`] — counters, gauges, the
    /// batch-size histogram, and one latency histogram per [`Stage`] —
    /// for the `metrics` protocol command and `mbssl top`.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        // Per-request stage records land just after the reply send
        // unblocks the submitter, so a snapshot taken immediately after
        // a reply can catch a worker mid-record. Wait briefly for the
        // stage counts to catch up with the request counter — on a
        // quiesced server this makes "every stage covers every replied
        // request" exact; under live load the bounded wait just expires.
        for _ in 0..40 {
            let s = &self.inner.stats;
            let requests = s.requests.load(Ordering::Relaxed);
            if s.stages.iter().all(|h| h.count() >= requests) {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        let ewma = self.inner.ann_ewma_us.load(Ordering::Relaxed);
        let budget = self.inner.config.ann_budget_us;
        MetricsSnapshot {
            unix_time_ms: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            uptime_ms: self.inner.started.elapsed().as_millis() as u64,
            epoch: self.inner.epoch.load(Ordering::SeqCst),
            queue_depth: self.inner.queue.len() as u64,
            sessions: self.inner.store.len() as u64,
            ann_budget_us: budget,
            ann_ewma_us: ewma,
            ann_degraded_now: budget.is_some_and(|b| ewma > b),
            stats: self.stats(),
        }
    }

    /// Closes the queue, serves every already-enqueued request, joins the
    /// workers, and returns the final counters.
    pub fn shutdown(self) -> ServeStats {
        self.inner.queue.close();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for handle in workers {
            let _ = handle.join();
        }
        self.stats()
    }
}

fn worker_loop(inner: Arc<ServerInner>) {
    let mut jobs: Vec<ServeJob> = Vec::with_capacity(inner.config.max_batch);
    loop {
        jobs.clear();
        let alive = {
            let _wait_sp = telemetry::span("serve.wait");
            inner
                .queue
                .drain_into(inner.config.max_batch.max(1), inner.config.wait, &mut jobs)
        };
        if !alive {
            break;
        }
        serve_batch(&inner, &mut jobs);
    }
}

/// Serves one drained micro-batch end to end. See the module docs for
/// the four phases; every span here is hierarchical under `serve.batch`.
///
/// Stage attribution (DESIGN.md §17): batch-level stages (resolve,
/// forward, rank) are timed once per batch and recorded once **per
/// request** (`record_n`), so every stage histogram's count equals the
/// request count; queue, rerank, reply, and total are timed per
/// request. The stage histograms are always on — the telemetry spans
/// remain the only part gated by `MBSSL_TRACE`.
fn serve_batch(inner: &ServerInner, jobs: &mut Vec<ServeJob>) {
    let r = jobs.len();
    debug_assert!(r > 0);
    let drained_at = Instant::now();
    let mut batch_sp = telemetry::span("serve.batch");
    batch_sp.add_bytes(r as u64);
    telemetry::gauge_set("serve.queue_depth", inner.queue.len() as u64);
    let stats = &inner.stats;
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.requests.fetch_add(r as u64, Ordering::Relaxed);
    stats.batch_hist.record(r as u64);
    let queue_ns: Vec<u64> = jobs
        .iter()
        .map(|job| drained_at.saturating_duration_since(job.enqueued).as_nanos() as u64)
        .collect();

    let resolve_sp = telemetry::span("serve.resolve");
    // Engine snapshot: in-flight batches pin their epoch's engine.
    let snap = inner.engine.read().unwrap().clone();
    let engine = &snap.engine;
    let epoch = snap.epoch;
    let (k, d) = (engine.num_interests(), engine.dim());

    // Phase 1: session snapshots (shard locks only; encoding and ranking
    // below run lock-free on the copies).
    let sessions: Vec<UserSnapshot> = jobs
        .iter()
        .map(|job| inner.store.snapshot(job.user, epoch))
        .collect();

    // Phase 2: resolve cached encodings; group the misses by truncated
    // history length and run ONE batched forward per group (same-length
    // grouping is the bit-identity condition — see `encode_interests`).
    let mut z_all = vec![0.0f32; r * k * d];
    let mut hit = vec![false; r];
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    let cache_on = inner.config.cache;
    for (i, session) in sessions.iter().enumerate() {
        match session.cached.as_ref().filter(|_| cache_on) {
            Some(z) => {
                z_all[i * k * d..][..k * d].copy_from_slice(z);
                hit[i] = true;
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                let len = session.history.len().min(engine.max_seq_len());
                groups.entry(len).or_default().push(i);
                stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    drop(resolve_sp);
    let resolved_at = Instant::now();
    {
        let mut fwd_sp = telemetry::span("serve.forward");
        let mut lens: Vec<usize> = groups.keys().copied().collect();
        lens.sort_unstable();
        for len in lens {
            let idxs = &groups[&len];
            let histories: Vec<&Sequence> =
                idxs.iter().map(|&i| &sessions[i].history).collect();
            fwd_sp.add_bytes((histories.len() * len * d * std::mem::size_of::<f32>()) as u64);
            let z = engine.encode_interests(&histories);
            for (gi, &i) in idxs.iter().enumerate() {
                let row = &z[gi * k * d..][..k * d];
                z_all[i * k * d..][..k * d].copy_from_slice(row);
                if cache_on {
                    inner
                        .store
                        .store_interests(jobs[i].user, sessions[i].version, epoch, row);
                }
            }
        }
    }
    let forwarded_at = Instant::now();

    // Phase 3: probe-width policy, then one ranking call for the batch.
    let (nprobe_override, degraded) = effective_nprobe(inner, engine.attached_nprobe());
    if degraded {
        stats.ann_degraded.fetch_add(r as u64, Ordering::Relaxed);
        telemetry::counter_add("serve.ann_degraded", r as u64);
    }
    static NO_EXCLUDE: std::sync::OnceLock<HashSet<ItemId>> = std::sync::OnceLock::new();
    let no_exclude = NO_EXCLUDE.get_or_init(HashSet::new);
    let overscan = inner.chain.overscan();
    let num_items = engine.num_items();
    let queries: Vec<CatalogQuery<'_>> = jobs
        .iter()
        .zip(sessions.iter())
        .map(|(job, session)| CatalogQuery {
            n: (job.n * overscan).min(num_items),
            exclude: if inner.exclude_seen {
                &session.seen
            } else {
                no_exclude
            },
        })
        .collect();
    let rank_started = Instant::now();
    let ranked = {
        let _rank_sp = telemetry::span("serve.rank");
        engine.rank_from_interests(&z_all, &queries, num_items, nprobe_override)
    };
    if engine.attached_nprobe().is_some() && ranked.iter().any(|q| q.used_ann) {
        observe_ann_us(inner, rank_started.elapsed().as_micros() as u64 / r as u64);
    }
    let ranked_at = Instant::now();

    // Batch-level stages: attributed once per request so every stage
    // histogram covers every replied request.
    let n_req = r as u64;
    stats.stages[Stage::Resolve as usize]
        .record_n(resolved_at.duration_since(drained_at).as_nanos() as u64, n_req);
    stats.stages[Stage::Forward as usize]
        .record_n(forwarded_at.duration_since(resolved_at).as_nanos() as u64, n_req);
    stats.stages[Stage::Rank as usize]
        .record_n(ranked_at.duration_since(forwarded_at).as_nanos() as u64, n_req);

    // Phase 4: re-rank chain + responses.
    let mut rr_sp = telemetry::span("serve.rerank");
    rr_sp.add_bytes(r as u64);
    let popularity = |item: ItemId| inner.store.popularity(item);
    for (i, ((job, session), outcome)) in
        jobs.iter().zip(sessions.iter()).zip(ranked).enumerate()
    {
        let apply_started = Instant::now();
        let mut recs = outcome.recs;
        if !inner.chain.is_empty() {
            let ctx = RerankContext {
                seen: &session.seen,
                popularity: &popularity,
            };
            inner.chain.apply(&ctx, &mut recs);
            recs.truncate(job.n);
        }
        let send_started = Instant::now();
        // A dropped receiver (submitter gone) is not an error here.
        let _ = job.tx.send(ServeReply {
            recs,
            batch_size: r,
            cache_hit: hit[i],
            degraded,
            epoch,
        });
        let done = Instant::now();
        let rerank_ns = send_started.duration_since(apply_started).as_nanos() as u64;
        let reply_ns = done.duration_since(send_started).as_nanos() as u64;
        let total_ns = done.saturating_duration_since(job.enqueued).as_nanos() as u64;

        // Tail sampling: slow requests (and an optional 1-in-N sample)
        // emit a structured record with the full stage breakdown. This
        // runs BEFORE the stage-histogram records so that once the stage
        // counts cover a request, its tail record is durable too (the
        // quiescence wait in `metrics_snapshot` relies on that order).
        if let Some(tail) = &inner.tail {
            let sampled = match inner.config.sample_every {
                Some(every) => stats.sample_seq.fetch_add(1, Ordering::Relaxed) % every == 0,
                None => false,
            };
            let slow = inner.config.slow_us.is_some_and(|t| total_ns / 1_000 >= t);
            if slow || sampled {
                stats.tail_sampled.fetch_add(1, Ordering::Relaxed);
                tail.write_line(&tail_record(
                    if slow { "slow" } else { "sample" },
                    job,
                    r,
                    epoch,
                    hit[i],
                    degraded,
                    &[
                        queue_ns[i],
                        resolved_at.duration_since(drained_at).as_nanos() as u64,
                        forwarded_at.duration_since(resolved_at).as_nanos() as u64,
                        ranked_at.duration_since(forwarded_at).as_nanos() as u64,
                        rerank_ns,
                        reply_ns,
                        total_ns,
                    ],
                ));
            }
        }

        stats.stages[Stage::Queue as usize].record(queue_ns[i]);
        stats.stages[Stage::Rerank as usize].record(rerank_ns);
        stats.stages[Stage::Reply as usize].record(reply_ns);
        stats.stages[Stage::Total as usize].record(total_ns);
    }
}

/// The JSONL line for one tail sample (no trailing newline). Stage
/// timings are µs, in [`Stage::ALL`] order; goes to the run ledger
/// (`serve_slow.jsonl`), never into trace files, whose parser rejects
/// unknown record kinds.
fn tail_record(
    reason: &str,
    job: &ServeJob,
    batch_size: usize,
    epoch: u64,
    cache_hit: bool,
    degraded: bool,
    stage_ns: &[u64; NUM_STAGES],
) -> String {
    let unix_time_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut s = format!(
        "{{\"kind\":\"serve_slow\",\"reason\":\"{reason}\",\"unix_time_ms\":{unix_time_ms},\"user\":{},\"n\":{},\"batch_size\":{batch_size},\"epoch\":{epoch},\"cache_hit\":{cache_hit},\"degraded\":{degraded}",
        job.user, job.n,
    );
    for (stage, ns) in Stage::ALL.iter().zip(stage_ns) {
        s.push_str(&format!(",\"{}_us\":{}", stage.name(), ns / 1_000));
    }
    s.push('}');
    s
}

/// The `MBSSL_ANN_BUDGET_US` policy: shrink the probe width
/// proportionally when the ANN EWMA exceeds the budget, and halve it
/// when the queue backs up past one full batch. Returns `(override,
/// degraded)` — `None` means "use the attached width".
fn effective_nprobe(inner: &ServerInner, base: Option<usize>) -> (Option<usize>, bool) {
    let (Some(base), Some(budget)) = (base, inner.config.ann_budget_us) else {
        return (None, false);
    };
    let mut eff = base;
    let ewma = inner.ann_ewma_us.load(Ordering::Relaxed);
    if ewma > budget {
        eff = ((base as u64 * budget / ewma) as usize).max(1);
    }
    if inner.queue.len() > inner.config.max_batch {
        eff = (eff / 2).max(1);
    }
    if eff < base {
        (Some(eff), true)
    } else {
        (None, false)
    }
}

fn observe_ann_us(inner: &ServerInner, sample_us: u64) {
    let old = inner.ann_ewma_us.load(Ordering::Relaxed);
    let new = if old == 0 {
        sample_us.max(1)
    } else {
        (old * 7 + sample_us) / 8
    };
    inner.ann_ewma_us.store(new.max(1), Ordering::Relaxed);
}
