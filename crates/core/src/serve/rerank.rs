//! Post-retrieval re-ranking as a chain of composable stages
//! (DESIGN.md §15).
//!
//! Retrieval (exhaustive or two-stage) produces a relevance-sorted
//! candidate list; business policy — demote what the user already saw,
//! damp popularity feedback loops, flatten or sharpen the score
//! distribution, cut the tail — is layered on top as a chain of
//! [`RerankStage`] trait objects, modeled on the `SamplerChain`
//! architecture of llm-samplers: each stage is independently
//! unit-testable, configured from one string
//! (e.g. `"seen:0.5,pop:0.2,temp:0.8,topk:100,topp:0.9"`), and applied in
//! spec order. Every stage is deterministic (the diversity stages are
//! *filters*, not samplers), so serving stays reproducible.
//!
//! An empty chain is the identity: serving with no `--chain` returns
//! exactly `recommend_top_n`'s output. A non-empty chain makes the server
//! over-retrieve ([`RerankChain::overscan`]) so filtering stages have a
//! tail to cut into before truncating back to the requested `n`.

use std::collections::HashSet;

use mbssl_data::ItemId;

use crate::recommender::Recommendation;

/// Everything a stage may consult besides the candidate list itself.
pub struct RerankContext<'a> {
    /// Items the user has already interacted with.
    pub seen: &'a HashSet<ItemId>,
    /// Global interaction count per item (session store counts; used by
    /// the popularity-debias stage).
    pub popularity: &'a (dyn Fn(ItemId) -> u64 + Sync),
}

/// One re-ranking stage. Stages transform the list in place and must
/// leave it sorted score-descending with ties toward the lower item id
/// (the ordering every retrieval path produces).
pub trait RerankStage: Send + Sync {
    /// The token this stage is configured by in a chain spec.
    fn name(&self) -> &'static str;
    /// Applies the stage to `recs`.
    fn apply(&self, ctx: &RerankContext<'_>, recs: &mut Vec<Recommendation>);
}

/// Restores the canonical ordering after a score-mutating stage.
fn resort(recs: &mut [Recommendation]) {
    recs.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
}

/// Softmax of the current scores (max-subtracted, same shape as the
/// kernel softmax), used by the probability-mass stages.
fn softmax(recs: &[Recommendation]) -> Vec<f32> {
    let max = recs
        .iter()
        .map(|r| r.score)
        .fold(f32::NEG_INFINITY, f32::max);
    let mut probs: Vec<f32> = recs.iter().map(|r| (r.score - max).exp()).collect();
    let sum: f32 = probs.iter().sum();
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for p in probs.iter_mut() {
            *p *= inv;
        }
    }
    probs
}

/// `seen:λ` — subtracts a flat penalty `λ` from every item the user has
/// already interacted with. When this stage is present the server stops
/// hard-excluding seen items at retrieval, so repeats can resurface —
/// demoted, not banned.
pub struct SeenPenalty(pub f32);

impl RerankStage for SeenPenalty {
    fn name(&self) -> &'static str {
        "seen"
    }
    fn apply(&self, ctx: &RerankContext<'_>, recs: &mut Vec<Recommendation>) {
        for r in recs.iter_mut() {
            if ctx.seen.contains(&r.item) {
                r.score -= self.0;
            }
        }
        resort(recs);
    }
}

/// `pop:γ` — subtracts `γ · ln(1 + count)` per item, damping the
/// rich-get-richer loop where globally popular items crowd out the
/// user-specific tail.
pub struct PopularityDebias(pub f32);

impl RerankStage for PopularityDebias {
    fn name(&self) -> &'static str {
        "pop"
    }
    fn apply(&self, ctx: &RerankContext<'_>, recs: &mut Vec<Recommendation>) {
        for r in recs.iter_mut() {
            let count = (ctx.popularity)(r.item);
            r.score -= self.0 * ((1 + count) as f32).ln();
        }
        resort(recs);
    }
}

/// `temp:T` — divides scores by `T` (logit temperature). Order-preserving
/// on its own; it matters by reshaping the distribution the `topp` stage
/// measures mass over (`T < 1` sharpens → smaller nucleus, `T > 1`
/// flattens → larger).
pub struct Temperature(pub f32);

impl RerankStage for Temperature {
    fn name(&self) -> &'static str {
        "temp"
    }
    fn apply(&self, _ctx: &RerankContext<'_>, recs: &mut Vec<Recommendation>) {
        let inv = 1.0 / self.0;
        for r in recs.iter_mut() {
            r.score *= inv;
        }
    }
}

/// `topk:K` — keeps the best `K` candidates.
pub struct TopK(pub usize);

impl RerankStage for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }
    fn apply(&self, _ctx: &RerankContext<'_>, recs: &mut Vec<Recommendation>) {
        recs.truncate(self.0);
    }
}

/// `topp:P` — nucleus filter: softmaxes the current scores and keeps the
/// shortest prefix whose cumulative probability reaches `P` (always at
/// least one item). Deterministic — it cuts the tail, it does not sample
/// from it.
pub struct TopP(pub f32);

impl RerankStage for TopP {
    fn name(&self) -> &'static str {
        "topp"
    }
    fn apply(&self, _ctx: &RerankContext<'_>, recs: &mut Vec<Recommendation>) {
        if recs.len() <= 1 {
            return;
        }
        let probs = softmax(recs);
        let mut mass = 0.0f32;
        let mut keep = recs.len();
        for (i, &p) in probs.iter().enumerate() {
            mass += p;
            if mass >= self.0 {
                keep = i + 1;
                break;
            }
        }
        recs.truncate(keep);
    }
}

/// An ordered chain of re-ranking stages.
pub struct RerankChain {
    stages: Vec<Box<dyn RerankStage>>,
}

impl RerankChain {
    /// The identity chain (serving default).
    pub fn empty() -> RerankChain {
        RerankChain { stages: Vec::new() }
    }

    /// Parses a comma-separated spec: `name[:value]` per stage, applied
    /// in order. Stages: `seen:λ` (default 1), `pop:γ` (default 0.1),
    /// `temp:T` (default 1, must be > 0), `topk:K` (required, ≥ 1),
    /// `topp:P` (required, in (0, 1]). An empty spec is the empty chain.
    pub fn parse(spec: &str) -> Result<RerankChain, String> {
        let mut stages: Vec<Box<dyn RerankStage>> = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, value) = match part.split_once(':') {
                Some((n, v)) => (n.trim(), Some(v.trim())),
                None => (part, None),
            };
            let f32_arg = |default: Option<f32>| -> Result<f32, String> {
                match value {
                    Some(v) => v
                        .parse::<f32>()
                        .map_err(|_| format!("stage {name:?}: bad value {v:?}")),
                    None => default.ok_or_else(|| format!("stage {name:?} needs a value")),
                }
            };
            match name {
                "seen" => {
                    let w = f32_arg(Some(1.0))?;
                    if !w.is_finite() || w < 0.0 {
                        return Err(format!("seen penalty must be finite and ≥ 0, got {w}"));
                    }
                    stages.push(Box::new(SeenPenalty(w)));
                }
                "pop" => {
                    let w = f32_arg(Some(0.1))?;
                    if !w.is_finite() || w < 0.0 {
                        return Err(format!("pop weight must be finite and ≥ 0, got {w}"));
                    }
                    stages.push(Box::new(PopularityDebias(w)));
                }
                "temp" => {
                    let t = f32_arg(Some(1.0))?;
                    if !t.is_finite() || t <= 0.0 {
                        return Err(format!("temperature must be finite and > 0, got {t}"));
                    }
                    stages.push(Box::new(Temperature(t)));
                }
                "topk" => {
                    let k: usize = value
                        .ok_or("stage \"topk\" needs a value")?
                        .parse()
                        .map_err(|_| format!("stage \"topk\": bad value {value:?}"))?;
                    if k == 0 {
                        return Err("topk must be ≥ 1".into());
                    }
                    stages.push(Box::new(TopK(k)));
                }
                "topp" => {
                    let p = f32_arg(None)?;
                    if !(p > 0.0 && p <= 1.0) {
                        return Err(format!("topp must be in (0, 1], got {p}"));
                    }
                    stages.push(Box::new(TopP(p)));
                }
                other => return Err(format!("unknown rerank stage {other:?}")),
            }
        }
        Ok(RerankChain { stages })
    }

    /// Whether the chain is the identity.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether any stage with `name` is present.
    pub fn has_stage(&self, name: &str) -> bool {
        self.stages.iter().any(|s| s.name() == name)
    }

    /// Stage names in application order, comma-joined.
    pub fn describe(&self) -> String {
        self.stages
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// How many × the requested `n` the server should retrieve before
    /// applying the chain: 1 for the identity (bit-parity with plain
    /// top-n), 4 otherwise so filtering stages have a tail to work with.
    pub fn overscan(&self) -> usize {
        if self.stages.is_empty() {
            1
        } else {
            4
        }
    }

    /// Runs every stage in order.
    pub fn apply(&self, ctx: &RerankContext<'_>, recs: &mut Vec<Recommendation>) {
        for stage in &self.stages {
            stage.apply(ctx, recs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(pairs: &[(ItemId, f32)]) -> Vec<Recommendation> {
        pairs
            .iter()
            .map(|&(item, score)| Recommendation { item, score })
            .collect()
    }

    fn items(recs: &[Recommendation]) -> Vec<ItemId> {
        recs.iter().map(|r| r.item).collect()
    }

    fn ctx_with<'a>(
        seen: &'a HashSet<ItemId>,
        pop: &'a (dyn Fn(ItemId) -> u64 + Sync),
    ) -> RerankContext<'a> {
        RerankContext {
            seen,
            popularity: pop,
        }
    }

    const NO_POP: fn(ItemId) -> u64 = |_| 0;

    #[test]
    fn seen_penalty_demotes_only_seen_items() {
        let seen: HashSet<ItemId> = [2].into_iter().collect();
        let ctx = ctx_with(&seen, &NO_POP);
        let mut list = recs(&[(2, 1.0), (5, 0.9), (7, 0.1)]);
        SeenPenalty(0.5).apply(&ctx, &mut list);
        assert_eq!(items(&list), vec![5, 2, 7]);
        assert_eq!(list[1].score, 0.5);
        assert_eq!(list[0].score, 0.9, "unseen scores untouched");
    }

    #[test]
    fn popularity_debias_is_log_scaled() {
        let seen = HashSet::new();
        let pop = |id: ItemId| if id == 1 { 1 } else { 0 };
        let ctx = ctx_with(&seen, &pop);
        let mut list = recs(&[(1, 1.0), (2, 0.9)]);
        PopularityDebias(0.5).apply(&ctx, &mut list);
        // item 1: 1.0 − 0.5·ln(1+1) ≈ 0.653 → drops below item 2.
        assert_eq!(items(&list), vec![2, 1]);
        assert!((list[1].score - (1.0 - 0.5 * 2f32.ln())).abs() < 1e-6);
    }

    #[test]
    fn temperature_preserves_order_and_scales_scores() {
        let seen = HashSet::new();
        let ctx = ctx_with(&seen, &NO_POP);
        let mut list = recs(&[(1, 1.0), (2, 0.5)]);
        Temperature(0.5).apply(&ctx, &mut list);
        assert_eq!(items(&list), vec![1, 2]);
        assert_eq!(list[0].score, 2.0);
        assert_eq!(list[1].score, 1.0);
    }

    #[test]
    fn topk_truncates() {
        let seen = HashSet::new();
        let ctx = ctx_with(&seen, &NO_POP);
        let mut list = recs(&[(1, 3.0), (2, 2.0), (3, 1.0)]);
        TopK(2).apply(&ctx, &mut list);
        assert_eq!(items(&list), vec![1, 2]);
        TopK(10).apply(&ctx, &mut list);
        assert_eq!(list.len(), 2, "topk larger than the list is a no-op");
    }

    #[test]
    fn topp_keeps_the_smallest_sufficient_nucleus() {
        let seen = HashSet::new();
        let ctx = ctx_with(&seen, &NO_POP);
        // Scores 10, 10, 0: items 1+2 hold ≈ all of the mass.
        let mut list = recs(&[(1, 10.0), (2, 10.0), (3, 0.0)]);
        TopP(0.9).apply(&ctx, &mut list);
        assert_eq!(items(&list), vec![1, 2]);
        // p = 1.0 keeps everything.
        let mut all = recs(&[(1, 1.0), (2, 0.5), (3, 0.1)]);
        TopP(1.0).apply(&ctx, &mut all);
        assert_eq!(all.len(), 3);
        // Always keeps at least the head, however sharp.
        let mut sharp = recs(&[(1, 100.0), (2, 0.0)]);
        TopP(0.01).apply(&ctx, &mut sharp);
        assert_eq!(items(&sharp), vec![1]);
    }

    #[test]
    fn chain_applies_in_spec_order() {
        // seen-penalty then topk: item 1 must be demoted *before* the cut.
        let seen: HashSet<ItemId> = [1].into_iter().collect();
        let ctx = ctx_with(&seen, &NO_POP);
        let chain = RerankChain::parse("seen:5,topk:2").unwrap();
        let mut list = recs(&[(1, 1.0), (2, 0.9), (3, 0.8)]);
        chain.apply(&ctx, &mut list);
        assert_eq!(items(&list), vec![2, 3]);
        // Reversed order cuts first: the seen item survives.
        let chain = RerankChain::parse("topk:2,seen:5").unwrap();
        let mut list = recs(&[(1, 1.0), (2, 0.9), (3, 0.8)]);
        chain.apply(&ctx, &mut list);
        assert_eq!(items(&list), vec![2, 1]);
    }

    #[test]
    fn empty_chain_is_identity() {
        let seen: HashSet<ItemId> = [1].into_iter().collect();
        let ctx = ctx_with(&seen, &NO_POP);
        let chain = RerankChain::parse("").unwrap();
        assert!(chain.is_empty());
        assert_eq!(chain.overscan(), 1);
        let mut list = recs(&[(1, 1.0), (2, 0.9)]);
        let before = list.clone();
        chain.apply(&ctx, &mut list);
        assert_eq!(list, before);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "unknown",
            "seen:-1",
            "seen:abc",
            "temp:0",
            "temp:-2",
            "topk",
            "topk:0",
            "topp",
            "topp:0",
            "topp:1.5",
        ] {
            assert!(RerankChain::parse(bad).is_err(), "spec {bad:?} should fail");
        }
        let chain = RerankChain::parse("seen:0.5, pop:0.2 ,temp:0.8,topk:100,topp:0.9").unwrap();
        assert_eq!(chain.len(), 5);
        assert_eq!(chain.describe(), "seen,pop,temp,topk,topp");
        assert!(chain.has_stage("topp"));
        assert!(!chain.has_stage("nope"));
        assert_eq!(chain.overscan(), 4);
    }
}
