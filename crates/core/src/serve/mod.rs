//! `mbssl serve` — the micro-batched online serving engine.
//!
//! Layered over the offline [`InferenceModel`](crate::infer::InferenceModel):
//!
//! - [`batcher`] — bounded queue whose drains convert concurrent
//!   arrivals into micro-batches (the entire batching policy).
//! - [`session`] — sharded per-user histories, seen-sets, popularity
//!   counts, and the epoch-keyed interest cache.
//! - [`rerank`] — composable post-retrieval stage chain, parsed from a
//!   `"seen:0.5,pop:0.2,topk:100"` style spec.
//! - [`server`] — worker loop tying the three together, plus checkpoint
//!   hot-swap and the ANN latency-budget policy.
//!
//! Design notes live in DESIGN.md §15; the bit-identity argument for
//! batched vs. solo serving is on
//! [`InferenceModel::encode_interests`](crate::infer::InferenceModel::encode_interests).

pub mod batcher;
pub mod metrics;
pub mod rerank;
pub mod server;
pub mod session;

pub use batcher::BatchQueue;
pub use metrics::{MetricsSnapshot, Stage, METRICS_SCHEMA, NUM_STAGES};
pub use rerank::{RerankChain, RerankContext, RerankStage};
pub use server::{ServeConfig, ServeError, ServeReply, ServeStats, Server};
pub use session::{SessionStore, UserSnapshot};
