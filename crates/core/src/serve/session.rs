//! Per-user session state: histories, seen-sets, popularity counts, and
//! the epoch-keyed interest cache (DESIGN.md §15).
//!
//! The store is sharded (`SHARDS` mutexes over hash-split user maps) so
//! concurrent requests for different users rarely contend. Each session
//! carries a monotone `version`; [`SessionStore::ingest`] appends the
//! event, bumps the version, and thereby invalidates **only that user's**
//! cached encoding — no other session is touched. Cached interests are
//! additionally keyed by the serving-engine epoch, so a checkpoint
//! hot-swap ([`super::Server::swap_engine`]) lazily invalidates every
//! cache entry without walking the store: a stale epoch simply fails the
//! match on next read and the user is re-encoded through the new engine.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mbssl_data::{Behavior, Dataset, ItemId, Sequence, UserId};

/// Shard count; power of two so the shard pick is a mask.
const SHARDS: usize = 16;

/// A cached interest encoding, valid only while both the engine epoch
/// and the session version still match.
struct CachedInterests {
    epoch: u64,
    version: u64,
    z: Vec<f32>,
}

struct UserSession {
    history: Sequence,
    seen: HashSet<ItemId>,
    version: u64,
    cached: Option<CachedInterests>,
}

impl UserSession {
    fn new() -> UserSession {
        UserSession {
            history: Sequence::new(),
            seen: HashSet::new(),
            version: 0,
            cached: None,
        }
    }
}

/// Everything one request needs from a session, copied out under the
/// shard lock so encoding and ranking run lock-free.
pub struct UserSnapshot {
    /// The user's full event history (the engine truncates).
    pub history: Sequence,
    /// Session version at snapshot time; hand it back to
    /// [`SessionStore::store_interests`] so a concurrent ingest can't be
    /// overwritten by a stale encoding.
    pub version: u64,
    /// Items the user has interacted with.
    pub seen: HashSet<ItemId>,
    /// Cached interests (`[k, d]`) if still valid for `epoch`.
    pub cached: Option<Vec<f32>>,
}

/// Sharded per-user session state shared by the server workers.
pub struct SessionStore {
    shards: Box<[Mutex<HashMap<UserId, UserSession>>]>,
    /// Interaction count per item id (index `0` unused), maintained on
    /// ingest and consulted by the popularity-debias rerank stage.
    popularity: Box<[AtomicU64]>,
    num_items: usize,
}

impl SessionStore {
    /// An empty store over a catalog of `num_items` items.
    pub fn new(num_items: usize) -> SessionStore {
        let shards = (0..SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let popularity = (0..num_items + 1)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SessionStore {
            shards,
            popularity,
            num_items,
        }
    }

    /// Seeds sessions and popularity counts from a dataset (user `u` ↔
    /// `dataset.sequences[u]`, the same mapping the `recommend` CLI uses).
    pub fn from_dataset(dataset: &Dataset) -> SessionStore {
        let store = SessionStore::new(dataset.num_items);
        for (user, seq) in dataset.sequences.iter().enumerate() {
            let mut session = UserSession::new();
            session.history = seq.clone();
            session.seen = seq.items.iter().copied().collect();
            for &item in &seq.items {
                store.popularity[item as usize].fetch_add(1, Ordering::Relaxed);
            }
            store.shards[user % SHARDS]
                .lock()
                .unwrap()
                .insert(user as UserId, session);
        }
        store
    }

    fn shard(&self, user: UserId) -> &Mutex<HashMap<UserId, UserSession>> {
        &self.shards[user as usize % SHARDS]
    }

    /// Catalog size this store was built for.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of known sessions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether no session exists yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global interaction count for `item`.
    pub fn popularity(&self, item: ItemId) -> u64 {
        self.popularity
            .get(item as usize)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Appends one event to `user`'s history (creating the session if
    /// new), bumps the session version — invalidating only this user's
    /// cached encoding — and counts the item's popularity.
    pub fn ingest(&self, user: UserId, item: ItemId, behavior: Behavior) -> Result<(), String> {
        if item == 0 || item as usize > self.num_items {
            return Err(format!(
                "item {item} outside catalog 1..={}",
                self.num_items
            ));
        }
        let mut shard = self.shard(user).lock().unwrap();
        let session = shard.entry(user).or_insert_with(UserSession::new);
        session.history.push(item, behavior);
        session.seen.insert(item);
        session.version += 1;
        session.cached = None;
        drop(shard);
        self.popularity[item as usize].fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Copies out everything a request needs; `epoch` filters the cache
    /// (a stale engine's encoding never leaks across a hot-swap). Unknown
    /// users get an empty session (cold-start: the encoder handles empty
    /// histories).
    pub fn snapshot(&self, user: UserId, epoch: u64) -> UserSnapshot {
        let mut shard = self.shard(user).lock().unwrap();
        let session = shard.entry(user).or_insert_with(UserSession::new);
        let cached = session
            .cached
            .as_ref()
            .filter(|c| c.epoch == epoch && c.version == session.version)
            .map(|c| c.z.clone());
        UserSnapshot {
            history: session.history.clone(),
            version: session.version,
            seen: session.seen.clone(),
            cached,
        }
    }

    /// Writes a freshly computed encoding back, unless the session moved
    /// on (version mismatch) while the batch was being served — a stale
    /// write must lose to a concurrent ingest.
    pub fn store_interests(&self, user: UserId, version: u64, epoch: u64, z: &[f32]) {
        let mut shard = self.shard(user).lock().unwrap();
        if let Some(session) = shard.get_mut(&user) {
            if session.version == version {
                session.cached = Some(CachedInterests {
                    epoch,
                    version,
                    z: z.to_vec(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_appends_and_invalidates_only_that_user() {
        let store = SessionStore::new(100);
        store.store_interests(1, 0, 7, &[1.0]);
        // Unknown user: store_interests is a no-op, snapshot creates.
        assert!(store.snapshot(1, 7).cached.is_none());

        // Cache both users at epoch 7.
        store.snapshot(1, 7);
        store.snapshot(2, 7);
        store.store_interests(1, 0, 7, &[1.0]);
        store.store_interests(2, 0, 7, &[2.0]);
        assert_eq!(store.snapshot(1, 7).cached.as_deref(), Some(&[1.0][..]));
        assert_eq!(store.snapshot(2, 7).cached.as_deref(), Some(&[2.0][..]));

        store.ingest(1, 42, Behavior::Click).unwrap();
        let snap1 = store.snapshot(1, 7);
        assert!(snap1.cached.is_none(), "ingest must invalidate user 1");
        assert_eq!(snap1.history.items, vec![42]);
        assert_eq!(snap1.version, 1);
        assert!(snap1.seen.contains(&42));
        assert_eq!(
            store.snapshot(2, 7).cached.as_deref(),
            Some(&[2.0][..]),
            "user 2's cache must survive"
        );
        assert_eq!(store.popularity(42), 1);
    }

    #[test]
    fn epoch_mismatch_misses_without_clearing() {
        let store = SessionStore::new(10);
        store.snapshot(5, 1);
        store.store_interests(5, 0, 1, &[3.0]);
        assert!(store.snapshot(5, 2).cached.is_none(), "new epoch: miss");
        assert_eq!(
            store.snapshot(5, 1).cached.as_deref(),
            Some(&[3.0][..]),
            "old epoch entry still matches its own epoch"
        );
    }

    #[test]
    fn stale_write_back_loses_to_concurrent_ingest() {
        let store = SessionStore::new(10);
        store.snapshot(3, 1);
        let version_at_encode = store.snapshot(3, 1).version;
        store.ingest(3, 4, Behavior::Purchase).unwrap();
        store.store_interests(3, version_at_encode, 1, &[9.0]);
        assert!(
            store.snapshot(3, 1).cached.is_none(),
            "encoding of the pre-ingest history must not be cached"
        );
    }

    #[test]
    fn ingest_rejects_out_of_catalog_items() {
        let store = SessionStore::new(10);
        assert!(store.ingest(1, 0, Behavior::Click).is_err());
        assert!(store.ingest(1, 11, Behavior::Click).is_err());
        assert!(store.ingest(1, 10, Behavior::Click).is_ok());
    }
}
