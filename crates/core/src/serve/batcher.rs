//! The bounded micro-batching queue (DESIGN.md §15).
//!
//! Producers ([`Server::submit`](super::Server::submit) callers) push one
//! job each and block on a response channel; worker threads drain jobs in
//! gulps of up to `MBSSL_SERVE_BATCH`, waiting at most `MBSSL_SERVE_WAIT_US`
//! after the first job for stragglers to accumulate. The queue is the
//! entire batching policy — the workers just serve whatever one drain
//! call hands them:
//!
//! ```text
//!   empty ──job arrives──▶ collecting ──batch full──────────▶ drained
//!     ▲                        │       ──deadline expires──▶ drained
//!     │                        │       ──queue closed──────▶ drained
//!     └────── drained batch returned to the worker ◀──────────┘
//! ```
//!
//! Blocking for the *first* job costs nothing under load (the queue is
//! never empty) and one condvar wait when idle; the straggler wait is
//! what converts concurrent arrivals into one encoder forward. Capacity
//! is bounded so a slow consumer back-pressures producers instead of
//! growing an unbounded backlog.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue whose consumers drain in deadline-bounded
/// batches.
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// A queue holding at most `capacity` pending items.
    pub fn new(capacity: usize) -> BatchQueue<T> {
        assert!(capacity > 0);
        BatchQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap();
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pending items right now (racy by nature; used for the queue-depth
    /// gauge and the ANN pressure heuristic).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: further pushes fail, and drains return whatever
    /// is left, then `false`. Wakes everyone.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Drains one micro-batch into `out` (appended): blocks until at
    /// least one item is available, then keeps collecting until `max`
    /// items are gathered or `wait` has elapsed since the first pickup.
    /// Returns `false` — without touching `out` — only when the queue is
    /// closed **and** empty, i.e. the consumer should exit.
    pub fn drain_into(&self, max: usize, wait: Duration, out: &mut Vec<T>) -> bool {
        assert!(max > 0);
        let mut state = self.state.lock().unwrap();
        while state.items.is_empty() {
            if state.closed {
                return false;
            }
            state = self.not_empty.wait(state).unwrap();
        }
        while out.len() < max {
            match state.items.pop_front() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        // Straggler window, anchored at first pickup: a request that
        // arrives within `wait` of the batch opening rides along.
        if out.len() < max && !wait.is_zero() && !state.closed {
            let deadline = Instant::now() + wait;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (s, _timeout) = self
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = s;
                while out.len() < max {
                    match state.items.pop_front() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
                if out.len() == max || state.closed {
                    break;
                }
            }
        }
        drop(state);
        self.not_full.notify_all();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drain_caps_at_max_and_leaves_the_rest() {
        let q = BatchQueue::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let mut batch = Vec::new();
        assert!(q.drain_into(4, Duration::ZERO, &mut batch));
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn drain_returns_partial_batch_after_deadline() {
        let q = BatchQueue::new(16);
        q.push(1).unwrap();
        let started = Instant::now();
        let mut batch = Vec::new();
        assert!(q.drain_into(8, Duration::from_millis(20), &mut batch));
        assert_eq!(batch, vec![1]);
        assert!(started.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn drain_collects_stragglers_within_the_window() {
        let q = Arc::new(BatchQueue::new(16));
        q.push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                q.push(2).unwrap();
                q.push(3).unwrap();
            })
        };
        let mut batch = Vec::new();
        assert!(q.drain_into(3, Duration::from_millis(500), &mut batch));
        assert_eq!(batch, vec![1, 2, 3], "full batch should end the wait early");
        producer.join().unwrap();
    }

    #[test]
    fn close_drains_leftovers_then_signals_exit() {
        let q = BatchQueue::new(16);
        q.push(7).unwrap();
        q.close();
        assert!(q.push(8).is_err(), "push after close must fail");
        let mut batch = Vec::new();
        assert!(q.drain_into(4, Duration::from_millis(50), &mut batch));
        assert_eq!(batch, vec![7]);
        batch.clear();
        assert!(!q.drain_into(4, Duration::from_millis(50), &mut batch));
        assert!(batch.is_empty());
    }

    #[test]
    fn close_unblocks_a_waiting_consumer() {
        let q = Arc::new(BatchQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                q.drain_into(4, Duration::from_secs(5), &mut batch)
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(!consumer.join().unwrap());
    }

    #[test]
    fn bounded_capacity_backpressures_producers() {
        let q = Arc::new(BatchQueue::new(2));
        q.push(0).unwrap();
        q.push(1).unwrap();
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2).is_ok())
        };
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(q.len(), 2, "third push must be blocked, not queued");
        let mut batch = Vec::new();
        assert!(q.drain_into(2, Duration::ZERO, &mut batch));
        assert!(blocked.join().unwrap());
        assert_eq!(q.len(), 1);
    }
}
