//! Self-supervised objectives (§2.4 of DESIGN.md):
//! cross-behavior interest alignment, augmentation-based sequence
//! contrast, and interest disentanglement.

use mbssl_tensor::{no_grad, Tensor};

/// Row-validity-weighted InfoNCE.
///
/// `anchors` and `positives` are `[N, D]`; row `i`'s positive is
/// `positives[i]` and its negatives are every other row of `positives`.
/// `row_valid[i] == 0` removes row `i` from the loss (its column still
/// serves as a negative — harmless). Returns a scalar; zero when no row is
/// valid.
pub fn info_nce(anchors: &Tensor, positives: &Tensor, temperature: f32, row_valid: &[f32]) -> Tensor {
    let n = anchors.dims()[0];
    assert_eq!(positives.dims()[0], n, "anchor/positive count mismatch");
    assert_eq!(row_valid.len(), n, "row_valid length mismatch");
    let valid_count: f32 = row_valid.iter().sum();
    if valid_count == 0.0 {
        return Tensor::scalar(0.0);
    }
    let a = anchors.l2_normalize_lastdim(1e-8);
    let p = positives.l2_normalize_lastdim(1e-8);
    let logits = a.matmul(&p.transpose_last()).into_mul_scalar(1.0 / temperature); // [N, N]
    let log_probs = logits.log_softmax_lastdim();
    // Extract the diagonal via an identity mask.
    let mut eye = vec![0.0f32; n * n];
    for i in 0..n {
        eye[i * n + i] = 1.0;
    }
    let eye_t = Tensor::from_vec(eye, [n, n]);
    let diag = log_probs.mul(&eye_t).sum_axis(-1, false); // [N]
    let weights = Tensor::from_vec(row_valid.to_vec(), [n]);
    diag.mul(&weights)
        .sum_all()
        .mul_scalar(-1.0 / valid_count)
}

/// Cross-behavior interest alignment.
///
/// `aux`/`target` are `[B, K, D]` interest sets. Each auxiliary interest is
/// greedily matched (no-grad cosine) to the most similar target interest of
/// the *same user*; matched pairs are positives of an InfoNCE over the
/// flattened `[B*K]` sets. `user_valid[b] == 0` drops user `b`'s rows
/// (e.g. no events of that behavior in the history).
pub fn alignment_loss(
    aux: &Tensor,
    target: &Tensor,
    temperature: f32,
    user_valid: &[f32],
) -> Tensor {
    let (b, k, d) = (aux.dims()[0], aux.dims()[1], aux.dims()[2]);
    assert_eq!(target.dims(), &[b, k, d], "interest set shapes must match");
    assert_eq!(user_valid.len(), b);

    // Greedy matching without gradients.
    let matches: Vec<usize> = no_grad(|| {
        let a = aux.l2_normalize_lastdim(1e-8);
        let t = target.l2_normalize_lastdim(1e-8);
        let sim = a.bmm(&t.transpose_last()); // [B, K, K]
        sim.argmax_axis(-1)
    });

    // Gather matched target interests: flat index u*K + match.
    let target_flat = target.reshape([b * k, d]);
    let gather: Vec<usize> = (0..b * k)
        .map(|i| {
            let u = i / k;
            u * k + matches[i]
        })
        .collect();
    let matched = target_flat.index_select0(&gather); // [B*K, D]
    let aux_flat = aux.reshape([b * k, d]);

    let row_valid: Vec<f32> = (0..b * k).map(|i| user_valid[i / k]).collect();
    info_nce(&aux_flat, &matched, temperature, &row_valid)
}

/// Augmentation-based sequence contrast: symmetric InfoNCE between two
/// views' user representations `[B, D]`.
pub fn augmentation_loss(view1: &Tensor, view2: &Tensor, temperature: f32) -> Tensor {
    let b = view1.dims()[0];
    let valid = vec![1.0f32; b];
    let forward = info_nce(view1, view2, temperature, &valid);
    let backward = info_nce(view2, view1, temperature, &valid);
    forward.add(&backward).mul_scalar(0.5)
}

/// Interest disentanglement: mean squared cosine similarity between
/// distinct interests of the same user — pushing a user's `K` interests
/// toward orthogonality. Returns zero for `K == 1`.
pub fn disentanglement_loss(interests: &Tensor) -> Tensor {
    let (b, k, _) = (
        interests.dims()[0],
        interests.dims()[1],
        interests.dims()[2],
    );
    if k <= 1 {
        return Tensor::scalar(0.0);
    }
    let z = interests.l2_normalize_lastdim(1e-8);
    let sim = z.bmm(&z.transpose_last()); // [B, K, K]
    // Off-diagonal mask.
    let mut off = vec![1.0f32; k * k];
    for i in 0..k {
        off[i * k + i] = 0.0;
    }
    let off_t = Tensor::from_vec(off, [k, k]);
    let pairs = (b * k * (k - 1)) as f32;
    sim.square().mul(&off_t).sum_all().mul_scalar(1.0 / pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[f32], n: usize, d: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), [n, d])
    }

    #[test]
    fn info_nce_low_when_aligned_high_when_permuted() {
        // Orthogonal anchors; positives equal anchors (perfect alignment).
        let anchors = rows(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], 3, 3);
        let aligned = info_nce(&anchors, &anchors, 0.1, &[1.0; 3]).item();
        // Positives shifted by one row (worst case).
        let shifted = rows(&[0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0], 3, 3);
        let misaligned = info_nce(&anchors, &shifted, 0.1, &[1.0; 3]).item();
        assert!(aligned < 0.01, "aligned loss {aligned}");
        assert!(misaligned > 2.0, "misaligned loss {misaligned}");
    }

    #[test]
    fn info_nce_respects_row_validity() {
        let anchors = rows(&[1.0, 0.0, 0.0, 1.0], 2, 2);
        let bad_positives = rows(&[0.0, 1.0, 1.0, 0.0], 2, 2);
        // Both rows misaligned, but masked out → loss 0.
        let loss = info_nce(&anchors, &bad_positives, 0.2, &[0.0, 0.0]).item();
        assert_eq!(loss, 0.0);
        // One valid row contributes.
        let loss = info_nce(&anchors, &bad_positives, 0.2, &[1.0, 0.0]).item();
        assert!(loss > 0.5);
    }

    #[test]
    fn info_nce_gradients_flow_to_anchors() {
        let anchors = rows(&[0.5, 0.2, -0.1, 0.8], 2, 2).requires_grad();
        let positives = rows(&[0.4, 0.3, 0.0, 0.9], 2, 2);
        info_nce(&anchors, &positives, 0.2, &[1.0, 1.0]).backward();
        assert!(anchors.grad().is_some());
    }

    #[test]
    fn alignment_matches_most_similar_interest() {
        // User 0: aux interest 0 ≈ target interest 1 and vice versa.
        let aux = Tensor::from_vec(
            vec![
                1.0, 0.0, // u0 k0
                0.0, 1.0, // u0 k1
            ],
            [1, 2, 2],
        );
        let target = Tensor::from_vec(
            vec![
                0.0, 1.0, // u0 k0
                1.0, 0.0, // u0 k1
            ],
            [1, 2, 2],
        );
        // With the crossed matching, the loss should be low (positives are
        // the truly-similar pairs), far lower than with identity pairing.
        let loss = alignment_loss(&aux, &target, 0.1, &[1.0]).item();
        assert!(loss < 0.5, "crossed matching not found: {loss}");
    }

    #[test]
    fn alignment_invalid_users_contribute_zero() {
        let aux = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [1, 2, 2]);
        let target = Tensor::from_vec(vec![0.3, 0.3, 0.3, 0.3], [1, 2, 2]);
        let loss = alignment_loss(&aux, &target, 0.2, &[0.0]).item();
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn augmentation_loss_symmetric_and_low_for_equal_views() {
        let v = rows(&[1.0, 0.0, 0.0, 1.0, 0.5, 0.5], 3, 2);
        let loss = augmentation_loss(&v, &v, 0.1).item();
        assert!(loss < 0.5, "equal views should score low: {loss}");
        let w = rows(&[0.0, 1.0, 1.0, 0.0, 0.5, -0.5], 3, 2);
        let ab = augmentation_loss(&v, &w, 0.1).item();
        let ba = augmentation_loss(&w, &v, 0.1).item();
        assert!((ab - ba).abs() < 1e-5, "not symmetric");
    }

    #[test]
    fn disentanglement_zero_for_orthogonal_high_for_identical() {
        let ortho = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [1, 2, 2]);
        assert!(disentanglement_loss(&ortho).item() < 1e-6);
        let same = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], [1, 2, 2]);
        assert!((disentanglement_loss(&same).item() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn disentanglement_single_interest_is_zero() {
        let z = Tensor::from_vec(vec![1.0, 2.0], [1, 1, 2]);
        assert_eq!(disentanglement_loss(&z).item(), 0.0);
    }

    #[test]
    fn disentanglement_gradient_separates_interests() {
        let z = Tensor::from_vec(vec![1.0, 0.1, 1.0, -0.1], [1, 2, 2]).requires_grad();
        disentanglement_loss(&z).backward();
        let g = z.grad().unwrap();
        assert!(g.iter().any(|v| v.abs() > 1e-6));
    }
}
