//! The shared recommender interface and the leave-one-out evaluator all
//! models (core + baselines) run through — the "same pipeline for every
//! method" fairness contract of the evaluation.

use std::collections::HashSet;
use std::sync::Mutex;

use mbssl_data::preprocess::EvalInstance;
use mbssl_data::sampler::EvalCandidates;
use mbssl_data::{ItemId, Sequence};
use mbssl_metrics::PerInstanceMetrics;
use mbssl_telemetry as telemetry;
use mbssl_tensor::{alloc, pool};

/// Anything that can score candidate items given a user history.
///
/// Implementations must be `Sync`: [`evaluate`] scores batches from several
/// threads sharing one `&self`. Models are read-only during scoring (all
/// mutation happens in training), so this is a formality for any
/// tensor-backed model.
pub trait SequentialRecommender: Sync {
    /// Human-readable model name (with salient hyperparameters).
    fn name(&self) -> String;

    /// Scores `candidates[i]` for `histories[i]`. Higher = better. All
    /// candidate lists in one call have equal length.
    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>>;

    /// Scores into a caller-provided flat buffer: `out[i * c + j]` is the
    /// score of `candidates[i][j]` (`c` = shared candidate-list length,
    /// `out.len() == histories.len() * c`). The default delegates to
    /// [`score_batch`](Self::score_batch) and copies; allocation-conscious
    /// implementations (the inference engine) override it to write
    /// directly. Must produce exactly the same numbers as `score_batch`.
    fn score_batch_into(&self, histories: &[&Sequence], candidates: &[&[ItemId]], out: &mut [f32]) {
        let c = candidates.first().map(|l| l.len()).unwrap_or(0);
        assert_eq!(out.len(), histories.len() * c, "output buffer shape");
        let lists = self.score_batch(histories, candidates);
        if c == 0 {
            return;
        }
        for (row, list) in out.chunks_mut(c).zip(lists.iter()) {
            row.copy_from_slice(list);
        }
    }

    /// Compiles this model into a faster scoring-only form, if it has one.
    /// [`evaluate`] and [`recommend_top_n`] call this once per invocation
    /// and run the returned recommender in place of `self`. The contract:
    /// the compiled form must score **identically** (bit-for-bit for f32
    /// engines; within the documented drift gate for quantized ones).
    /// Default: `None` (no compiled form; used as-is).
    fn prepare_inference(&self) -> Option<Box<dyn SequentialRecommender>> {
        None
    }

    /// Ranks the whole catalog `1..=num_items` for one user directly,
    /// returning the top `n` (minus `exclude`), or `None` if this model
    /// has no specialized catalog path. [`recommend_top_n`] tries this
    /// before falling back to chunked `score_batch` calls. Must rank
    /// exactly like the fallback (same scores, same tie-breaking).
    fn recommend_catalog(
        &self,
        _history: &Sequence,
        _num_items: usize,
        _n: usize,
        _exclude: &HashSet<ItemId>,
    ) -> Option<Vec<Recommendation>> {
        None
    }
}

/// Evaluates a recommender on instances with prebuilt candidate lists
/// (index 0 = positive), processing `batch_size` instances per scoring
/// call. Returns the per-instance ranks for aggregation and significance
/// testing.
///
/// If the model offers a compiled inference form
/// ([`SequentialRecommender::prepare_inference`]), scoring runs through it;
/// since compiled engines score bit-for-bit like the source model, the
/// returned ranks are unchanged. Use [`evaluate_reference`] to force the
/// model's own `score_batch` path.
///
/// Scoring chunks run in parallel on the shared worker pool, each writing
/// its window of **one shared flat score buffer** (rented from the tensor
/// allocator and recycled afterwards — no per-chunk `Vec<Vec<f32>>`
/// allocation), so the returned metrics are identical to the sequential
/// loop for any pool size (including `MBSSL_THREADS=1`).
pub fn evaluate<R: SequentialRecommender + ?Sized>(
    model: &R,
    instances: &[EvalInstance],
    candidates: &EvalCandidates,
    batch_size: usize,
) -> PerInstanceMetrics {
    match model.prepare_inference() {
        Some(engine) => evaluate_with(engine.as_ref(), instances, candidates, batch_size),
        None => evaluate_with(model, instances, candidates, batch_size),
    }
}

/// [`evaluate`] without the engine hook: always runs `model`'s own scoring
/// path. This is the parity reference the inference tests compare against.
pub fn evaluate_reference<R: SequentialRecommender + ?Sized>(
    model: &R,
    instances: &[EvalInstance],
    candidates: &EvalCandidates,
    batch_size: usize,
) -> PerInstanceMetrics {
    evaluate_with(model, instances, candidates, batch_size)
}

fn evaluate_with<R: SequentialRecommender + ?Sized>(
    model: &R,
    instances: &[EvalInstance],
    candidates: &EvalCandidates,
    batch_size: usize,
) -> PerInstanceMetrics {
    assert_eq!(
        instances.len(),
        candidates.lists.len(),
        "one candidate list per instance"
    );
    assert!(batch_size > 0);
    let mut eval_sp = telemetry::span("eval.evaluate");
    eval_sp.add_bytes((instances.len() * std::mem::size_of::<u32>()) as u64);
    if instances.is_empty() {
        return PerInstanceMetrics::from_score_lists(&[]);
    }
    let c = candidates.lists[0].len();
    let uniform = candidates.lists.iter().all(|l| l.len() == c);
    if uniform && c > 0 {
        // Fast path (the 1-vs-99 protocol always lands here): one flat
        // buffer for every score in the evaluation, written in place by
        // the chunk workers through `score_batch_into`. One allocator
        // request total, independent of the number of chunks.
        let mut flat = alloc::zeroed(instances.len() * c);
        pool::parallel_chunks_mut(&mut flat, batch_size * c, |ci, window| {
            let chunk_start = ci * batch_size;
            let chunk_end = (chunk_start + batch_size).min(instances.len());
            let histories: Vec<&Sequence> = instances[chunk_start..chunk_end]
                .iter()
                .map(|i| &i.history)
                .collect();
            let cand_refs: Vec<&[ItemId]> = candidates.lists[chunk_start..chunk_end]
                .iter()
                .map(|l| l.as_slice())
                .collect();
            // no_grad is thread-local, so the guard must live inside the
            // pool closure: evaluation never records autograd nodes or
            // allocates gradient buffers regardless of which worker runs
            // the chunk.
            let _chunk_sp = telemetry::span("eval.score_chunk");
            mbssl_tensor::no_grad(|| model.score_batch_into(&histories, &cand_refs, window));
        });
        let metrics = PerInstanceMetrics::from_flat_scores(&flat, c);
        alloc::recycle(flat);
        return metrics;
    }
    // Ragged candidate lists: fall back to per-chunk score lists. One slot
    // per scoring chunk; the per-slot mutex is uncontended (each chunk
    // index is claimed by exactly one pool thread) and exists to keep the
    // indexed writes safe without unsafe code.
    let n_chunks = instances.len().div_ceil(batch_size);
    let slots: Vec<Mutex<Vec<Vec<f32>>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    pool::parallel_for(n_chunks, |ci| {
        let chunk_start = ci * batch_size;
        let chunk_end = (chunk_start + batch_size).min(instances.len());
        let histories: Vec<&Sequence> = instances[chunk_start..chunk_end]
            .iter()
            .map(|i| &i.history)
            .collect();
        let cand_refs: Vec<&[ItemId]> = candidates.lists[chunk_start..chunk_end]
            .iter()
            .map(|l| l.as_slice())
            .collect();
        let _chunk_sp = telemetry::span("eval.score_chunk");
        *slots[ci].lock().unwrap() =
            mbssl_tensor::no_grad(|| model.score_batch(&histories, &cand_refs));
    });
    let mut score_lists: Vec<Vec<f32>> = Vec::with_capacity(instances.len());
    for slot in slots {
        score_lists.extend(slot.into_inner().unwrap());
    }
    PerInstanceMetrics::from_score_lists(&score_lists)
}

/// A ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Recommended item id.
    pub item: ItemId,
    /// Model score (higher = better).
    pub score: f32,
}

/// Heap key ordering for top-n retention: "smallest" is the entry to evict —
/// lowest score, ties broken toward the *highest* item id so that equal
/// scores keep the earliest-scored (lowest-id) item, matching the old
/// bounded-insertion behavior exactly.
#[derive(PartialEq)]
pub(crate) struct RankKey {
    pub(crate) score: f32,
    pub(crate) item: ItemId,
}

impl Eq for RankKey {}

impl Ord for RankKey {
    fn cmp(&self, other: &RankKey) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then(other.item.cmp(&self.item))
    }
}

impl PartialOrd for RankKey {
    fn partial_cmp(&self, other: &RankKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Produces the top-`n` recommendations for one user by scoring the whole
/// catalog. `exclude` (typically the user's already-interacted items) are
/// skipped. This is the serving-style entry point; evaluation uses
/// [`evaluate`] with candidate sets instead.
///
/// Models with a direct catalog path
/// ([`SequentialRecommender::recommend_catalog`], possibly reached through
/// [`SequentialRecommender::prepare_inference`]) rank in one pass; others
/// fall back to scoring the catalog in `chunk_size`-item chunks
/// ([`recommend_top_n_reference`]). Both paths rank identically.
pub fn recommend_top_n<R: SequentialRecommender + ?Sized>(
    model: &R,
    history: &Sequence,
    num_items: usize,
    n: usize,
    exclude: &HashSet<ItemId>,
    chunk_size: usize,
) -> Vec<Recommendation> {
    assert!(n > 0 && chunk_size > 0);
    if let Some(recs) = model.recommend_catalog(history, num_items, n, exclude) {
        return recs;
    }
    if let Some(engine) = model.prepare_inference() {
        if let Some(recs) = engine.recommend_catalog(history, num_items, n, exclude) {
            return recs;
        }
    }
    recommend_top_n_reference(model, history, num_items, n, exclude, chunk_size)
}

/// The chunked `score_batch` top-n path, bypassing any compiled engine or
/// catalog specialization. This is the parity reference for the engine's
/// one-pass catalog ranking.
pub fn recommend_top_n_reference<R: SequentialRecommender + ?Sized>(
    model: &R,
    history: &Sequence,
    num_items: usize,
    n: usize,
    exclude: &HashSet<ItemId>,
    chunk_size: usize,
) -> Vec<Recommendation> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    assert!(n > 0 && chunk_size > 0);
    let mut topn_sp = telemetry::span("serve.top_n");
    topn_sp.add_bytes((num_items * std::mem::size_of::<f32>()) as u64);
    // Min-heap of the best n seen so far: O(log n) per candidate instead of
    // the old O(n) bounded `Vec::insert`.
    let mut heap: BinaryHeap<Reverse<RankKey>> = BinaryHeap::with_capacity(n + 1);
    let mut start: ItemId = 1;
    while (start as usize) <= num_items {
        let end = ((start as usize + chunk_size - 1).min(num_items)) as ItemId;
        let chunk: Vec<ItemId> = (start..=end).filter(|i| !exclude.contains(i)).collect();
        if !chunk.is_empty() {
            let scores = mbssl_tensor::no_grad(|| model.score_batch(&[history], &[&chunk]));
            for (&item, &score) in chunk.iter().zip(scores[0].iter()) {
                heap.push(Reverse(RankKey { score, item }));
                if heap.len() > n {
                    heap.pop();
                }
            }
        }
        start = end + 1;
    }
    let mut recs: Vec<Recommendation> = heap
        .into_iter()
        .map(|Reverse(k)| Recommendation {
            item: k.item,
            score: k.score,
        })
        .collect();
    recs.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
    recs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::Behavior;

    /// Oracle that always scores the first candidate (the target) highest.
    struct Oracle;
    impl SequentialRecommender for Oracle {
        fn name(&self) -> String {
            "oracle".into()
        }
        fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            assert_eq!(histories.len(), candidates.len());
            candidates
                .iter()
                .map(|l| {
                    l.iter()
                        .enumerate()
                        .map(|(i, _)| if i == 0 { 1.0 } else { 0.0 })
                        .collect()
                })
                .collect()
        }
    }

    /// Anti-oracle: target always scored lowest.
    struct AntiOracle;
    impl SequentialRecommender for AntiOracle {
        fn name(&self) -> String {
            "anti".into()
        }
        fn score_batch(&self, _h: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            candidates
                .iter()
                .map(|l| {
                    l.iter()
                        .enumerate()
                        .map(|(i, _)| if i == 0 { -1.0 } else { 1.0 })
                        .collect()
                })
                .collect()
        }
    }

    fn demo_instances(n: usize) -> (Vec<EvalInstance>, EvalCandidates) {
        let mut instances = Vec::new();
        let mut lists = Vec::new();
        for u in 0..n {
            let mut h = Sequence::new();
            h.push(1, Behavior::Click);
            instances.push(EvalInstance {
                user: u as u32,
                history: h,
                target: 5,
            });
            lists.push(vec![5, 6, 7, 8]);
        }
        (instances, EvalCandidates { lists })
    }

    #[test]
    fn oracle_gets_perfect_metrics() {
        let (instances, cands) = demo_instances(10);
        let m = evaluate(&Oracle, &instances, &cands, 3).aggregate();
        assert_eq!(m.hr5, 1.0);
        assert_eq!(m.ndcg10, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.count, 10);
    }

    #[test]
    fn anti_oracle_gets_zero_topk() {
        let (instances, cands) = demo_instances(10);
        let m = evaluate(&AntiOracle, &instances, &cands, 4).aggregate();
        // Target ranked last among 4 candidates → rank 3 → misses HR@(<=3).
        assert_eq!(m.hr5, 1.0); // still within top-5 of a 4-candidate list
        let pim = evaluate(&AntiOracle, &instances, &cands, 4);
        assert!(pim.ranks.iter().all(|&r| r == 3));
    }

    #[test]
    fn batching_does_not_change_results() {
        let (instances, cands) = demo_instances(7);
        let a = evaluate(&Oracle, &instances, &cands, 1);
        let b = evaluate(&Oracle, &instances, &cands, 7);
        assert_eq!(a.ranks, b.ranks);
    }

    #[test]
    #[should_panic(expected = "one candidate list per instance")]
    fn mismatched_lists_panic() {
        let (instances, cands) = demo_instances(3);
        evaluate(&Oracle, &instances[..2], &cands, 2);
    }

    /// Scores items by id (higher id = better) for top-n testing.
    struct ByIdScorer;
    impl SequentialRecommender for ByIdScorer {
        fn name(&self) -> String {
            "by-id".into()
        }
        fn score_batch(&self, _h: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            candidates
                .iter()
                .map(|l| l.iter().map(|&i| i as f32).collect())
                .collect()
        }
    }

    #[test]
    fn top_n_returns_best_unseen_items() {
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        let exclude: std::collections::HashSet<ItemId> = [10, 9].into_iter().collect();
        // Catalog 1..=10; exclude 9 & 10 → best are 8, 7, 6.
        let recs = recommend_top_n(&ByIdScorer, &h, 10, 3, &exclude, 4);
        let items: Vec<ItemId> = recs.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![8, 7, 6]);
        assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn top_n_chunking_invariant() {
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        let exclude = std::collections::HashSet::new();
        let a = recommend_top_n(&ByIdScorer, &h, 25, 5, &exclude, 3);
        let b = recommend_top_n(&ByIdScorer, &h, 25, 5, &exclude, 25);
        assert_eq!(a, b, "chunk size changed recommendations");
    }

    /// Deterministic pseudo-random scorer with deliberate score ties, for
    /// checking the heap-based top-n against the old bounded-insertion
    /// reference.
    struct HashScorer;
    impl SequentialRecommender for HashScorer {
        fn name(&self) -> String {
            "hash".into()
        }
        fn score_batch(&self, _h: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            candidates
                .iter()
                .map(|l| {
                    l.iter()
                        // Bucketed scores so ties occur and tie-breaking
                        // behavior is exercised.
                        .map(|&i| ((i as u64 * 2654435761) % 17) as f32)
                        .collect()
                })
                .collect()
        }
    }

    /// The pre-heap implementation, kept verbatim as the behavioral
    /// reference for ranking output.
    fn reference_top_n<R: SequentialRecommender + ?Sized>(
        model: &R,
        history: &Sequence,
        num_items: usize,
        n: usize,
        exclude: &std::collections::HashSet<ItemId>,
        chunk_size: usize,
    ) -> Vec<Recommendation> {
        let mut heap: Vec<Recommendation> = Vec::with_capacity(n + 1);
        let mut push = |rec: Recommendation| {
            let pos = heap
                .iter()
                .position(|r| rec.score > r.score)
                .unwrap_or(heap.len());
            heap.insert(pos, rec);
            heap.truncate(n);
        };
        let mut start: ItemId = 1;
        while (start as usize) <= num_items {
            let end = ((start as usize + chunk_size - 1).min(num_items)) as ItemId;
            let chunk: Vec<ItemId> = (start..=end).filter(|i| !exclude.contains(i)).collect();
            if !chunk.is_empty() {
                let scores = model.score_batch(&[history], &[&chunk]);
                for (&item, &score) in chunk.iter().zip(scores[0].iter()) {
                    push(Recommendation { item, score });
                }
            }
            start = end + 1;
        }
        heap
    }

    #[test]
    fn heap_top_n_matches_bounded_insertion_reference() {
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        let exclude: std::collections::HashSet<ItemId> = [13, 57, 251].into_iter().collect();
        for &(num_items, n, chunk) in
            &[(300usize, 10usize, 37usize), (300, 1, 300), (50, 50, 7), (300, 25, 64)]
        {
            let got = recommend_top_n(&HashScorer, &h, num_items, n, &exclude, chunk);
            let expect = reference_top_n(&HashScorer, &h, num_items, n, &exclude, chunk);
            assert_eq!(got, expect, "num_items={num_items} n={n} chunk={chunk}");
        }
    }

    /// The sequential evaluation loop `evaluate` replaced, kept as the
    /// behavioral reference.
    fn reference_evaluate<R: SequentialRecommender + ?Sized>(
        model: &R,
        instances: &[EvalInstance],
        candidates: &EvalCandidates,
        batch_size: usize,
    ) -> PerInstanceMetrics {
        let mut score_lists: Vec<Vec<f32>> = Vec::with_capacity(instances.len());
        for chunk_start in (0..instances.len()).step_by(batch_size) {
            let chunk_end = (chunk_start + batch_size).min(instances.len());
            let histories: Vec<&Sequence> = instances[chunk_start..chunk_end]
                .iter()
                .map(|i| &i.history)
                .collect();
            let cand_refs: Vec<&[ItemId]> = candidates.lists[chunk_start..chunk_end]
                .iter()
                .map(|l| l.as_slice())
                .collect();
            score_lists.extend(model.score_batch(&histories, &cand_refs));
        }
        PerInstanceMetrics::from_score_lists(&score_lists)
    }

    /// Scorer whose output depends on the instance identity (history item
    /// and candidate ids), so any ordering mistake in the parallel
    /// evaluator shows up as changed per-instance ranks.
    struct InstanceSensitiveScorer;
    impl SequentialRecommender for InstanceSensitiveScorer {
        fn name(&self) -> String {
            "instance-sensitive".into()
        }
        fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            histories
                .iter()
                .zip(candidates.iter())
                .map(|(h, l)| {
                    let seed = h.items.first().copied().unwrap_or(0) as u64;
                    l.iter()
                        .map(|&c| (((seed * 31 + c as u64) * 2654435761) % 1000) as f32)
                        .collect()
                })
                .collect()
        }
    }

    /// Tensor-backed scorer that records whether its outputs were tracked by
    /// autograd, to pin the no-graph contract of `evaluate`.
    struct GradProbe {
        w: mbssl_tensor::Tensor,
        tracked: Mutex<Vec<bool>>,
    }
    impl GradProbe {
        fn new() -> Self {
            GradProbe {
                w: mbssl_tensor::Tensor::ones([2, 1]).requires_grad(),
                tracked: Mutex::new(Vec::new()),
            }
        }
    }
    impl SequentialRecommender for GradProbe {
        fn name(&self) -> String {
            "grad-probe".into()
        }
        fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            // A real forward pass through a tracked parameter: outside
            // no_grad this would record a graph node and later allocate a
            // gradient buffer on w.
            let y = mbssl_tensor::Tensor::ones([1, 2]).matmul(&self.w);
            self.tracked.lock().unwrap().push(y.is_tracked());
            let base = y.to_vec()[0];
            histories
                .iter()
                .zip(candidates.iter())
                .map(|(_, l)| l.iter().map(|&c| base - c as f32).collect())
                .collect()
        }
    }

    #[test]
    fn evaluate_records_no_graph_nodes() {
        let (instances, cands) = demo_instances(9);
        let probe = GradProbe::new();
        evaluate(&probe, &instances, &cands, 2);
        let flags = probe.tracked.lock().unwrap();
        assert!(!flags.is_empty(), "probe never scored");
        assert!(
            flags.iter().all(|&t| !t),
            "evaluate recorded autograd nodes"
        );
        assert!(
            probe.w.grad().is_none(),
            "evaluate allocated a gradient buffer"
        );
    }

    #[test]
    fn parallel_evaluate_matches_sequential_reference() {
        // Seeded synthetic instances: enough chunks (odd batch size) to
        // exercise multi-threaded chunk claiming and the tail chunk.
        let mut instances = Vec::new();
        let mut lists = Vec::new();
        for u in 0..457u32 {
            let mut h = Sequence::new();
            h.push(u % 91 + 1, Behavior::Click);
            h.push(u % 17 + 1, Behavior::Purchase);
            instances.push(EvalInstance {
                user: u,
                history: h,
                target: u % 50 + 1,
            });
            lists.push((0..100).map(|c| (u + c) % 997 + 1).collect());
        }
        let cands = EvalCandidates { lists };
        for batch_size in [1usize, 13, 64, 457, 1000] {
            let par = evaluate(&InstanceSensitiveScorer, &instances, &cands, batch_size);
            let seq = reference_evaluate(&InstanceSensitiveScorer, &instances, &cands, batch_size);
            assert_eq!(par.ranks, seq.ranks, "batch_size={batch_size}");
        }
    }
}
