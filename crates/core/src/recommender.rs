//! The shared recommender interface and the leave-one-out evaluator all
//! models (core + baselines) run through — the "same pipeline for every
//! method" fairness contract of the evaluation.

use mbssl_data::preprocess::EvalInstance;
use mbssl_data::sampler::EvalCandidates;
use mbssl_data::{ItemId, Sequence};
use mbssl_metrics::PerInstanceMetrics;

/// Anything that can score candidate items given a user history.
pub trait SequentialRecommender {
    /// Human-readable model name (with salient hyperparameters).
    fn name(&self) -> String;

    /// Scores `candidates[i]` for `histories[i]`. Higher = better. All
    /// candidate lists in one call have equal length.
    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>>;
}

/// Evaluates a recommender on instances with prebuilt candidate lists
/// (index 0 = positive), processing `batch_size` instances per scoring
/// call. Returns the per-instance ranks for aggregation and significance
/// testing.
pub fn evaluate<R: SequentialRecommender + ?Sized>(
    model: &R,
    instances: &[EvalInstance],
    candidates: &EvalCandidates,
    batch_size: usize,
) -> PerInstanceMetrics {
    assert_eq!(
        instances.len(),
        candidates.lists.len(),
        "one candidate list per instance"
    );
    assert!(batch_size > 0);
    let mut score_lists: Vec<Vec<f32>> = Vec::with_capacity(instances.len());
    for chunk_start in (0..instances.len()).step_by(batch_size) {
        let chunk_end = (chunk_start + batch_size).min(instances.len());
        let histories: Vec<&Sequence> = instances[chunk_start..chunk_end]
            .iter()
            .map(|i| &i.history)
            .collect();
        let cand_refs: Vec<&[ItemId]> = candidates.lists[chunk_start..chunk_end]
            .iter()
            .map(|l| l.as_slice())
            .collect();
        score_lists.extend(model.score_batch(&histories, &cand_refs));
    }
    PerInstanceMetrics::from_score_lists(&score_lists)
}

/// A ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    pub item: ItemId,
    pub score: f32,
}

/// Produces the top-`n` recommendations for one user by scoring the whole
/// catalog in chunks. `exclude` (typically the user's already-interacted
/// items) are skipped. This is the serving-style entry point; evaluation
/// uses [`evaluate`] with candidate sets instead.
pub fn recommend_top_n<R: SequentialRecommender + ?Sized>(
    model: &R,
    history: &Sequence,
    num_items: usize,
    n: usize,
    exclude: &std::collections::HashSet<ItemId>,
    chunk_size: usize,
) -> Vec<Recommendation> {
    assert!(n > 0 && chunk_size > 0);
    let mut heap: Vec<Recommendation> = Vec::with_capacity(n + 1);
    let mut push = |rec: Recommendation| {
        // Simple bounded insertion (n is small in serving scenarios).
        let pos = heap
            .iter()
            .position(|r| rec.score > r.score)
            .unwrap_or(heap.len());
        heap.insert(pos, rec);
        heap.truncate(n);
    };
    let mut start: ItemId = 1;
    while (start as usize) <= num_items {
        let end = ((start as usize + chunk_size - 1).min(num_items)) as ItemId;
        let chunk: Vec<ItemId> = (start..=end).filter(|i| !exclude.contains(i)).collect();
        if !chunk.is_empty() {
            let scores = model.score_batch(&[history], &[&chunk]);
            for (&item, &score) in chunk.iter().zip(scores[0].iter()) {
                push(Recommendation { item, score });
            }
        }
        start = end + 1;
    }
    heap
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::Behavior;

    /// Oracle that always scores the first candidate (the target) highest.
    struct Oracle;
    impl SequentialRecommender for Oracle {
        fn name(&self) -> String {
            "oracle".into()
        }
        fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            assert_eq!(histories.len(), candidates.len());
            candidates
                .iter()
                .map(|l| {
                    l.iter()
                        .enumerate()
                        .map(|(i, _)| if i == 0 { 1.0 } else { 0.0 })
                        .collect()
                })
                .collect()
        }
    }

    /// Anti-oracle: target always scored lowest.
    struct AntiOracle;
    impl SequentialRecommender for AntiOracle {
        fn name(&self) -> String {
            "anti".into()
        }
        fn score_batch(&self, _h: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            candidates
                .iter()
                .map(|l| {
                    l.iter()
                        .enumerate()
                        .map(|(i, _)| if i == 0 { -1.0 } else { 1.0 })
                        .collect()
                })
                .collect()
        }
    }

    fn demo_instances(n: usize) -> (Vec<EvalInstance>, EvalCandidates) {
        let mut instances = Vec::new();
        let mut lists = Vec::new();
        for u in 0..n {
            let mut h = Sequence::new();
            h.push(1, Behavior::Click);
            instances.push(EvalInstance {
                user: u as u32,
                history: h,
                target: 5,
            });
            lists.push(vec![5, 6, 7, 8]);
        }
        (instances, EvalCandidates { lists })
    }

    #[test]
    fn oracle_gets_perfect_metrics() {
        let (instances, cands) = demo_instances(10);
        let m = evaluate(&Oracle, &instances, &cands, 3).aggregate();
        assert_eq!(m.hr5, 1.0);
        assert_eq!(m.ndcg10, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.count, 10);
    }

    #[test]
    fn anti_oracle_gets_zero_topk() {
        let (instances, cands) = demo_instances(10);
        let m = evaluate(&AntiOracle, &instances, &cands, 4).aggregate();
        // Target ranked last among 4 candidates → rank 3 → misses HR@(<=3).
        assert_eq!(m.hr5, 1.0); // still within top-5 of a 4-candidate list
        let pim = evaluate(&AntiOracle, &instances, &cands, 4);
        assert!(pim.ranks.iter().all(|&r| r == 3));
    }

    #[test]
    fn batching_does_not_change_results() {
        let (instances, cands) = demo_instances(7);
        let a = evaluate(&Oracle, &instances, &cands, 1);
        let b = evaluate(&Oracle, &instances, &cands, 7);
        assert_eq!(a.ranks, b.ranks);
    }

    #[test]
    #[should_panic(expected = "one candidate list per instance")]
    fn mismatched_lists_panic() {
        let (instances, cands) = demo_instances(3);
        evaluate(&Oracle, &instances[..2], &cands, 2);
    }

    /// Scores items by id (higher id = better) for top-n testing.
    struct ByIdScorer;
    impl SequentialRecommender for ByIdScorer {
        fn name(&self) -> String {
            "by-id".into()
        }
        fn score_batch(&self, _h: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
            candidates
                .iter()
                .map(|l| l.iter().map(|&i| i as f32).collect())
                .collect()
        }
    }

    #[test]
    fn top_n_returns_best_unseen_items() {
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        let exclude: std::collections::HashSet<ItemId> = [10, 9].into_iter().collect();
        // Catalog 1..=10; exclude 9 & 10 → best are 8, 7, 6.
        let recs = recommend_top_n(&ByIdScorer, &h, 10, 3, &exclude, 4);
        let items: Vec<ItemId> = recs.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![8, 7, 6]);
        assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn top_n_chunking_invariant() {
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        let exclude = std::collections::HashSet::new();
        let a = recommend_top_n(&ByIdScorer, &h, 25, 5, &exclude, 3);
        let b = recommend_top_n(&ByIdScorer, &h, 25, 5, &exclude, 25);
        assert_eq!(a, b, "chunk size changed recommendations");
    }
}
