#![warn(missing_docs)]
//! Structured runtime telemetry for the `mbssl` workspace: scoped span
//! timers, monotonic counters, gauges, and a thread-safe registry that
//! aggregates per-label statistics and emits them as a human-readable
//! table or machine-readable JSONL.
//!
//! The crate is deliberately zero-dependency (std only; the in-repo serde
//! shims appear only as dev-dependencies of its tests) so every layer of
//! the workspace — the tensor kernels, the allocator, the worker pool, the
//! trainer, the CLI, the benches — can report into one registry without a
//! dependency cycle.
//!
//! # Hierarchy
//!
//! Spans are **hierarchical**: each thread keeps a stack of open span
//! labels, and a completed span records under its `(parent, label)` edge —
//! the label of the span that was open when it started, or `""` at the
//! root. [`drain`] returns one record per edge, which is what lets
//! `mbssl trace summary` attribute *self-time* (a span's total minus its
//! children's totals) instead of double-counting nested work. See
//! DESIGN.md §12 for the aggregation model.
//!
//! # Modes
//!
//! Tracing is configured once per process from `MBSSL_TRACE` (or
//! programmatically via [`set_mode`], which the `mbssl --trace` flag and
//! the test suite use):
//!
//! | `MBSSL_TRACE` | behaviour |
//! |---|---|
//! | unset / `off` / `0` / `none` | disabled (the default) |
//! | `summary` / `on` / `1` | aggregate in memory; [`flush`] prints a table to stderr |
//! | `jsonl:<path>` | aggregate in memory; [`flush`] appends JSONL records to `<path>` |
//!
//! # Overhead budget
//!
//! When tracing is disabled, [`span`] performs a **single relaxed atomic
//! load** and returns an inert guard whose `Drop` is a branch on an
//! already-loaded `Option` — no clock reads, no locks, no allocation.
//! [`counter_add`] and [`gauge_set`] are likewise a single atomic load.
//! This is the contract that lets hot paths (GEMM dispatch, allocator,
//! pool jobs) stay instrumented unconditionally; the bench smoke test
//! asserts the end-to-end disabled-mode cost on `train_step` stays under
//! 2%.
//!
//! When tracing is enabled, each span costs two `Instant` reads plus one
//! short mutex-protected hash-map update at drop. Instrument at *dispatch*
//! granularity (one span per kernel call or batch), never per element.
//!
//! # Determinism
//!
//! Telemetry never draws from any RNG, never reorders arithmetic, and
//! never conditions computation on its own state: training and evaluation
//! results are bit-for-bit identical with tracing off or on. The
//! `telemetry_trace` integration test in `mbssl-core` pins this.
//!
//! # Example
//!
//! ```
//! use mbssl_telemetry as telemetry;
//!
//! telemetry::set_mode(telemetry::TraceMode::Summary);
//! {
//!     let mut s = telemetry::span("demo.work");
//!     s.add_bytes(1024);
//!     // ... the timed region ...
//! } // guard drop records the span
//! telemetry::counter_add("demo.calls", 1);
//! let stats = telemetry::drain();
//! assert!(stats.iter().any(|r| r.label == "demo.work" && r.count == 1));
//! telemetry::set_mode(telemetry::TraceMode::Off);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime};

pub mod hist;

pub use hist::{HistBucket, Histogram, LatencyHistogram};

// ---------------------------------------------------------------------------
// Mode handling
// ---------------------------------------------------------------------------

/// How telemetry behaves for the rest of the process (see crate docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// Tracing disabled: spans and counters are inert (the default).
    Off,
    /// Aggregate in memory; [`flush`] prints a human-readable table to
    /// stderr.
    Summary,
    /// Aggregate in memory; [`flush`] appends JSONL records to the file at
    /// the contained path (created if absent).
    Jsonl(String),
}

impl TraceMode {
    /// Parses an `MBSSL_TRACE`-style value: `off`/`0`/`none`, `summary`/
    /// `on`/`1`, or `jsonl:<path>`.
    pub fn parse(s: &str) -> Result<TraceMode, String> {
        match s.trim() {
            "" | "off" | "0" | "none" => Ok(TraceMode::Off),
            "summary" | "on" | "1" => Ok(TraceMode::Summary),
            other => match other.strip_prefix("jsonl:") {
                Some(path) if !path.is_empty() => Ok(TraceMode::Jsonl(path.to_string())),
                _ => Err(format!(
                    "unrecognized trace mode {other:?} (expected off | summary | jsonl:<path>)"
                )),
            },
        }
    }

    fn is_active(&self) -> bool {
        !matches!(self, TraceMode::Off)
    }
}

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Three-valued so the steady-state fast path is one load with no
/// `OnceLock` indirection: 0 = not yet initialized from the environment.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

fn mode_cell() -> &'static Mutex<TraceMode> {
    static MODE: OnceLock<Mutex<TraceMode>> = OnceLock::new();
    MODE.get_or_init(|| Mutex::new(TraceMode::Off))
}

#[cold]
fn init_from_env() -> bool {
    let mode = std::env::var("MBSSL_TRACE")
        .ok()
        .and_then(|v| TraceMode::parse(&v).ok())
        .unwrap_or(TraceMode::Off);
    set_mode(mode);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Whether tracing is currently active. In the steady state this is a
/// single relaxed atomic load; the first call per process parses
/// `MBSSL_TRACE`.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Overrides the trace mode for the rest of the process (or until the next
/// call). Takes precedence over `MBSSL_TRACE`; used by the `mbssl --trace`
/// flag and by tests that exercise both modes in one process.
pub fn set_mode(mode: TraceMode) {
    let state = if mode.is_active() { STATE_ON } else { STATE_OFF };
    *mode_cell().lock().unwrap() = mode;
    STATE.store(state, Ordering::Relaxed);
}

/// The currently configured mode (initializing from `MBSSL_TRACE` on first
/// use).
pub fn mode() -> TraceMode {
    enabled();
    mode_cell().lock().unwrap().clone()
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    bytes: u64,
    /// Constant-memory latency distribution across completions; the
    /// registry mutex already serializes updates, so the plain
    /// (non-atomic) histogram suffices here.
    hist: Histogram,
}

struct Registry {
    /// Span aggregates keyed by `(parent label, label)` — the parent-edge
    /// aggregation model (DESIGN.md §12): each completed span records under
    /// the edge from its enclosing span (or `""` at the root), so trace
    /// analysis can attribute self-time vs. child-time exactly.
    spans: HashMap<(&'static str, &'static str), SpanAgg>,
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            spans: HashMap::new(),
            counters: HashMap::new(),
            gauges: HashMap::new(),
        })
    })
}

/// A snapshot-producing callback: returns `(label, value)` pairs published
/// as gauges at every [`drain`]/[`flush`]. Plain `fn` pointers keep
/// registration allocation-free and deduplicatable.
pub type Collector = fn() -> Vec<(&'static str, u64)>;

fn collectors() -> &'static Mutex<Vec<Collector>> {
    static COLLECTORS: OnceLock<Mutex<Vec<Collector>>> = OnceLock::new();
    COLLECTORS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a gauge collector run at every [`drain`]/[`flush`].
/// Idempotent: registering the same `fn` twice keeps one copy. Subsystems
/// with their own always-on counters (the allocator, the worker pool)
/// register a collector once at init so their state appears in every trace
/// without telemetry calls on their hot paths.
pub fn register_collector(f: Collector) {
    let mut list = collectors().lock().unwrap();
    if !list.iter().any(|&g| std::ptr::fn_addr_eq(g, f)) {
        list.push(f);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    /// Labels of the spans currently open on this thread, outermost first.
    /// Only touched when tracing is enabled, so the disabled fast path
    /// never reads thread-local state. Each thread (main, prefetch
    /// producer, pool workers) has its own stack, so parent attribution is
    /// exact per thread and spans opened on worker threads root at `""`.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII span guard returned by [`span`]; records into the registry on drop.
#[must_use = "a span measures the scope it lives in; binding it to `_` drops it immediately"]
pub struct Span {
    label: &'static str,
    /// Label of the span that was open on this thread when this one
    /// started (`""` at the root).
    parent: &'static str,
    /// This span's index on the thread-local stack; drop truncates back to
    /// it, which stays correct even if guards are dropped out of order.
    depth: usize,
    start: Option<Instant>,
    bytes: u64,
}

impl Span {
    /// Attributes `n` processed bytes to this span (reported as the label's
    /// cumulative `bytes` in traces). No-op when tracing is disabled.
    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        if self.start.is_some() {
            self.bytes += n;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| stack.borrow_mut().truncate(self.depth));
        let mut reg = registry().lock().unwrap();
        let agg = reg.spans.entry((self.parent, self.label)).or_default();
        agg.count += 1;
        agg.total_ns += elapsed;
        agg.min_ns = if agg.count == 1 { elapsed } else { agg.min_ns.min(elapsed) };
        agg.max_ns = agg.max_ns.max(elapsed);
        agg.bytes += self.bytes;
        agg.hist.record(elapsed);
    }
}

/// Starts a scoped span timer. The returned guard records
/// `{count, total/min/max ns, bytes}` under the `(parent, label)` edge
/// when it drops, where `parent` is the label of the span already open on
/// this thread (the hierarchical attribution model — see DESIGN.md §12).
///
/// `label` is a `&'static str` by design: labels are a closed, greppable
/// vocabulary (`layer.what`, see DESIGN.md §12), not data.
///
/// Disabled-mode cost: one relaxed atomic load (see crate docs); the
/// thread-local parent stack is only touched when tracing is enabled.
#[inline]
pub fn span(label: &'static str) -> Span {
    if !enabled() {
        return Span { label, parent: "", depth: 0, start: None, bytes: 0 };
    }
    let (parent, depth) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or("");
        let depth = stack.len();
        stack.push(label);
        (parent, depth)
    });
    Span { label, parent, depth, start: Some(Instant::now()), bytes: 0 }
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// Adds `n` to the monotonic counter `label`. No-op when tracing is
/// disabled (one atomic load).
#[inline]
pub fn counter_add(label: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    *registry().lock().unwrap().counters.entry(label).or_insert(0) += n;
}

/// Sets the gauge `label` to `value` (last write wins within a flush
/// interval). No-op when tracing is disabled.
#[inline]
pub fn gauge_set(label: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    registry().lock().unwrap().gauges.insert(label, value);
}

// ---------------------------------------------------------------------------
// Draining and records
// ---------------------------------------------------------------------------

/// What a [`LabelStats`] record measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A scoped timer: `count`/`total_ns`/`min_ns`/`max_ns`/`bytes` are
    /// meaningful.
    Span,
    /// A monotonic counter: `value` is meaningful.
    Counter,
    /// A point-in-time gauge (explicit or collector-published): `value` is
    /// meaningful.
    Gauge,
}

impl RecordKind {
    /// The lowercase token used in the JSONL `kind` field.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Span => "span",
            RecordKind::Counter => "counter",
            RecordKind::Gauge => "gauge",
        }
    }
}

/// Aggregated statistics for one label, as returned by [`drain`].
#[derive(Clone, Debug)]
pub struct LabelStats {
    /// The span/counter/gauge label.
    pub label: String,
    /// Label of the enclosing span at record time (spans only; `""` for
    /// root spans, counters, and gauges). One label can appear in several
    /// records, one per distinct parent edge.
    pub parent: String,
    /// Which instrument produced this record.
    pub kind: RecordKind,
    /// Number of span completions (spans only).
    pub count: u64,
    /// Total nanoseconds across completions (spans only).
    pub total_ns: u64,
    /// Fastest single completion (spans only).
    pub min_ns: u64,
    /// Slowest single completion (spans only).
    pub max_ns: u64,
    /// Estimated median completion time (spans only; from the
    /// constant-memory [`Histogram`], within [`hist::REL_ERROR`] of the
    /// exact nearest-rank quantile).
    pub p50_ns: u64,
    /// Estimated 90th-percentile completion time (spans only).
    pub p90_ns: u64,
    /// Estimated 99th-percentile completion time (spans only).
    pub p99_ns: u64,
    /// Cumulative bytes attributed via [`Span::add_bytes`] (spans only).
    pub bytes: u64,
    /// Counter/gauge value (counters and gauges only).
    pub value: u64,
}

/// Snapshots and resets the registry: runs the registered collectors,
/// then returns one record per `(parent, label)` span edge and one per
/// counter/gauge label, sorted by kind, label, then parent for
/// deterministic output. Returns an empty vec when tracing is disabled.
pub fn drain() -> Vec<LabelStats> {
    if !enabled() {
        return Vec::new();
    }
    let snapshots: Vec<Vec<(&'static str, u64)>> =
        collectors().lock().unwrap().iter().map(|f| f()).collect();
    let mut reg = registry().lock().unwrap();
    for snapshot in snapshots {
        for (label, value) in snapshot {
            reg.gauges.insert(label, value);
        }
    }
    let mut out: Vec<LabelStats> = Vec::new();
    for ((parent, label), agg) in reg.spans.drain() {
        out.push(LabelStats {
            label: label.to_string(),
            parent: parent.to_string(),
            kind: RecordKind::Span,
            count: agg.count,
            total_ns: agg.total_ns,
            min_ns: agg.min_ns,
            max_ns: agg.max_ns,
            p50_ns: agg.hist.quantile(0.5),
            p90_ns: agg.hist.quantile(0.9),
            p99_ns: agg.hist.quantile(0.99),
            bytes: agg.bytes,
            value: 0,
        });
    }
    for (label, value) in reg.counters.drain() {
        out.push(LabelStats {
            label: label.to_string(),
            parent: String::new(),
            kind: RecordKind::Counter,
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            p50_ns: 0,
            p90_ns: 0,
            p99_ns: 0,
            bytes: 0,
            value,
        });
    }
    for (label, value) in reg.gauges.drain() {
        out.push(LabelStats {
            label: label.to_string(),
            parent: String::new(),
            kind: RecordKind::Gauge,
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            p50_ns: 0,
            p90_ns: 0,
            p99_ns: 0,
            bytes: 0,
            value,
        });
    }
    out.sort_by(|a, b| {
        a.kind
            .as_str()
            .cmp(b.kind.as_str())
            .then(a.label.cmp(&b.label))
            .then(a.parent.cmp(&b.parent))
    });
    out
}

// ---------------------------------------------------------------------------
// Flushing
// ---------------------------------------------------------------------------

/// The `MBSSL_*` variables stamped into every meta record.
const META_ENV_KEYS: [&str; 7] = [
    "MBSSL_THREADS",
    "MBSSL_ALLOC",
    "MBSSL_FUSED",
    "MBSSL_TRACE",
    "MBSSL_BENCH_ONLY",
    "MBSSL_RUN_DIR",
    "MBSSL_GIT_REV",
];

/// Run metadata stamped into every JSONL flush, mirroring the
/// `git_rev`/`cores`/env stamp `scripts/bench_smoke.sh` writes into
/// `BENCH_throughput.json`.
pub fn meta_record(section: &str) -> String {
    let env: Vec<(String, String)> = META_ENV_KEYS
        .iter()
        .map(|k| (k.to_string(), std::env::var(k).unwrap_or_default()))
        .collect();
    meta_record_with(section, git_rev(), &env)
}

/// [`meta_record`] with the revision and environment stamp supplied by the
/// caller. Public so the round-trip tests can feed adversarial env values;
/// not part of the stable API.
#[doc(hidden)]
pub fn meta_record_with(section: &str, rev: Option<&str>, env: &[(String, String)]) -> String {
    let mut s = String::from("{\"kind\":\"meta\"");
    push_field_str(&mut s, "section", section);
    match rev {
        Some(rev) => push_field_str(&mut s, "git_rev", rev),
        None => s.push_str(",\"git_rev\":null"),
    }
    push_field_u64(&mut s, "unix_time_s", unix_time_s());
    push_field_u64(
        &mut s,
        "cores",
        std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0),
    );
    s.push_str(",\"env\":{");
    for (i, (key, value)) in env.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{}:{}", json_str(key), json_str(value)));
    }
    s.push_str("}}");
    s
}

fn unix_time_s() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The git revision stamped into traces and run ledgers: `MBSSL_GIT_REV`
/// when set and non-empty (the override for packaged binaries and CI),
/// otherwise the revision the build script embedded at compile time
/// (`None` when the crate was built outside a git checkout).
///
/// Deliberately **not** a runtime `git` subprocess: a binary run outside
/// the repo used to stamp `null` — or a *different* repo's rev — into
/// trace meta, and shelling out sat on the flush path.
pub fn git_rev() -> Option<&'static str> {
    static REV: OnceLock<Option<String>> = OnceLock::new();
    REV.get_or_init(|| {
        std::env::var("MBSSL_GIT_REV")
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .or_else(|| option_env!("MBSSL_BUILD_GIT_REV").map(str::to_string))
    })
    .as_deref()
}

/// JSON string literal (quotes + escapes) for `s`.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn push_field_str(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!(",{}:{}", json_str(key), json_str(value)));
}

fn push_field_u64(out: &mut String, key: &str, value: u64) {
    out.push_str(&format!(",{}:{}", json_str(key), value));
}

/// The JSONL line for one drained record (no trailing newline). Span
/// records carry their `parent` edge (`""` for root spans); counters and
/// gauges omit the field.
pub fn record_to_jsonl(rec: &LabelStats, section: &str) -> String {
    let mut s = format!("{{\"kind\":{}", json_str(rec.kind.as_str()));
    push_field_str(&mut s, "section", section);
    push_field_str(&mut s, "label", &rec.label);
    match rec.kind {
        RecordKind::Span => {
            push_field_str(&mut s, "parent", &rec.parent);
            push_field_u64(&mut s, "count", rec.count);
            push_field_u64(&mut s, "total_ns", rec.total_ns);
            push_field_u64(&mut s, "min_ns", rec.min_ns);
            push_field_u64(&mut s, "max_ns", rec.max_ns);
            push_field_u64(&mut s, "p50_ns", rec.p50_ns);
            push_field_u64(&mut s, "p90_ns", rec.p90_ns);
            push_field_u64(&mut s, "p99_ns", rec.p99_ns);
            push_field_u64(&mut s, "bytes", rec.bytes);
        }
        RecordKind::Counter | RecordKind::Gauge => {
            push_field_u64(&mut s, "value", rec.value);
        }
    }
    s.push('}');
    s
}

/// Renders drained records as the human-readable summary table (span
/// edges sorted by total time, shown as `parent > label`, then
/// counters/gauges). The label column widens to the longest entry so long
/// labels never shear the grid.
pub fn render_table(stats: &[LabelStats]) -> String {
    let mut spans: Vec<&LabelStats> = stats.iter().filter(|r| r.kind == RecordKind::Span).collect();
    spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(&b.label)));
    let names: Vec<String> = spans
        .iter()
        .map(|r| {
            if r.parent.is_empty() {
                r.label.clone()
            } else {
                format!("{} > {}", r.parent, r.label)
            }
        })
        .collect();
    let others: Vec<&LabelStats> = stats.iter().filter(|r| r.kind != RecordKind::Span).collect();
    let width = names
        .iter()
        .map(|n| n.chars().count())
        .chain(others.iter().map(|r| r.label.chars().count()))
        .chain(["counter/gauge".len()]) // widest header
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "span", "count", "total_ms", "p50_us", "p90_us", "p99_us", "max_us", "bytes"
    ));
    for (name, r) in names.iter().zip(&spans) {
        out.push_str(&format!(
            "{:<width$} {:>10} {:>12.3} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12}\n",
            name,
            r.count,
            r.total_ns as f64 / 1e6,
            r.p50_ns as f64 / 1e3,
            r.p90_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.max_ns as f64 / 1e3,
            r.bytes
        ));
    }
    if !others.is_empty() {
        out.push_str(&format!("{:<width$} {:>10}\n", "counter/gauge", "value"));
        for r in others {
            out.push_str(&format!("{:<width$} {:>10}\n", r.label, r.value));
        }
    }
    out
}

/// Drains the registry and emits it according to the current mode:
/// `Summary` prints [`render_table`] to stderr, `Jsonl` appends one meta
/// record plus one record per label to the trace file. `section` tags
/// every emitted record (benches use one flush per bench section; use
/// [`flush`] when a single section suffices).
pub fn flush_section(section: &str) {
    let current = mode();
    if !current.is_active() {
        return;
    }
    let stats = drain();
    match current {
        TraceMode::Off => {}
        TraceMode::Summary => {
            let mut err = std::io::stderr().lock();
            if section.is_empty() {
                let _ = writeln!(err, "-- telemetry --");
            } else {
                let _ = writeln!(err, "-- telemetry [{section}] --");
            }
            let _ = err.write_all(render_table(&stats).as_bytes());
        }
        TraceMode::Jsonl(path) => {
            let mut lines = String::new();
            lines.push_str(&meta_record(section));
            lines.push('\n');
            for rec in &stats {
                lines.push_str(&record_to_jsonl(rec, section));
                lines.push('\n');
            }
            append_to_trace(&path, &lines);
        }
    }
}

/// [`flush_section`] with an empty section tag.
pub fn flush() {
    flush_section("");
}

fn append_to_trace(path: &str, content: &str) {
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(content.as_bytes()));
    if let Err(e) = result {
        eprintln!("mbssl-telemetry: cannot append to trace file {path}: {e}");
    }
}

// ---------------------------------------------------------------------------
// Progress lines
// ---------------------------------------------------------------------------

/// Writes one progress line to stderr atomically (single locked write, so
/// concurrent pool threads cannot interleave within a line) and, in JSONL
/// mode, appends a `{"kind":"progress"}` record to the trace immediately.
///
/// This is the structured replacement for ad-hoc `eprintln!` status
/// output: the default console behaviour is identical, but the line is
/// also captured in traces.
pub fn progress(line: &str) {
    {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
    if !enabled() {
        return;
    }
    if let TraceMode::Jsonl(path) = mode() {
        let mut rec = progress_record(line);
        rec.push('\n');
        append_to_trace(&path, &rec);
    }
}

/// The `{"kind":"progress"}` JSONL line for `line` (no trailing newline).
/// Public for the round-trip tests; not part of the stable API.
#[doc(hidden)]
pub fn progress_record(line: &str) -> String {
    let mut rec = String::from("{\"kind\":\"progress\"");
    push_field_str(&mut rec, "message", line);
    push_field_u64(&mut rec, "unix_time_s", unix_time_s());
    rec.push('}');
    rec
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests mutate process-global mode/registry state; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_modes() {
        assert_eq!(TraceMode::parse("off").unwrap(), TraceMode::Off);
        assert_eq!(TraceMode::parse("0").unwrap(), TraceMode::Off);
        assert_eq!(TraceMode::parse("").unwrap(), TraceMode::Off);
        assert_eq!(TraceMode::parse("summary").unwrap(), TraceMode::Summary);
        assert_eq!(TraceMode::parse("on").unwrap(), TraceMode::Summary);
        assert_eq!(
            TraceMode::parse("jsonl:/tmp/t.jsonl").unwrap(),
            TraceMode::Jsonl("/tmp/t.jsonl".into())
        );
        assert!(TraceMode::parse("jsonl:").is_err());
        assert!(TraceMode::parse("verbose").is_err());
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        set_mode(TraceMode::Off);
        {
            let mut s = span("test.noop");
            s.add_bytes(10);
        }
        counter_add("test.noop_counter", 3);
        gauge_set("test.noop_gauge", 7);
        set_mode(TraceMode::Summary);
        let drained = drain();
        assert!(
            drained.iter().all(|r| !r.label.starts_with("test.noop")),
            "disabled-mode instruments leaked into the registry"
        );
        set_mode(TraceMode::Off);
    }

    #[test]
    fn spans_aggregate_per_label() {
        let _g = lock();
        set_mode(TraceMode::Summary);
        drain(); // clear anything left by other tests
        for i in 0..3 {
            let mut s = span("test.agg");
            s.add_bytes(100 * (i + 1));
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        counter_add("test.calls", 2);
        counter_add("test.calls", 5);
        gauge_set("test.level", 1);
        gauge_set("test.level", 9);
        let stats = drain();
        let agg = stats.iter().find(|r| r.label == "test.agg").expect("span missing");
        assert_eq!(agg.kind, RecordKind::Span);
        assert_eq!(agg.count, 3);
        assert_eq!(agg.bytes, 600);
        assert!(agg.total_ns >= agg.max_ns && agg.max_ns >= agg.min_ns && agg.min_ns > 0);
        let calls = stats.iter().find(|r| r.label == "test.calls").unwrap();
        assert_eq!((calls.kind, calls.value), (RecordKind::Counter, 7));
        let level = stats.iter().find(|r| r.label == "test.level").unwrap();
        assert_eq!((level.kind, level.value), (RecordKind::Gauge, 9));
        // drain resets (collector-published gauges reappear each drain by
        // design, so check only the labels this test produced)
        let mine = ["test.agg", "test.calls", "test.level"];
        assert!(drain().iter().all(|r| !mine.contains(&r.label.as_str())));
        set_mode(TraceMode::Off);
    }

    #[test]
    fn spans_record_from_many_threads() {
        let _g = lock();
        set_mode(TraceMode::Summary);
        drain();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let _s = span("test.mt");
                    }
                });
            }
        });
        let stats = drain();
        let agg = stats.iter().find(|r| r.label == "test.mt").unwrap();
        assert_eq!(agg.count, 400);
        set_mode(TraceMode::Off);
    }

    fn fake_collector() -> Vec<(&'static str, u64)> {
        vec![("test.collected", 42)]
    }

    #[test]
    fn collectors_publish_gauges_and_dedup() {
        let _g = lock();
        register_collector(fake_collector);
        register_collector(fake_collector); // second registration is a no-op
        set_mode(TraceMode::Summary);
        drain();
        let stats = drain();
        let hits: Vec<_> = stats.iter().filter(|r| r.label == "test.collected").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].kind, hits[0].value), (RecordKind::Gauge, 42));
        set_mode(TraceMode::Off);
    }

    #[test]
    fn jsonl_escaping_and_fields() {
        let rec = LabelStats {
            label: "weird\"label\\with\nnewline".into(),
            parent: "outer span".into(),
            kind: RecordKind::Span,
            count: 2,
            total_ns: 10,
            min_ns: 3,
            max_ns: 7,
            p50_ns: 5,
            p90_ns: 7,
            p99_ns: 7,
            bytes: 0,
            value: 0,
        };
        let line = record_to_jsonl(&rec, "sec\t1");
        assert!(line.contains("\\\"label\\\\with\\n"));
        assert!(line.contains("\"section\":\"sec\\t1\""));
        assert!(line.contains("\"parent\":\"outer span\""));
        for field in ["\"kind\":\"span\"", "\"count\":2", "\"total_ns\":10", "\"min_ns\":3", "\"max_ns\":7", "\"p50_ns\":5", "\"p90_ns\":7", "\"p99_ns\":7", "\"bytes\":0"] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
        let counter = LabelStats { kind: RecordKind::Counter, value: 5, ..rec.clone() };
        let counter_line = record_to_jsonl(&counter, "");
        assert!(counter_line.contains("\"value\":5"));
        assert!(!counter_line.contains("\"parent\""), "counters must omit parent: {counter_line}");
    }

    #[test]
    fn nested_spans_record_parent_edges() {
        let _g = lock();
        set_mode(TraceMode::Summary);
        drain();
        {
            let _outer = span("test.outer");
            {
                let _inner = span("test.inner");
            }
            {
                let _inner = span("test.inner");
            }
        }
        {
            let _inner = span("test.inner"); // root this time
        }
        let stats = drain();
        let edge = |parent: &str, label: &str| {
            stats
                .iter()
                .find(|r| r.kind == RecordKind::Span && r.parent == parent && r.label == label)
        };
        assert_eq!(edge("test.outer", "test.inner").expect("nested edge missing").count, 2);
        assert_eq!(edge("", "test.inner").expect("root edge missing").count, 1);
        assert_eq!(edge("", "test.outer").expect("outer root edge missing").count, 1);
        set_mode(TraceMode::Off);
    }

    #[test]
    fn span_stack_is_per_thread() {
        let _g = lock();
        set_mode(TraceMode::Summary);
        drain();
        let _outer = span("test.thread_outer");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // A fresh thread has an empty stack: this span must root at
                // "", not under the spawning thread's open span.
                let _s = span("test.thread_inner");
            });
        });
        drop(_outer);
        let stats = drain();
        assert!(
            stats
                .iter()
                .any(|r| r.label == "test.thread_inner" && r.parent.is_empty()),
            "cross-thread span inherited a parent: {stats:?}"
        );
        set_mode(TraceMode::Off);
    }

    #[test]
    fn flush_jsonl_writes_meta_and_records() {
        let _g = lock();
        let path = std::env::temp_dir().join(format!("mbssl_telemetry_test_{}.jsonl", std::process::id()));
        let path_str = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        set_mode(TraceMode::Jsonl(path_str.clone()));
        drain();
        {
            let _s = span("test.flush");
        }
        flush_section("unit");
        set_mode(TraceMode::Off);
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert!(lines.len() >= 2, "expected meta + >=1 record, got {lines:?}");
        assert!(lines[0].contains("\"kind\":\"meta\""));
        assert!(lines[0].contains("\"cores\":"));
        assert!(lines[0].contains("\"env\":{"));
        assert!(lines.iter().any(|l| l.contains("\"label\":\"test.flush\"")));
        assert!(lines.iter().all(|l| l.contains("\"section\":\"unit\"") || l.contains("\"kind\":\"progress\"")));
        let _ = std::fs::remove_file(&path);
    }

    fn mk_span(label: &str, total: u64) -> LabelStats {
        LabelStats {
            label: label.into(),
            parent: String::new(),
            kind: RecordKind::Span,
            count: 1,
            total_ns: total,
            min_ns: total,
            max_ns: total,
            p50_ns: total,
            p90_ns: total,
            p99_ns: total,
            bytes: 0,
            value: 0,
        }
    }

    #[test]
    fn render_table_orders_spans_by_total_time() {
        let table = render_table(&[mk_span("small", 10), mk_span("big", 1000)]);
        let big_at = table.find("big").unwrap();
        let small_at = table.find("small").unwrap();
        assert!(big_at < small_at, "table not sorted by total time:\n{table}");
    }

    #[test]
    fn render_table_widens_to_longest_label() {
        let long = "kernel.exceptionally_long_label_that_used_to_shear_the_grid";
        let mut edge = mk_span(long, 500);
        edge.parent = "trainer.train_step".into();
        let table = render_table(&[mk_span("tiny", 10), edge]);
        // With the old fixed 28-char label column, a long label pushed its
        // numeric columns out of the grid; now the label column widens to
        // the longest entry, so the header and every span row (the rows
        // sharing the 6-column layout) have identical total width.
        let widths: Vec<usize> = table.lines().map(|l| l.chars().count()).collect();
        assert_eq!(widths.len(), 3, "unexpected table shape:\n{table}");
        assert!(
            widths.iter().all(|&w| w == widths[0]),
            "column grid sheared (line widths {widths:?}):\n{table}"
        );
        // The longest name must still be followed by a separating space.
        let name = format!("trainer.train_step > {long}");
        assert!(
            table.lines().any(|l| l.starts_with(&format!("{name} "))),
            "long label row missing separator:\n{table}"
        );
    }
}
