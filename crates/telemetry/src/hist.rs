//! Lock-free, constant-memory log-bucketed latency histograms.
//!
//! Two types share one bucket layout: [`Histogram`] is the plain,
//! mergeable representation used inside the registry (which already
//! holds a lock) and as the snapshot/exposition format, while
//! [`LatencyHistogram`] is the concurrent variant — a fixed array of
//! relaxed `AtomicU64` buckets that many threads record into without
//! coordination and that snapshots into a [`Histogram`].
//!
//! # Bucketing math (HDR-style log-linear)
//!
//! Values are `u64`s (nanoseconds on the latency paths, but the layout
//! is unit-agnostic — the serve batch-size histogram reuses it). Each
//! power-of-two octave is split into `2^`[`SUB_BITS`]` = 16` linear
//! sub-buckets, so bucket width is always ≤ 1/16 of the bucket's lower
//! bound. Values below `2 * 16 = 32` get exact single-integer buckets;
//! values at or above [`MAX_VALUE`] (`2^40 − 1` ns ≈ 18.3 minutes)
//! clamp into the top bucket. That yields [`NUM_BUCKETS`]` = 592`
//! buckets ≈ 4.7 KB per histogram — constant memory regardless of how
//! many samples are recorded.
//!
//! Quantiles are estimated as the arithmetic midpoint of the bucket
//! containing the nearest-rank sample (clamped into the exactly-tracked
//! `[min, max]`). Because `width ≤ lower/16`, the estimate is within
//! `width/2 ≤ lower/32` of any sample in the bucket, giving a **relative
//! error bound of 1/32 = 3.125%** ([`REL_ERROR`]) — and estimates are
//! *exact* for values below 32, where buckets are single integers. The
//! proptests in `crates/telemetry/tests/histogram.rs` pin this bound
//! against exact nearest-rank quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per power-of-two octave.
pub const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Largest exponent before clamping: values ≥ 2^(MAX_EXP+1) share the
/// top bucket.
const MAX_EXP: u32 = 39;
/// Largest distinguishable value; anything above is clamped into the
/// top bucket (≈ 18.3 minutes when values are nanoseconds).
pub const MAX_VALUE: u64 = (1u64 << (MAX_EXP + 1)) - 1;
/// Total bucket count: 16 exact unit buckets, then 16 sub-buckets per
/// octave for exponents 4..=39.
pub const NUM_BUCKETS: usize = (MAX_EXP - SUB_BITS + 2) as usize * SUB;
/// Documented worst-case relative error of [`Histogram::quantile`]
/// estimates: half of the maximum relative bucket width, `1/32`.
/// (Estimates are exact for values below 32.)
pub const REL_ERROR: f64 = 1.0 / 32.0;

/// The bucket index for `value` (clamping at [`MAX_VALUE`]).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    let v = value.min(MAX_VALUE);
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let group = (exp - SUB_BITS + 1) as usize;
    let sub = (v >> (exp - SUB_BITS)) as usize & (SUB - 1);
    group * SUB + sub
}

/// The half-open value range `[lower, upper)` covered by bucket `index`.
///
/// Panics if `index >= `[`NUM_BUCKETS`].
#[inline]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index < SUB {
        return (index as u64, index as u64 + 1);
    }
    let group = index / SUB;
    let sub = (index % SUB) as u64;
    let shift = group as u32 - 1; // == exp - SUB_BITS
    let lower = (SUB as u64 + sub) << shift;
    (lower, lower + (1u64 << shift))
}

/// One non-empty bucket as reported by [`Histogram::nonzero_buckets`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive lower bound of the bucket's value range.
    pub lower: u64,
    /// Exclusive upper bound of the bucket's value range.
    pub upper: u64,
    /// Number of samples recorded into this bucket.
    pub count: u64,
}

/// A plain (non-atomic) log-bucketed histogram: the snapshot and
/// registry-internal representation. See the module docs for the bucket
/// layout and error bound.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram. Allocates the full bucket array
    /// ([`NUM_BUCKETS`] `u64`s ≈ 4.7 KB) up front.
    pub fn new() -> Histogram {
        Histogram { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value (used when a per-batch
    /// duration is attributed once per request in the batch).
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`. Merging is exact
    /// (bucket-wise addition): associative, commutative, and
    /// count/sum/min/max-conserving, so per-thread histograms can be
    /// combined in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (exact; `0` when empty).
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest recorded value (exact; `0` when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum as f64 / self.count as f64 }
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) using
    /// nearest-rank bucket selection and midpoint interpolation, clamped
    /// into the exact `[min, max]`. Within [`REL_ERROR`] (3.125%)
    /// relative error of the exact nearest-rank value; exact for values
    /// below 32. Returns `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum > rank {
                let (lower, upper) = bucket_bounds(idx);
                let est = lower + (upper - lower) / 2;
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = HistBucket> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(idx, &c)| {
            let (lower, upper) = bucket_bounds(idx);
            HistBucket { lower, upper, count: c }
        })
    }
}

/// The concurrent log-bucketed histogram: a fixed array of relaxed
/// `AtomicU64` buckets plus exact count/sum/min/max, recordable from any
/// number of threads without locks and snapshottable into a plain
/// [`Histogram`]. Memory is constant (≈ 4.7 KB) regardless of sample
/// volume; a record is a handful of relaxed atomic RMW ops.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty concurrent histogram.
    pub fn new() -> LatencyHistogram {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed atomics only; safe from any thread).
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        // Saturating (not wrapping) so a snapshot always agrees with the
        // plain histogram of the same samples.
        let add = value.saturating_mul(n);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(add)));
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain [`Histogram`]. Concurrent
    /// records may land between field loads, so a snapshot taken while
    /// writers are active is approximate at the margin (each bucket is
    /// individually consistent); snapshots after writers quiesce are
    /// exact.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotonic() {
        // Every bucket's upper bound is the next bucket's lower bound.
        for idx in 0..NUM_BUCKETS - 1 {
            let (_, upper) = bucket_bounds(idx);
            let (next_lower, _) = bucket_bounds(idx + 1);
            assert_eq!(upper, next_lower, "gap/overlap at bucket {idx}");
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, MAX_VALUE + 1);
    }

    #[test]
    fn bucket_index_respects_bounds() {
        for v in (0..4096u64).chain([u64::MAX, MAX_VALUE, MAX_VALUE + 1, 1 << 39, (1 << 40) - 7]) {
            let idx = bucket_index(v);
            let (lower, upper) = bucket_bounds(idx);
            let clamped = v.min(MAX_VALUE);
            assert!(
                lower <= clamped && clamped < upper,
                "value {v} -> bucket {idx} [{lower},{upper})"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        for (i, b) in h.nonzero_buckets().enumerate() {
            assert_eq!((b.lower, b.upper, b.count), (i as u64, i as u64 + 1, 1));
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn quantile_within_documented_bound() {
        let mut h = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 1u64;
        for i in 0..5000u64 {
            // Deterministic spread over ~6 decades.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 24) % 10u64.pow((i % 7) as u32);
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((exact.len() - 1) as f64 * q).round() as usize;
            let want = exact[rank];
            let got = h.quantile(q);
            let tol = (want as f64 * REL_ERROR).max(1.0);
            assert!(
                (got as f64 - want as f64).abs() <= tol,
                "q={q}: got {got}, exact {want}, tol {tol}"
            );
        }
    }

    #[test]
    fn merge_conserves_and_matches_single() {
        let values = [3u64, 17, 17, 900, 1_000_000, 12, 88_000, 5];
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        assert_eq!(ab.count(), values.len() as u64);
        assert_eq!(ab.sum(), values.iter().sum::<u64>());
        assert_eq!(ab.min(), 3);
        assert_eq!(ab.max(), 1_000_000);
    }

    #[test]
    fn atomic_histogram_matches_plain_across_threads() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i * 37);
                    }
                });
            }
        });
        let snap = h.snapshot();
        let mut plain = Histogram::new();
        for t in 0..4u64 {
            for i in 0..1000u64 {
                plain.record(t * 1000 + i * 37);
            }
        }
        assert_eq!(snap, plain);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(777, 5);
        let mut b = Histogram::new();
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a, b);
    }
}
