//! Property tests pinning the log-bucketed histogram invariants the
//! serving observability layer depends on (DESIGN.md §17): merge is
//! associative and order-independent, recorded counts/sums are
//! conserved, every quantile estimate is within the documented bucket
//! error bound of the exact nearest-rank value, and the concurrent
//! [`LatencyHistogram`] agrees with the plain [`Histogram`].

use proptest::prelude::*;

use mbssl_telemetry::hist::{bucket_bounds, bucket_index, MAX_VALUE, NUM_BUCKETS, REL_ERROR};
use mbssl_telemetry::{Histogram, LatencyHistogram};

/// Values spanning the full dynamic range: exact small buckets,
/// approximate log buckets, and the clamp region above `MAX_VALUE`
/// (the in-repo proptest shim has no `prop_oneof!`, so variants are
/// picked by mapping a `(selector, raw)` tuple).
fn value_strategy() -> impl Strategy<Value = u64> {
    (0u64..6, 0u64..u64::MAX).prop_map(|(pick, raw)| match pick {
        0 => raw % 64,                              // exact single-integer buckets
        1 => 64 + raw % (100_000 - 64),             // µs-scale latencies
        2 => 100_000 + raw % 9_999_900_000,         // ms..10s-scale latencies
        3 => MAX_VALUE,
        4 => MAX_VALUE + 1,
        _ => u64::MAX,
    })
}

/// Like [`value_strategy`] but only values below the clamp, so exact
/// quantiles are comparable without the documented clamp caveat.
fn in_range_value() -> impl Strategy<Value = u64> {
    (0u64..3, 0u64..u64::MAX).prop_map(|(pick, raw)| match pick {
        0 => raw % 64,
        1 => 64 + raw % (100_000 - 64),
        _ => 100_000 + raw % 9_999_900_000,
    })
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

proptest! {
    /// Every value lands in a bucket whose bounds contain it (after the
    /// documented clamp at `MAX_VALUE`).
    #[test]
    fn bucket_index_consistent_with_bounds(v in 0u64..=u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        let (lower, upper) = bucket_bounds(idx);
        let clamped = v.min(MAX_VALUE);
        prop_assert!(lower <= clamped && clamped < upper,
            "value {v} -> bucket {idx} [{lower},{upper})");
    }

    /// Count and sum are conserved across recording and merging, and
    /// merging is associative and order-independent: any partition of
    /// the samples into three histograms merges back to the histogram
    /// of the whole, regardless of grouping or order.
    #[test]
    fn merge_is_associative_and_conserving(
        values in prop::collection::vec(value_strategy(), 1..200),
        split in prop::collection::vec(0u8..3, 1..200)
    ) {
        let mut whole = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            parts[split[i % split.len()] as usize % 3].record(v);
        }
        // (a ∪ b) ∪ c
        let mut abc = parts[0].clone();
        abc.merge(&parts[1]);
        abc.merge(&parts[2]);
        // c ∪ (b ∪ a)
        let mut ba = parts[1].clone();
        ba.merge(&parts[0]);
        let mut cba = parts[2].clone();
        cba.merge(&ba);
        prop_assert_eq!(&abc, &whole);
        prop_assert_eq!(&cba, &whole);
        prop_assert_eq!(whole.count(), values.len() as u64);
        let clamped_sum: u64 = values.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(whole.sum(), clamped_sum);
        prop_assert_eq!(whole.min(), *values.iter().min().unwrap());
        prop_assert_eq!(whole.max(), *values.iter().max().unwrap());
    }

    /// Quantile estimates stay within the documented relative error
    /// bound (`REL_ERROR` = 1/32, plus one integer of slack for the
    /// nearest-rank rounding) of the exact nearest-rank quantile —
    /// values above `MAX_VALUE` are excluded because the histogram
    /// documents clamping there.
    #[test]
    fn quantiles_within_documented_bound(
        values in prop::collection::vec(in_range_value(), 1..300),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8)
    ) {
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        for &v in &values {
            h.record(v);
        }
        sorted.sort_unstable();
        for &q in &qs {
            let want = exact_quantile(&sorted, q);
            let got = h.quantile(q);
            let tol = (want as f64 * REL_ERROR).max(1.0);
            prop_assert!(
                (got as f64 - want as f64).abs() <= tol,
                "q={q}: histogram {got} vs exact {want} (tol {tol})"
            );
        }
    }

    /// The lock-free histogram snapshots to exactly the plain histogram
    /// of the same samples, including when recorded with multiplicity.
    #[test]
    fn atomic_matches_plain(
        samples in prop::collection::vec((value_strategy(), 1u64..5), 0..100)
    ) {
        let atomic = LatencyHistogram::new();
        let mut plain = Histogram::new();
        for &(v, n) in &samples {
            atomic.record_n(v, n);
            plain.record_n(v, n);
        }
        prop_assert_eq!(atomic.snapshot(), plain);
    }
}
