//! Round-trip property tests for the hand-rolled JSONL writer: every
//! record produced by `record_to_jsonl` / `meta_record_with` /
//! `progress_record` must parse back through the workspace `serde_json`
//! parser with all string fields byte-identical — across quotes,
//! backslashes, control characters, and non-ASCII text.
//!
//! This pins the escaping contract between the telemetry writer (which
//! formats JSON by hand to stay dependency-free) and the reader used by
//! `mbssl trace summary`/`diff` (the serde-shim `Value` parser).

use proptest::prelude::*;

use mbssl_telemetry::{meta_record_with, progress_record, record_to_jsonl, LabelStats, RecordKind};
use serde::value::Value;

/// Characters chosen to stress the escaper: JSON-significant punctuation,
/// every escape class (quote, backslash, control, DEL-adjacent), multi-byte
/// UTF-8, and the `;`/space separators the collapsed-stack format uses.
const CHARSET: &[char] = &[
    'a', 'Z', '0', ' ', ';', ':', ',', '{', '}', '[', ']', '"', '\\', '/', '\n', '\r', '\t',
    '\u{0}', '\u{1}', '\u{8}', '\u{c}', '\u{1f}', '\u{7f}', 'é', 'ß', '漢', '🦀',
];

fn string_from(indices: Vec<usize>) -> String {
    indices.into_iter().map(|i| CHARSET[i % CHARSET.len()]).collect()
}

fn obj_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, val)| val),
        _ => None,
    }
}

fn get_str(v: &Value, key: &str) -> String {
    match obj_get(v, key) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("field {key} is not a string: {other:?}"),
    }
}

fn get_num(v: &Value, key: &str) -> f64 {
    match obj_get(v, key) {
        Some(Value::Num(n)) => *n,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

fn span_stats(label: String, parent: String, count: u64, total_ns: u64, bytes: u64) -> LabelStats {
    LabelStats {
        label,
        parent,
        kind: RecordKind::Span,
        count,
        total_ns,
        min_ns: total_ns.min(1),
        max_ns: total_ns,
        p50_ns: total_ns / 2,
        p90_ns: total_ns,
        p99_ns: total_ns,
        bytes,
        value: 0,
    }
}

proptest! {
    #[test]
    fn span_records_roundtrip(
        label_idx in prop::collection::vec(0usize..1000, 1..24),
        parent_idx in prop::collection::vec(0usize..1000, 0..24),
        section_idx in prop::collection::vec(0usize..1000, 0..12),
        // u64 survives the f64-backed Value only below 2^53; the writer's
        // integers are nanosecond/byte counts that stay far below that in
        // practice, so the contract is pinned for that range.
        count in 0u64..(1 << 53),
        total_ns in 0u64..(1 << 53),
        bytes in 0u64..(1 << 53)
    ) {
        let label = string_from(label_idx);
        let parent = string_from(parent_idx);
        let section = string_from(section_idx);
        let rec = span_stats(label.clone(), parent.clone(), count, total_ns, bytes);
        let line = record_to_jsonl(&rec, &section);
        let v: Value = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("unparseable span record: {e}\n{line}"));
        prop_assert_eq!(get_str(&v, "kind"), "span".to_string());
        prop_assert_eq!(get_str(&v, "section"), section);
        prop_assert_eq!(get_str(&v, "label"), label);
        prop_assert_eq!(get_str(&v, "parent"), parent);
        prop_assert_eq!(get_num(&v, "count"), count as f64);
        prop_assert_eq!(get_num(&v, "total_ns"), total_ns as f64);
        prop_assert_eq!(get_num(&v, "p50_ns"), (total_ns / 2) as f64);
        prop_assert_eq!(get_num(&v, "p99_ns"), total_ns as f64);
        prop_assert_eq!(get_num(&v, "bytes"), bytes as f64);
    }

    #[test]
    fn counter_records_roundtrip(
        label_idx in prop::collection::vec(0usize..1000, 1..24),
        value in 0u64..(1 << 53),
        is_gauge in 0u8..2
    ) {
        let label = string_from(label_idx);
        let kind = if is_gauge == 1 { RecordKind::Gauge } else { RecordKind::Counter };
        let rec = LabelStats {
            label: label.clone(),
            parent: String::new(),
            kind,
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            p50_ns: 0,
            p90_ns: 0,
            p99_ns: 0,
            bytes: 0,
            value,
        };
        let line = record_to_jsonl(&rec, "bench");
        let v: Value = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("unparseable counter record: {e}\n{line}"));
        prop_assert_eq!(
            get_str(&v, "kind"),
            if is_gauge == 1 { "gauge" } else { "counter" }.to_string()
        );
        prop_assert_eq!(get_str(&v, "label"), label);
        prop_assert_eq!(get_num(&v, "value"), value as f64);
        // Counters and gauges carry no parent edge.
        prop_assert!(obj_get(&v, "parent").is_none());
    }

    #[test]
    fn meta_records_roundtrip(
        section_idx in prop::collection::vec(0usize..1000, 0..12),
        rev_idx in prop::collection::vec(0usize..1000, 0..16),
        key_idx in prop::collection::vec(0usize..1000, 1..10),
        val_idx in prop::collection::vec(0usize..1000, 0..16),
        with_rev in 0u8..2
    ) {
        let section = string_from(section_idx);
        let rev = string_from(rev_idx);
        // Env keys collide after the charset-fold; one adversarial pair and
        // one fixed pair keeps the object well-formed with distinct keys.
        let key = format!("MBSSL_{}", string_from(key_idx));
        let val = string_from(val_idx);
        let env = vec![
            (key.clone(), val.clone()),
            ("MBSSL_THREADS".to_string(), "4".to_string()),
        ];
        let rev_opt = if with_rev == 1 { Some(rev.as_str()) } else { None };
        let line = meta_record_with(&section, rev_opt, &env);
        let v: Value = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("unparseable meta record: {e}\n{line}"));
        prop_assert_eq!(get_str(&v, "kind"), "meta".to_string());
        prop_assert_eq!(get_str(&v, "section"), section);
        match (with_rev == 1, obj_get(&v, "git_rev")) {
            (true, Some(Value::Str(s))) => prop_assert_eq!(s.clone(), rev),
            (false, Some(Value::Null)) => {}
            other => panic!("bad git_rev field: {other:?}\n{line}"),
        }
        let env_obj = obj_get(&v, "env").expect("meta lacks env");
        prop_assert_eq!(get_str(env_obj, &key), val);
        prop_assert_eq!(get_str(env_obj, "MBSSL_THREADS"), "4".to_string());
    }

    #[test]
    fn progress_records_roundtrip(
        msg_idx in prop::collection::vec(0usize..1000, 0..48)
    ) {
        let message = string_from(msg_idx);
        let line = progress_record(&message);
        let v: Value = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("unparseable progress record: {e}\n{line}"));
        prop_assert_eq!(get_str(&v, "kind"), "progress".to_string());
        prop_assert_eq!(get_str(&v, "message"), message);
        prop_assert!(get_num(&v, "unix_time_s") > 0.0);
    }
}
