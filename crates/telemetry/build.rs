//! Embeds the git revision at compile time (`MBSSL_BUILD_GIT_REV`) so
//! traces and run ledgers cut by a binary stamp the revision it was built
//! from — not whatever repository the process happens to be started in,
//! which is what the old runtime `git rev-parse` subprocess reported. At
//! runtime `MBSSL_GIT_REV` overrides the embedded value (see `git_rev`).

use std::process::Command;

fn main() {
    println!("cargo:rerun-if-env-changed=MBSSL_GIT_REV");
    let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_default();
    // Re-run when the checkout's HEAD moves so the embedded rev stays
    // current (harmless no-ops outside a git checkout).
    println!("cargo:rerun-if-changed={manifest_dir}/../../.git/HEAD");
    let rev = Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(&manifest_dir)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    if let Some(rev) = rev {
        println!("cargo:rustc-env=MBSSL_BUILD_GIT_REV={rev}");
    }
}
