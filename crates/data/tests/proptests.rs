//! Property-based tests on the data substrate: generator invariants,
//! split correctness, sampler guarantees, and augmentation laws.

use proptest::prelude::*;

use mbssl_data::augment::AugmentOp;
use mbssl_data::preprocess::{k_core, leave_one_out, SplitConfig};
use mbssl_data::sampler::{NegativeSampler, NegativeStrategy};
use mbssl_data::synthetic::SyntheticConfig;
use mbssl_data::{Behavior, Sequence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_dataset(seed: u64) -> mbssl_data::Dataset {
    SyntheticConfig {
        num_users: 30,
        num_items: 60,
        num_topics: 5,
        mean_events_per_user: 25,
        ..SyntheticConfig::taobao_like(seed)
    }
    .generate()
    .dataset
}

fn arb_sequence() -> impl Strategy<Value = Sequence> {
    prop::collection::vec((1u32..50, 0usize..4), 1..40).prop_map(|events| {
        let mut s = Sequence::new();
        for (item, b) in events {
            s.push(item, Behavior::ALL[b]);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_datasets_always_validate(seed in 0u64..500) {
        let d = tiny_dataset(seed);
        prop_assert!(d.validate().is_ok());
    }

    #[test]
    fn split_targets_are_target_behavior_events(seed in 0u64..100) {
        let d = tiny_dataset(seed);
        let split = leave_one_out(&d, &SplitConfig::default());
        // Every eval target must be an item the user interacted with via
        // the target behavior at some point.
        for inst in split.test.iter().chain(split.val.iter()) {
            let seq = &d.sequences[inst.user as usize];
            let has = seq
                .items
                .iter()
                .zip(seq.behaviors.iter())
                .any(|(&it, &b)| it == inst.target && b == d.target_behavior);
            prop_assert!(has, "target not in user's target-behavior events");
        }
    }

    #[test]
    fn split_histories_never_exceed_max_len(
        seed in 0u64..50,
        max_len in 1usize..30
    ) {
        let d = tiny_dataset(seed);
        let cfg = SplitConfig { max_seq_len: max_len, ..SplitConfig::default() };
        let split = leave_one_out(&d, &cfg);
        for inst in &split.train {
            prop_assert!(inst.history.len() <= max_len);
        }
        for inst in split.test.iter().chain(split.val.iter()) {
            prop_assert!(inst.history.len() <= max_len);
        }
    }

    #[test]
    fn k_core_never_increases_counts(seed in 0u64..50, k in 1usize..8) {
        let d = tiny_dataset(seed);
        let filtered = k_core(&d, k, k);
        prop_assert!(filtered.num_users <= d.num_users);
        prop_assert!(filtered.num_items <= d.num_items);
        prop_assert!(filtered.num_interactions() <= d.num_interactions());
        prop_assert!(filtered.validate().is_ok());
    }

    #[test]
    fn negatives_never_equal_positive(seed in 0u64..50, n in 1usize..20) {
        let d = tiny_dataset(seed);
        let sampler = NegativeSampler::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(seed);
        let user = (seed % d.num_users as u64) as u32;
        let target = 1 + (seed % d.num_items as u64) as u32;
        let negs = sampler.sample_n(user, target, n, NegativeStrategy::Uniform, &mut rng);
        prop_assert_eq!(negs.len(), n);
        prop_assert!(!negs.contains(&target));
        // Distinctness.
        let mut sorted = negs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n);
    }

    #[test]
    fn augmentations_preserve_invariants(seq in arb_sequence(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for op in [
            AugmentOp::Crop { ratio: 0.5 },
            AugmentOp::Mask { ratio: 0.4 },
            AugmentOp::Reorder { ratio: 0.5 },
            AugmentOp::BehaviorSubstitute { ratio: 0.5, deeper: Behavior::Favorite },
        ] {
            let out = op.apply(&seq, &mut rng);
            // Never empty, never longer than the input.
            prop_assert!(!out.is_empty());
            prop_assert!(out.len() <= seq.len());
            // Items always drawn from the original item multiset.
            for it in &out.items {
                prop_assert!(seq.items.contains(it));
            }
            // Parallel arrays stay parallel.
            prop_assert_eq!(out.items.len(), out.behaviors.len());
        }
    }

    #[test]
    fn crop_preserves_relative_order(seq in arb_sequence(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = AugmentOp::Crop { ratio: 0.6 }.apply(&seq, &mut rng);
        // The cropped sequence must be a contiguous subsequence.
        if out.len() < seq.len() {
            let found = (0..=(seq.len() - out.len())).any(|start| {
                seq.items[start..start + out.len()] == out.items[..]
                    && seq.behaviors[start..start + out.len()] == out.behaviors[..]
            });
            prop_assert!(found, "crop output is not a contiguous window");
        }
    }

    #[test]
    fn generation_events_counts_bounded(seed in 0u64..50) {
        let cfg = SyntheticConfig {
            num_users: 20,
            num_items: 50,
            num_topics: 5,
            mean_events_per_user: 20,
            ..SyntheticConfig::taobao_like(seed)
        };
        let d = cfg.generate().dataset;
        // Each user has at least lo clicks and at most hi exposures × max
        // funnel depth events.
        for seq in &d.sequences {
            prop_assert!(!seq.is_empty());
            prop_assert!(seq.len() <= 20 * 3 / 2 * 5);
        }
    }
}
