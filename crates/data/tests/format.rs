//! Hostile-input and roundtrip properties of the `.mbds` on-disk format
//! (DESIGN.md §16).
//!
//! The contract under test: `MbdsFile::open` either returns a handle whose
//! materialized [`Dataset`] passes `validate()`, or a typed [`FormatError`]
//! — never a panic, never an out-of-bounds read. Every truncation length,
//! single-byte corruption, and targeted header/column mutation must land on
//! one side of that line.
//!
//! The section-offset arithmetic is deliberately re-derived here from the
//! DESIGN.md §16 prose instead of calling into the crate, so these tests
//! double as a conformance check that the spec matches the implementation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use mbssl_data::format::{write_mbds, FormatError, MbdsFile, HEADER_LEN, MAGIC, VERSION};
use mbssl_data::io::{load_tsv, save_tsv};
use mbssl_data::preprocess::{convert_tsv_streaming, k_core};
use mbssl_data::synthetic::SyntheticConfig;
use mbssl_data::Dataset;

/// Fresh scratch path per call; unique across parallel test threads.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "mbssl-format-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn tiny_dataset(seed: u64, preset: usize) -> Dataset {
    let base = match preset {
        0 => SyntheticConfig::taobao_like(seed),
        1 => SyntheticConfig::yelp_like(seed),
        _ => SyntheticConfig::tmall_like(seed),
    };
    SyntheticConfig {
        num_users: 25,
        num_items: 50,
        num_topics: 5,
        mean_events_per_user: 20,
        ..base
    }
    .generate()
    .dataset
}

/// Writes `seed`'s tiny dataset and returns its raw bytes (plus the path the
/// mutated copies reuse).
fn valid_file_bytes(seed: u64, preset: usize) -> (Dataset, Vec<u8>) {
    let d = tiny_dataset(seed, preset);
    let path = scratch("valid");
    write_mbds(&d, &path).expect("write");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    (d, bytes)
}

fn open_bytes(bytes: &[u8]) -> Result<MbdsFile, FormatError> {
    let path = scratch("mutated");
    std::fs::write(&path, bytes).expect("write mutated");
    let out = MbdsFile::open(&path);
    std::fs::remove_file(&path).ok();
    out
}

/// §16 section arithmetic, re-derived from the spec prose: little-endian
/// header counts at fixed offsets, sections 8-aligned, final section
/// unpadded.
struct SpecLayout {
    items_at: usize,
    behaviors_at: usize,
}

fn spec_layout(bytes: &[u8]) -> SpecLayout {
    let align8 = |x: usize| (x + 7) & !7;
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    let num_users = u64_at(16);
    let num_events = u64_at(32);
    let name_len = u32_at(44);
    let offsets_at = align8(HEADER_LEN as usize + name_len);
    let items_at = align8(offsets_at + (num_users + 1) * 8);
    let behaviors_at = align8(items_at + num_events * 4);
    SpecLayout { items_at, behaviors_at }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Write → open → materialize reproduces every column of the source
    // dataset, across behavior schemas (taobao/yelp/tmall presets).
    #[test]
    fn roundtrip_preserves_every_column(seed in 0u64..200, preset in 0usize..3) {
        let (d, bytes) = valid_file_bytes(seed, preset);
        let file = open_bytes(&bytes).expect("valid file must open");
        prop_assert_eq!(file.name(), d.name.as_str());
        prop_assert_eq!(file.num_users(), d.num_users);
        prop_assert_eq!(file.num_items(), d.num_items);
        prop_assert_eq!(file.num_events(), d.num_interactions());
        prop_assert_eq!(file.behaviors(), d.behaviors.as_slice());
        prop_assert_eq!(file.target_behavior(), d.target_behavior);
        let back = file.to_dataset();
        prop_assert_eq!(back.sequences, d.sequences);
    }

    // Flipping any single byte either yields a typed error or a file whose
    // materialized dataset still validates (timestamp/name/in-range column
    // edits are legitimately accepted) — and never panics.
    #[test]
    fn single_byte_corruption_never_breaks_the_contract(
        seed in 0u64..50,
        preset in 0usize..3,
        at_frac in 0.0f64..1.0,
        val in 0u8..=255,
    ) {
        let (_, mut bytes) = valid_file_bytes(seed, preset);
        let at = ((bytes.len() - 1) as f64 * at_frac) as usize;
        // Always flip to a *different* value (the shim has no prop_assume).
        let val = if bytes[at] == val { val.wrapping_add(1) } else { val };
        bytes[at] = val;
        match open_bytes(&bytes) {
            Ok(file) => prop_assert!(file.to_dataset().validate().is_ok(),
                "accepted a corrupt file that materializes an invalid dataset (byte {at})"),
            Err(_) => {} // typed rejection is the expected common case
        }
    }

    // Streaming conversion of a user-sorted TSV is exactly the in-memory
    // load_tsv + k_core pipeline, across presets and core thresholds.
    #[test]
    fn streaming_convert_equals_in_memory_pipeline(
        seed in 0u64..40,
        preset in 0usize..3,
        k in 2usize..5,
    ) {
        let d = tiny_dataset(seed, preset);
        let tsv = scratch("conv-tsv");
        let out = scratch("conv-mbds");
        save_tsv(&d, &tsv).expect("save tsv");
        let report = convert_tsv_streaming(&tsv, &out, d.target_behavior, k, k)
            .expect("streaming convert");
        let expected = k_core(&load_tsv(&tsv, d.target_behavior).expect("load tsv"), k, k);
        let file = MbdsFile::open(&out).expect("open converted");
        prop_assert_eq!(file.num_users(), expected.num_users);
        prop_assert_eq!(file.num_items(), expected.num_items);
        prop_assert_eq!(file.behaviors(), expected.behaviors.as_slice());
        prop_assert_eq!(report.events_out as usize, expected.num_interactions());
        prop_assert_eq!(file.to_dataset().sequences, expected.sequences);
        std::fs::remove_file(&tsv).ok();
        std::fs::remove_file(&out).ok();
    }
}

// Every proper prefix of a valid file is rejected with a typed error —
// exhaustive over all lengths, not sampled, so every section boundary and
// every mid-section cut is covered.
#[test]
fn every_truncation_is_rejected() {
    let (_, bytes) = valid_file_bytes(7, 0);
    for len in 0..bytes.len() {
        match open_bytes(&bytes[..len]) {
            Err(FormatError::Truncated { needed, actual }) => {
                assert_eq!(actual, len as u64, "truncation at {len}");
                assert!(needed > actual, "truncation at {len}");
            }
            Err(_) => {} // shorter prefixes can die on other typed checks
            Ok(_) => panic!("prefix of {len}/{} bytes was accepted", bytes.len()),
        }
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let (_, mut bytes) = valid_file_bytes(7, 0);
    bytes.push(0);
    match open_bytes(&bytes) {
        Err(FormatError::Corrupt(msg)) => assert!(msg.contains("trailing"), "{msg}"),
        other => panic!("expected Corrupt(trailing), got {other:?}"),
    }
}

#[test]
fn bad_magic_and_version_are_typed() {
    let (_, bytes) = valid_file_bytes(7, 0);
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(open_bytes(&wrong_magic), Err(FormatError::BadMagic)));
    let mut wrong_version = bytes.clone();
    wrong_version[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert!(matches!(
        open_bytes(&wrong_version),
        Err(FormatError::BadVersion(v)) if v == VERSION + 1
    ));
    assert_eq!(&bytes[0..8], MAGIC);
}

// Targeted column corruption through the §16 offsets: an item id above
// num_items and an undeclared behavior code must both be Corrupt, with the
// offending event named.
#[test]
fn out_of_range_ids_are_corrupt() {
    let (_, bytes) = valid_file_bytes(7, 0);
    let lay = spec_layout(&bytes);

    let mut big_item = bytes.clone();
    big_item[lay.items_at..lay.items_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    match open_bytes(&big_item) {
        Err(FormatError::Corrupt(msg)) => {
            assert!(msg.contains("item id") && msg.contains("event 0"), "{msg}")
        }
        other => panic!("expected Corrupt(item id), got {other:?}"),
    }

    let mut zero_item = bytes.clone();
    zero_item[lay.items_at..lay.items_at + 4].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(open_bytes(&zero_item), Err(FormatError::Corrupt(_))));

    let mut bad_behavior = bytes;
    bad_behavior[lay.behaviors_at] = 7;
    match open_bytes(&bad_behavior) {
        Err(FormatError::Corrupt(msg)) => {
            assert!(msg.contains("behavior code 7"), "{msg}")
        }
        other => panic!("expected Corrupt(behavior code), got {other:?}"),
    }
}
