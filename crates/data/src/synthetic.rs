//! Synthetic multi-behavior dataset generator.
//!
//! Real benchmark logs (Taobao / Tmall / Yelp) are license-gated downloads,
//! so the experiment suite runs on a seeded generative simulator that plants
//! exactly the structures the reproduced model claims to exploit:
//!
//! 1. **Multi-interest users**: each user mixes `interests_per_user` latent
//!    topics; items belong to topics. Ground truth is exported for
//!    interest-recovery analyses.
//! 2. **Behavior funnel**: every exposure is a click; deeper behaviors
//!    (cart → favorite → purchase) fire with decreasing conditional
//!    probability, matching the published sparsity ratios of e-commerce
//!    logs.
//! 3. **Noisy shallow feedback**: a configurable fraction of clicks is
//!    interest-agnostic noise (mis-clicks, curiosity). Noisy clicks never
//!    convert, so deep behaviors are clean — the asymmetry multi-behavior
//!    denoising methods rely on.
//! 4. **Zipfian popularity** and **interest drift** over time.
//!
//! Determinism: the full dataset is a pure function of the config
//! (including `seed`).

#![allow(clippy::needless_range_loop)] // multi-array index loops are clearer here

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Gamma, Zipf};
use serde::{Deserialize, Serialize};

use crate::types::{Behavior, Dataset, ItemId, Sequence};

/// Configuration of the generative simulator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Dataset name recorded in the output.
    pub name: String,
    /// Number of simulated users.
    pub num_users: usize,
    /// Catalog size (item ids `1..=num_items`).
    pub num_items: usize,
    /// Number of latent topics items are grouped into.
    pub num_topics: usize,
    /// True interests (distinct topics) per user.
    pub interests_per_user: usize,
    /// Zipf exponent of within-topic item popularity (≈0.8–1.2 realistic).
    pub zipf_exponent: f64,
    /// Mean number of exposures (clicks) per user; actual lengths vary
    /// ±50% uniformly.
    pub mean_events_per_user: usize,
    /// Conditional funnel probabilities, e.g. `[(Cart, 0.3),
    /// (Favorite, 0.5), (Purchase, 0.5)]` means cart|click=0.3,
    /// favorite|cart=0.5, purchase|favorite=0.5. Behaviors must be a
    /// prefix-free chain in funnel order. `Click` is implicit.
    pub funnel: Vec<(Behavior, f64)>,
    /// Probability a click is interest-agnostic noise.
    pub click_noise: f64,
    /// Probability of switching the active interest between consecutive
    /// exposures.
    pub interest_drift: f64,
    /// Which behavior the task predicts.
    pub target_behavior: Behavior,
    /// RNG seed; equal configs generate byte-identical logs.
    pub seed: u64,
}

/// Ground-truth latent structure, for analysis and tests.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Topic of each item (index 0 unused — item ids start at 1).
    pub item_topic: Vec<usize>,
    /// Each user's interest topics.
    pub user_interests: Vec<Vec<usize>>,
    /// Each user's interest mixture weights (parallel to `user_interests`).
    pub user_weights: Vec<Vec<f64>>,
    /// Per-event noise flags, parallel to the dataset sequences:
    /// `true` = the event came from the noise process, not an interest.
    pub noise_flags: Vec<Vec<bool>>,
}

/// Generator output: the dataset plus its latent ground truth.
pub struct Generated {
    /// The materialized event log.
    pub dataset: Dataset,
    /// The latent structure that produced it.
    pub truth: GroundTruth,
}

impl SyntheticConfig {
    /// A Taobao-style preset: four behaviors, deep funnel, noisy clicks.
    pub fn taobao_like(seed: u64) -> Self {
        SyntheticConfig {
            name: "taobao-like".into(),
            num_users: 1200,
            num_items: 2400,
            num_topics: 24,
            interests_per_user: 4,
            zipf_exponent: 1.0,
            mean_events_per_user: 90,
            funnel: vec![
                (Behavior::Cart, 0.30),
                (Behavior::Favorite, 0.45),
                (Behavior::Purchase, 0.50),
            ],
            click_noise: 0.25,
            interest_drift: 0.15,
            target_behavior: Behavior::Purchase,
            seed,
        }
    }

    /// A Tmall-style preset: click + favorite, favorite as target.
    pub fn tmall_like(seed: u64) -> Self {
        SyntheticConfig {
            name: "tmall-like".into(),
            num_users: 1000,
            num_items: 2000,
            num_topics: 20,
            interests_per_user: 3,
            zipf_exponent: 1.1,
            mean_events_per_user: 70,
            funnel: vec![(Behavior::Favorite, 0.18)],
            click_noise: 0.35,
            interest_drift: 0.10,
            target_behavior: Behavior::Favorite,
            seed,
        }
    }

    /// A Yelp-style preset: sparser, fewer interests, lower noise.
    pub fn yelp_like(seed: u64) -> Self {
        SyntheticConfig {
            name: "yelp-like".into(),
            num_users: 900,
            num_items: 1600,
            num_topics: 16,
            interests_per_user: 2,
            zipf_exponent: 0.9,
            mean_events_per_user: 45,
            funnel: vec![(Behavior::Favorite, 0.25)],
            click_noise: 0.15,
            interest_drift: 0.08,
            target_behavior: Behavior::Favorite,
            seed,
        }
    }

    /// Scales the dataset by `factor`, for quick tests (`factor < 1`) or
    /// paper-scale runs (`factor > 1`).
    ///
    /// Users scale linearly but items scale by `factor^0.6`: total event
    /// volume is proportional to users, so shrinking the catalog as fast as
    /// the user base would *densify* the interaction matrix and hand
    /// memorization baselines (ItemKNN) an unrealistic advantage. The
    /// sub-linear item scaling keeps per-item interaction counts — the
    /// statistic that matters for sparsity — roughly in the real-log
    /// regime at every scale.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.num_users = ((self.num_users as f64 * factor) as usize).max(8);
        self.num_items = ((self.num_items as f64 * factor.powf(0.6)) as usize).max(16);
        self.num_topics = self.num_topics.min(self.num_items / 4).max(2);
        self
    }

    /// The substrate-scale regime: presets calibrated for the million-user
    /// `.mbds` experiments (DESIGN.md §16), with the Taobao-style funnel and
    /// a popularity Gini in the realistic 0.5–0.8 band at every size.
    ///
    /// Event volume is ~11 events/user (so 1M users ≈ 10M+ events); the
    /// catalog grows at `users / 25` (clamped) so per-item counts stay in
    /// the sparse real-log regime rather than densifying with scale.
    pub fn scale_regime(users: usize, seed: u64) -> Self {
        assert!(users >= 1000, "scale regime starts at 1k users");
        let num_items = (users / 25).clamp(200, 40_000);
        SyntheticConfig {
            name: format!("scale-{users}"),
            num_users: users,
            num_items,
            num_topics: ((users as f64).sqrt() as usize / 4).clamp(16, 128),
            interests_per_user: 4,
            zipf_exponent: 1.1,
            mean_events_per_user: 8,
            funnel: vec![
                (Behavior::Cart, 0.30),
                (Behavior::Favorite, 0.45),
                (Behavior::Purchase, 0.50),
            ],
            click_noise: 0.20,
            interest_drift: 0.12,
            target_behavior: Behavior::Purchase,
            seed,
        }
    }

    /// Full behavior set: Click plus the funnel behaviors.
    pub fn behavior_set(&self) -> Vec<Behavior> {
        let mut set = vec![Behavior::Click];
        set.extend(self.funnel.iter().map(|&(b, _)| b));
        set
    }

    /// Runs the simulator, materializing every sequence. Equivalent to
    /// collecting [`SyntheticConfig::for_each_user`]; use the streaming
    /// form at substrate scale to avoid holding 10M+ events in memory.
    pub fn generate(&self) -> Generated {
        let mut sequences = Vec::with_capacity(self.num_users);
        let mut noise_flags = Vec::with_capacity(self.num_users);
        let mut truth = self.for_each_user(|_, seq, flags| {
            sequences.push(seq);
            noise_flags.push(flags);
        });
        truth.noise_flags = noise_flags;
        let dataset = Dataset {
            name: self.name.clone(),
            num_users: self.num_users,
            num_items: self.num_items,
            behaviors: self.behavior_set(),
            target_behavior: self.target_behavior,
            sequences,
        };
        debug_assert!(dataset.validate().is_ok());
        Generated { dataset, truth }
    }

    /// Streams the simulator: invokes `f(user, sequence, noise_flags)` for
    /// each user in order, holding only O(users + items) latent state (the
    /// topic/interest world) — never the event log. The event stream is
    /// **identical** to [`SyntheticConfig::generate`] (same single-RNG draw
    /// order), so converting a streamed TSV/`.mbds` and a materialized
    /// dataset yields byte-identical files.
    ///
    /// Returns the latent [`GroundTruth`] with `noise_flags` left empty
    /// (the per-event flags were handed to the callback).
    pub fn for_each_user(&self, mut f: impl FnMut(usize, Sequence, Vec<bool>)) -> GroundTruth {
        assert!(self.num_topics >= 1 && self.num_topics <= self.num_items);
        assert!(self.interests_per_user >= 1 && self.interests_per_user <= self.num_topics);
        assert!((0.0..=1.0).contains(&self.click_noise));
        assert!((0.0..=1.0).contains(&self.interest_drift));
        let behaviors = self.behavior_set();
        assert!(
            behaviors.contains(&self.target_behavior),
            "target behavior must appear in the funnel"
        );
        let mut depth_sorted = self.funnel.clone();
        depth_sorted.sort_by_key(|&(b, _)| b.depth());
        assert_eq!(
            depth_sorted, self.funnel,
            "funnel must be listed in increasing depth"
        );

        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- Items: topic assignment + within-topic popularity ranks. ---
        // Round-robin topic assignment keeps topics balanced; popularity is
        // Zipf over the rank an item holds *within its topic*.
        let mut item_topic = vec![usize::MAX; self.num_items + 1];
        let mut topic_items: Vec<Vec<ItemId>> = vec![Vec::new(); self.num_topics];
        for item in 1..=self.num_items {
            let topic = rng.gen_range(0..self.num_topics);
            item_topic[item] = topic;
            topic_items[topic].push(item as ItemId);
        }
        // Guarantee no topic is empty (possible at tiny scales).
        for t in 0..self.num_topics {
            if topic_items[t].is_empty() {
                let item = rng.gen_range(1..=self.num_items);
                let old = item_topic[item];
                if topic_items[old].len() > 1 {
                    topic_items[old].retain(|&i| i as usize != item);
                    topic_items[t].push(item as ItemId);
                    item_topic[item] = t;
                }
            }
        }

        // --- Users: interest sets + mixture weights. ---
        let gamma = Gamma::new(1.0, 1.0).expect("valid gamma");
        let mut user_interests: Vec<Vec<usize>> = Vec::with_capacity(self.num_users);
        let mut user_weights: Vec<Vec<f64>> = Vec::with_capacity(self.num_users);
        for _ in 0..self.num_users {
            let mut topics: Vec<usize> = Vec::with_capacity(self.interests_per_user);
            while topics.len() < self.interests_per_user {
                let t = rng.gen_range(0..self.num_topics);
                if !topics.contains(&t) && !topic_items[t].is_empty() {
                    topics.push(t);
                }
            }
            let raw: Vec<f64> = (0..topics.len()).map(|_| gamma.sample(&mut rng) + 0.2).collect();
            let sum: f64 = raw.iter().sum();
            user_weights.push(raw.iter().map(|w| w / sum).collect());
            user_interests.push(topics);
        }

        // --- Event simulation, one user at a time. ---
        for u in 0..self.num_users {
            let lo = (self.mean_events_per_user / 2).max(4);
            let hi = (self.mean_events_per_user * 3 / 2).max(lo + 1);
            let n_events = rng.gen_range(lo..hi);
            let mut seq = Sequence::new();
            let mut flags = Vec::new();
            let interests = &user_interests[u];
            let weights = &user_weights[u];
            let mut active = sample_categorical(weights, &mut rng);
            for _ in 0..n_events {
                if rng.gen::<f64>() < self.interest_drift {
                    active = sample_categorical(weights, &mut rng);
                }
                let is_noise = rng.gen::<f64>() < self.click_noise;
                let item = if is_noise {
                    rng.gen_range(1..=self.num_items) as ItemId
                } else {
                    sample_topic_item(&topic_items[interests[active]], self.zipf_exponent, &mut rng)
                };
                seq.push(item, Behavior::Click);
                flags.push(is_noise);
                // Funnel cascade: only genuine-interest exposures convert.
                if !is_noise {
                    for &(behavior, p) in &self.funnel {
                        if rng.gen::<f64>() < p {
                            seq.push(item, behavior);
                            flags.push(false);
                        } else {
                            break;
                        }
                    }
                }
            }
            f(u, seq, flags);
        }

        GroundTruth {
            item_topic,
            user_interests,
            user_weights,
            noise_flags: Vec::new(),
        }
    }
}

/// Samples an index from unnormalized weights.
fn sample_categorical(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples an item from a topic with Zipfian rank popularity.
fn sample_topic_item(items: &[ItemId], exponent: f64, rng: &mut StdRng) -> ItemId {
    debug_assert!(!items.is_empty());
    if items.len() == 1 {
        return items[0];
    }
    let zipf = Zipf::new(items.len() as u64, exponent).expect("valid zipf");
    let rank = zipf.sample(rng) as usize - 1; // Zipf samples 1..=n
    items[rank.min(items.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            num_users: 50,
            num_items: 120,
            num_topics: 6,
            mean_events_per_user: 30,
            ..SyntheticConfig::taobao_like(7)
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.dataset.sequences, b.dataset.sequences);
        assert_eq!(a.truth.user_interests, b.truth.user_interests);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_config();
        let a = cfg.generate();
        cfg.seed = 8;
        let b = cfg.generate();
        assert_ne!(a.dataset.sequences, b.dataset.sequences);
    }

    #[test]
    fn dataset_validates() {
        let g = small_config().generate();
        g.dataset.validate().unwrap();
    }

    #[test]
    fn funnel_counts_decrease_with_depth() {
        let g = SyntheticConfig::taobao_like(3).scaled(0.3).generate();
        let d = &g.dataset;
        let clicks = d.count_behavior(Behavior::Click);
        let carts = d.count_behavior(Behavior::Cart);
        let favs = d.count_behavior(Behavior::Favorite);
        let buys = d.count_behavior(Behavior::Purchase);
        assert!(clicks > carts, "{clicks} !> {carts}");
        assert!(carts > favs, "{carts} !> {favs}");
        assert!(favs > buys, "{favs} !> {buys}");
        assert!(buys > 0);
    }

    #[test]
    fn noise_flags_align_with_sequences() {
        let g = small_config().generate();
        for (seq, flags) in g.dataset.sequences.iter().zip(g.truth.noise_flags.iter()) {
            assert_eq!(seq.len(), flags.len());
        }
    }

    #[test]
    fn deep_behaviors_are_never_noise() {
        let g = small_config().generate();
        for (seq, flags) in g.dataset.sequences.iter().zip(g.truth.noise_flags.iter()) {
            for (i, &b) in seq.behaviors.iter().enumerate() {
                if b != Behavior::Click {
                    assert!(!flags[i], "deep behavior flagged as noise");
                }
            }
        }
    }

    #[test]
    fn genuine_clicks_come_from_user_interests() {
        let g = small_config().generate();
        for (u, (seq, flags)) in g
            .dataset
            .sequences
            .iter()
            .zip(g.truth.noise_flags.iter())
            .enumerate()
        {
            for (i, &item) in seq.items.iter().enumerate() {
                if !flags[i] {
                    let topic = g.truth.item_topic[item as usize];
                    assert!(
                        g.truth.user_interests[u].contains(&topic),
                        "genuine event outside user interests"
                    );
                }
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let g = SyntheticConfig::taobao_like(5).scaled(0.3).generate();
        let mut counts = vec![0usize; g.dataset.num_items + 1];
        for seq in &g.dataset.sequences {
            for &it in &seq.items {
                counts[it as usize] += 1;
            }
        }
        let mut sorted: Vec<usize> = counts[1..].to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sorted.iter().sum();
        let top10pct: usize = sorted[..sorted.len() / 10].iter().sum();
        // Zipf should concentrate far more than 10% of mass in the top 10%.
        assert!(
            top10pct as f64 > 0.3 * total as f64,
            "popularity not skewed: {top10pct}/{total}"
        );
    }

    #[test]
    fn user_weights_normalized() {
        let g = small_config().generate();
        for w in &g.truth.user_weights {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn presets_have_target_in_behavior_set() {
        for cfg in [
            SyntheticConfig::taobao_like(1),
            SyntheticConfig::tmall_like(1),
            SyntheticConfig::yelp_like(1),
        ] {
            assert!(cfg.behavior_set().contains(&cfg.target_behavior));
        }
    }

    #[test]
    fn scaled_shrinks_counts() {
        let base = SyntheticConfig::taobao_like(1);
        let cfg = base.clone().scaled(0.1);
        assert!(cfg.num_users < base.num_users / 5);
        // Items shrink sub-linearly (factor^0.6) to preserve sparsity.
        assert!(cfg.num_items < base.num_items);
        assert!(cfg.num_items > base.num_items / 10);
        assert!(cfg.num_topics >= 2);
    }

    #[test]
    fn for_each_user_streams_the_same_events_as_generate() {
        let cfg = small_config();
        let full = cfg.generate();
        let mut streamed = Vec::new();
        let mut streamed_flags = Vec::new();
        let truth = cfg.for_each_user(|u, seq, flags| {
            assert_eq!(u, streamed.len());
            streamed.push(seq);
            streamed_flags.push(flags);
        });
        assert_eq!(streamed, full.dataset.sequences);
        assert_eq!(streamed_flags, full.truth.noise_flags);
        assert_eq!(truth.user_interests, full.truth.user_interests);
        assert_eq!(truth.item_topic, full.truth.item_topic);
    }

    #[test]
    fn scale_regime_is_calibrated() {
        // The 10k preset is the smallest rung of the substrate ladder; it
        // must show realistic popularity concentration and the advertised
        // ~11 events/user volume.
        let cfg = SyntheticConfig::scale_regime(10_000, 42);
        let g = cfg.generate();
        let gini = g.dataset.popularity_gini();
        assert!(
            (0.45..=0.85).contains(&gini),
            "popularity gini {gini:.3} outside the calibrated band"
        );
        let events_per_user = g.dataset.avg_seq_len();
        assert!(
            (8.0..=14.0).contains(&events_per_user),
            "events/user {events_per_user:.1} off target"
        );
        assert_eq!(g.dataset.num_items, 400);
    }

    #[test]
    fn scaled_preserves_per_item_interaction_regime() {
        // Events per item should stay within ~4x across a 10x scale change,
        // the property that keeps memorization baselines honest.
        let per_item = |cfg: &SyntheticConfig| {
            let g = cfg.generate();
            g.dataset.num_interactions() as f64 / g.dataset.num_items as f64
        };
        let small = per_item(&SyntheticConfig::yelp_like(2).scaled(0.05));
        let large = per_item(&SyntheticConfig::yelp_like(2).scaled(0.5));
        let ratio = (large / small).max(small / large);
        assert!(ratio < 4.0, "per-item density drifted {ratio:.2}x across scales");
    }
}
