//! `mbssl-data` — multi-behavior interaction data substrate.
//!
//! Provides the dataset model ([`types`]), a calibrated synthetic
//! multi-behavior log generator standing in for license-gated Taobao /
//! Tmall / Yelp dumps ([`synthetic`]), preprocessing ([`preprocess`]),
//! negative sampling + batching ([`sampler`]), contrastive augmentations
//! ([`augment`]), TSV IO ([`io`]), and the mmap'd binary columnar `.mbds`
//! format for million-user logs ([`mod@format`]).
//!
//! # Quick example
//! ```
//! use mbssl_data::synthetic::SyntheticConfig;
//! use mbssl_data::preprocess::{leave_one_out, SplitConfig};
//!
//! let generated = SyntheticConfig::taobao_like(42).scaled(0.05).generate();
//! let split = leave_one_out(&generated.dataset, &SplitConfig::default());
//! assert!(!split.train.is_empty());
//! assert_eq!(split.val.len(), split.test.len());
//! ```

#![warn(missing_docs)]

pub mod augment;
pub mod format;
pub mod io;
pub mod preprocess;
pub mod sampler;
pub mod sessionize;
pub mod synthetic;
pub mod types;

pub use types::{Behavior, Dataset, Interaction, ItemId, Sequence, UserId};
